"""Legacy setup shim.

Offline environments (like the one this reproduction targets) often lack
the ``wheel`` package, which modern PEP-517 editable installs require.
With this shim and no ``[build-system]`` table in pyproject.toml, ``pip
install -e .`` uses setuptools' legacy develop path, which works with a
bare setuptools.
"""

from setuptools import setup

setup()
