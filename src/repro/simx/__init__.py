"""repro.simx — a small deterministic discrete-event simulation (DES) engine.

This package is the foundation of the whole reproduction: every hardware
and software component (CPUs, SMM controller, OS scheduler, NICs, MPI
ranks) is either a process running on this engine or a callback scheduled
on it.

Design goals
------------
* **Determinism** — given the same seed(s), a simulation replays exactly.
  Time is an integer number of nanoseconds; ties are broken by insertion
  order (a monotonically increasing sequence number).
* **Generator processes** — simulation actors are plain Python generator
  functions that ``yield`` commands (:class:`Delay`, :class:`Event`,
  another :class:`Process`, ...), in the style of SimPy, but built from
  scratch so the SMM "freeze gate" semantics (see :mod:`repro.machine.smm`)
  can be wired into process wake-up delivery.
* **Piecewise-constant-rate work** — :mod:`repro.simx.rate` integrates
  service rates over time so CPU execution under processor sharing,
  Hyper-Threading coupling, and SMM freezes is exact without per-cycle
  events.

Public API
----------
:class:`Engine`, :class:`Process`, :class:`Event`, :class:`Delay`,
:class:`AllOf`, :class:`AnyOf`, :class:`Interrupt`,
:class:`~repro.simx.resources.Lock`, :class:`~repro.simx.resources.Semaphore`,
:class:`~repro.simx.resources.Barrier`, :class:`~repro.simx.resources.Channel`,
:class:`~repro.simx.rate.RateExecutor`, :class:`~repro.simx.rate.WorkItem`,
:class:`~repro.simx.timeline.Timeline`.
"""

from repro.simx.errors import (
    SimulationError,
    DeadlockError,
    ProcessKilled,
    GateClosedForever,
)
from repro.simx.engine import Engine, Delay, Event, AllOf, AnyOf, Interrupt, Process
from repro.simx.resources import Lock, Semaphore, Barrier, Channel, Store
from repro.simx.rate import (
    RateExecutor,
    VecRateExecutor,
    WorkItem,
    current_engine,
    make_rate_executor,
)
from repro.simx.timeline import Timeline, TraceRecord

__all__ = [
    "Engine",
    "Process",
    "Event",
    "Delay",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Lock",
    "Semaphore",
    "Barrier",
    "Channel",
    "Store",
    "RateExecutor",
    "VecRateExecutor",
    "make_rate_executor",
    "current_engine",
    "WorkItem",
    "Timeline",
    "TraceRecord",
    "SimulationError",
    "DeadlockError",
    "ProcessKilled",
    "GateClosedForever",
]

SECOND = 1_000_000_000
MILLISECOND = 1_000_000
MICROSECOND = 1_000

def ns(seconds: float) -> int:
    """Convert seconds (float) to integer nanoseconds."""
    return int(round(seconds * SECOND))

def ms(milliseconds: float) -> int:
    """Convert milliseconds (float) to integer nanoseconds."""
    return int(round(milliseconds * MILLISECOND))

def us(microseconds: float) -> int:
    """Convert microseconds (float) to integer nanoseconds."""
    return int(round(microseconds * MICROSECOND))

def seconds(t_ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return t_ns / SECOND
