"""Piecewise-constant-rate work execution.

This is the numerical heart of the CPU model.  A :class:`WorkItem` is a
demand of ``W`` abstract work units (think: useful operations).  A
:class:`RateExecutor` serves a set of items, each at its own
piecewise-constant rate (units per nanosecond).  Rates change only at
discrete instants — task arrival/departure, SMM freeze/unfreeze, an HTT
sibling becoming busy or idle, a cache-contention change — and between
those instants the executor needs **no events at all**: it simply knows
when the earliest completion will occur and schedules exactly one timer.

This "fluid" formulation makes whole-run simulations exact and cheap: a
24-thread convolution run produces a few hundred events rather than
billions of cycle ticks, yet completion times are identical to what an
infinitesimally-fine round-robin would give (processor sharing is the
fluid limit of round-robin; see DESIGN.md §5.1).

Invariants (property-tested in ``tests/simx/test_rate.py``):

* *Work conservation*: at every instant, sum over items of executed work
  equals the integral of the total service rate.
* *Monotonicity*: an item's remaining demand never increases.
* *Exact completion*: an item completes exactly when its integrated rate
  reaches its demand (to within one nanosecond of timer quantization).

Rate-update coalescing (DESIGN.md §3 "Performance")
---------------------------------------------------
A freeze/unfreeze or placement change used to trigger one full
ETA-rescheduling pass per mutation: a 24-segment rebalance did ~48
cancel+push cycles whose timers were all dead on arrival.  Two
mechanisms remove that churn while keeping event order **identical**:

* *Deferred rescheduling* — inside :meth:`defer_reschedule` (used by
  :meth:`repro.machine.node.Node.rate_batch`), membership and rate
  mutations mark the executor dirty instead of rescheduling; one
  rescheduling pass runs at batch exit.  Work integration (``sync``)
  still happens eagerly, so completions and their follow-up events fire
  at exactly the same points in the instant as before; only the
  intermediate timers — all of which the legacy code cancelled before
  they could fire — are never created.
* *ETA keep* — rescheduling keeps the live timer when the new fire time
  equals the old one **and** nothing else was scheduled since the timer
  was pushed (``timer seq == engine seq``).  Re-pushing would then yield
  the adjacent sequence number with no intervening events, so keeping
  the entry is observationally identical.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simx.engine import Engine, Event
from repro.simx.errors import SimulationError

__all__ = ["WorkItem", "RateExecutor"]

# Completion slack: float rounding can leave a vanishing residue of work;
# anything below this fraction of a unit counts as done.
_EPS_WORK = 1e-6

# Completion horizon: an ETA beyond ~292 years of simulated time means the
# assigned rate is effectively zero (denormal floats); schedule nothing and
# wait for the next rate change instead of overflowing the clock.
_ETA_CAP = float(1 << 62)


class WorkItem:
    """A demand of ``demand`` work units with a completion event.

    ``meta`` is an arbitrary payload (the owning task, for the CPU model).
    """

    __slots__ = ("demand", "remaining", "done", "meta", "started_at", "finished_at")

    def __init__(self, engine: Engine, demand: float, meta=None, name: str = "work"):
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        self.demand = float(demand)
        self.remaining = float(demand)
        self.done: Event = engine.event(name=f"{name}.done")
        self.meta = meta
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    @property
    def executed(self) -> float:
        """Work completed so far."""
        return self.demand - self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkItem {self.remaining:.3g}/{self.demand:.3g}>"


class RateExecutor:
    """Serves :class:`WorkItem`\\ s at externally-assigned rates.

    The owner (a :class:`repro.machine.cpu.LogicalCpu`) is responsible for
    calling :meth:`set_rates` with a full rate assignment whenever anything
    that affects rates changes.  The executor:

    1. advances every item's ``remaining`` for the elapsed interval at the
       *old* rates (``sync``),
    2. records the new rates,
    3. re-schedules the single next-completion timer.

    Completion order among simultaneous finishers follows insertion order
    (deterministic).
    """

    __slots__ = (
        "engine",
        "on_complete",
        "_rates",
        "_last_sync",
        "_timer",
        "_timer_time",
        "_defer",
        "_dirty",
        "total_work_served",
        "pre_sync",
    )

    def __init__(self, engine: Engine, on_complete: Callable[[WorkItem], None]):
        self.engine = engine
        self.on_complete = on_complete
        self._rates: Dict[WorkItem, float] = {}  # units per ns
        self._last_sync = engine.now
        self._timer: Optional[list] = None  # raw engine heap entry
        self._timer_time = 0  # absolute fire time of the live timer
        self._defer = False   # inside a coalescing batch
        self._dirty = False   # a reschedule is owed at batch exit
        self.total_work_served = 0.0  # lifetime integral, for conservation tests
        #: Optional hook ``pre_sync(dt_ns)`` called at the top of every
        #: non-empty sync window, *before* items are advanced or evicted.
        #: The CPU model uses it for kernel-style time accounting: the
        #: window [last_sync, now) is homogeneous (rates and freeze state
        #: constant), so integrating task CPU shares here is exact.
        self.pre_sync: Optional[Callable[[int], None]] = None

    # -- membership --------------------------------------------------------
    @property
    def items(self):
        return self._rates.keys()

    def __len__(self) -> int:
        return len(self._rates)

    def add(self, item: WorkItem, rate: float = 0.0) -> None:
        """Admit an item (initially at ``rate``).  Caller normally follows
        with :meth:`set_rates` to rebalance everyone."""
        if item in self._rates:
            raise SimulationError("work item already admitted")
        self.sync()
        if item.started_at is None:
            item.started_at = self.engine.now
        self._rates[item] = float(rate)
        self._reschedule()

    def remove(self, item: WorkItem) -> None:
        """Evict an item (e.g. the task migrated to another CPU)."""
        self.sync()
        self._rates.pop(item, None)
        self._reschedule()

    # -- rate control ---------------------------------------------------------
    def sync(self) -> None:
        """Advance all items to ``engine.now`` at the current rates, and
        complete any that finish exactly in the elapsed window."""
        now = self.engine._now
        dt = now - self._last_sync
        if dt <= 0:
            return
        self._last_sync = now
        rates = self._rates
        if not rates:
            return
        if self.pre_sync is not None:
            self.pre_sync(dt)
        finished = None
        total = self.total_work_served
        for item, rate in rates.items():
            if rate <= 0.0:
                continue
            served = rate * dt
            remaining = item.remaining
            if served >= remaining - _EPS_WORK:
                served = remaining
                if finished is None:
                    finished = [item]
                else:
                    finished.append(item)
            item.remaining = remaining - served
            total += served
        self.total_work_served = total
        if finished is not None:
            for item in finished:
                self._complete(item)

    def set_rates(self, rates: Dict[WorkItem, float]) -> None:
        """Assign new rates.  Items not mentioned keep their old rate;
        callers that rebalance everything pass a complete mapping.
        :meth:`sync` must already have been called by the code path that
        changed conditions — ``set_rates`` calls it defensively anyway."""
        self.sync()
        current = self._rates
        for item, rate in rates.items():
            if item not in current:
                raise SimulationError("set_rates for unadmitted item")
            if rate < 0:
                raise ValueError("negative rate")
            current[item] = float(rate)
        self._reschedule()

    def rate_of(self, item: WorkItem) -> float:
        return self._rates[item]

    # -- coalescing --------------------------------------------------------
    def defer_reschedule(self) -> None:
        """Enter a coalescing batch: mutations mark the executor dirty
        instead of rescheduling.  Must be paired with
        :meth:`flush_reschedule` before control returns to the engine
        loop (see :meth:`repro.machine.node.Node.rate_batch`)."""
        self._defer = True

    def flush_reschedule(self) -> None:
        """Exit a coalescing batch; run the one owed rescheduling pass."""
        self._defer = False
        if self._dirty:
            self._dirty = False
            self._reschedule()

    # -- internals -------------------------------------------------------------
    def _complete(self, item: WorkItem) -> None:
        del self._rates[item]
        item.remaining = 0.0
        item.finished_at = self.engine._now
        self.on_complete(item)
        if item.done._ok is None:
            item.done.succeed(item)

    def _reschedule(self) -> None:
        if self._defer:
            self._dirty = True
            return
        soonest: Optional[int] = None
        for item, rate in self._rates.items():
            if rate <= 0.0:
                continue
            remaining = item.remaining
            if remaining <= _EPS_WORK:
                # Degenerate zero-demand item: completes now.
                eta = 0
            else:
                eta_f = remaining / rate + 0.999999
                if eta_f >= _ETA_CAP:
                    # Vanishing rate: no practical progress — treat like a
                    # zero rate (no completion timer until rates change).
                    continue
                eta = int(eta_f)
                if eta < 1:
                    eta = 1
            if soonest is None or eta < soonest:
                soonest = eta
        engine = self.engine
        timer = self._timer
        if soonest is None:
            if timer is not None:
                engine._cancel_entry(timer)
                self._timer = None
            return
        t_abs = engine._now + soonest
        if timer is not None:
            if (self._timer_time == t_abs and not timer[5]
                    and timer[1] == engine._seq):
                # ETA keep: same fire time and no event scheduled since
                # this timer was pushed — a fresh push would occupy the
                # adjacent sequence slot, so keeping it is identical.
                return
            engine._cancel_entry(timer)
        self._timer = engine._post(soonest, self._on_timer, (), False)
        self._timer_time = t_abs

    def _on_timer(self) -> None:
        self._timer = None
        self.sync()
        # sync() completed whoever finished; if rounding left stragglers
        # within epsilon, finish them too.
        leftovers = [
            it for it, r in self._rates.items() if r > 0 and it.remaining <= _EPS_WORK
        ]
        for it in leftovers:
            self._complete(it)
        self._reschedule()
