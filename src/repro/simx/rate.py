"""Piecewise-constant-rate work execution.

This is the numerical heart of the CPU model.  A :class:`WorkItem` is a
demand of ``W`` abstract work units (think: useful operations).  A
:class:`RateExecutor` serves a set of items, each at its own
piecewise-constant rate (units per nanosecond).  Rates change only at
discrete instants — task arrival/departure, SMM freeze/unfreeze, an HTT
sibling becoming busy or idle, a cache-contention change — and between
those instants the executor needs **no events at all**: it simply knows
when the earliest completion will occur and schedules exactly one timer.

This "fluid" formulation makes whole-run simulations exact and cheap: a
24-thread convolution run produces a few hundred events rather than
billions of cycle ticks, yet completion times are identical to what an
infinitesimally-fine round-robin would give (processor sharing is the
fluid limit of round-robin; see DESIGN.md §5.1).

Invariants (property-tested in ``tests/simx/test_rate.py``):

* *Work conservation*: at every instant, sum over items of executed work
  equals the integral of the total service rate.
* *Monotonicity*: an item's remaining demand never increases.
* *Exact completion*: an item completes exactly when its integrated rate
  reaches its demand (to within one nanosecond of timer quantization).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simx.engine import Engine, Event, Handle
from repro.simx.errors import SimulationError

__all__ = ["WorkItem", "RateExecutor"]

# Completion slack: float rounding can leave a vanishing residue of work;
# anything below this fraction of a unit counts as done.
_EPS_WORK = 1e-6

# Completion horizon: an ETA beyond ~292 years of simulated time means the
# assigned rate is effectively zero (denormal floats); schedule nothing and
# wait for the next rate change instead of overflowing the clock.
_ETA_CAP = float(1 << 62)


class WorkItem:
    """A demand of ``demand`` work units with a completion event.

    ``meta`` is an arbitrary payload (the owning task, for the CPU model).
    """

    __slots__ = ("demand", "remaining", "done", "meta", "started_at", "finished_at")

    def __init__(self, engine: Engine, demand: float, meta=None, name: str = "work"):
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        self.demand = float(demand)
        self.remaining = float(demand)
        self.done: Event = engine.event(name=f"{name}.done")
        self.meta = meta
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    @property
    def executed(self) -> float:
        """Work completed so far."""
        return self.demand - self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkItem {self.remaining:.3g}/{self.demand:.3g}>"


class RateExecutor:
    """Serves :class:`WorkItem`\\ s at externally-assigned rates.

    The owner (a :class:`repro.machine.cpu.LogicalCpu`) is responsible for
    calling :meth:`set_rates` with a full rate assignment whenever anything
    that affects rates changes.  The executor:

    1. advances every item's ``remaining`` for the elapsed interval at the
       *old* rates (``sync``),
    2. records the new rates,
    3. re-schedules the single next-completion timer.

    Completion order among simultaneous finishers follows insertion order
    (deterministic).
    """

    def __init__(self, engine: Engine, on_complete: Callable[[WorkItem], None]):
        self.engine = engine
        self.on_complete = on_complete
        self._rates: Dict[WorkItem, float] = {}  # units per ns
        self._last_sync = engine.now
        self._timer: Optional[Handle] = None
        self.total_work_served = 0.0  # lifetime integral, for conservation tests
        #: Optional hook ``pre_sync(dt_ns)`` called at the top of every
        #: non-empty sync window, *before* items are advanced or evicted.
        #: The CPU model uses it for kernel-style time accounting: the
        #: window [last_sync, now) is homogeneous (rates and freeze state
        #: constant), so integrating task CPU shares here is exact.
        self.pre_sync: Optional[Callable[[int], None]] = None

    # -- membership --------------------------------------------------------
    @property
    def items(self):
        return self._rates.keys()

    def __len__(self) -> int:
        return len(self._rates)

    def add(self, item: WorkItem, rate: float = 0.0) -> None:
        """Admit an item (initially at ``rate``).  Caller normally follows
        with :meth:`set_rates` to rebalance everyone."""
        if item in self._rates:
            raise SimulationError("work item already admitted")
        self.sync()
        if item.started_at is None:
            item.started_at = self.engine.now
        self._rates[item] = float(rate)
        self._reschedule()

    def remove(self, item: WorkItem) -> None:
        """Evict an item (e.g. the task migrated to another CPU)."""
        self.sync()
        self._rates.pop(item, None)
        self._reschedule()

    # -- rate control ---------------------------------------------------------
    def sync(self) -> None:
        """Advance all items to ``engine.now`` at the current rates, and
        complete any that finish exactly in the elapsed window."""
        now = self.engine.now
        dt = now - self._last_sync
        self._last_sync = now
        if dt <= 0 or not self._rates:
            return
        if self.pre_sync is not None:
            self.pre_sync(dt)
        finished = []
        for item, rate in self._rates.items():
            if rate <= 0.0:
                continue
            served = rate * dt
            if served >= item.remaining - _EPS_WORK:
                served = item.remaining
                finished.append(item)
            item.remaining -= served
            self.total_work_served += served
        for item in finished:
            self._complete(item)

    def set_rates(self, rates: Dict[WorkItem, float]) -> None:
        """Assign new rates.  Items not mentioned keep their old rate;
        callers that rebalance everything pass a complete mapping.
        :meth:`sync` must already have been called by the code path that
        changed conditions — ``set_rates`` calls it defensively anyway."""
        self.sync()
        for item, rate in rates.items():
            if item not in self._rates:
                raise SimulationError("set_rates for unadmitted item")
            if rate < 0:
                raise ValueError("negative rate")
            self._rates[item] = float(rate)
        self._reschedule()

    def rate_of(self, item: WorkItem) -> float:
        return self._rates[item]

    # -- internals -------------------------------------------------------------
    def _complete(self, item: WorkItem) -> None:
        del self._rates[item]
        item.remaining = 0.0
        item.finished_at = self.engine.now
        self.on_complete(item)
        if not item.done.triggered:
            item.done.succeed(item)

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        soonest: Optional[int] = None
        for item, rate in self._rates.items():
            if rate <= 0.0:
                continue
            if item.remaining <= _EPS_WORK:
                # Degenerate zero-demand item: completes now.
                eta = 0
            else:
                eta_f = item.remaining / rate + 0.999999
                if eta_f >= _ETA_CAP:
                    # Vanishing rate: no practical progress — treat like a
                    # zero rate (no completion timer until rates change).
                    continue
                eta = max(1, int(eta_f))
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._timer = self.engine.schedule(soonest, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self.sync()
        # sync() completed whoever finished; if rounding left stragglers
        # within epsilon, finish them too.
        leftovers = [
            it for it, r in self._rates.items() if r > 0 and it.remaining <= _EPS_WORK
        ]
        for it in leftovers:
            self._complete(it)
        self._reschedule()
