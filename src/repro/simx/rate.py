"""Piecewise-constant-rate work execution.

This is the numerical heart of the CPU model.  A :class:`WorkItem` is a
demand of ``W`` abstract work units (think: useful operations).  A
:class:`RateExecutor` serves a set of items, each at its own
piecewise-constant rate (units per nanosecond).  Rates change only at
discrete instants — task arrival/departure, SMM freeze/unfreeze, an HTT
sibling becoming busy or idle, a cache-contention change — and between
those instants the executor needs **no events at all**: it simply knows
when the earliest completion will occur and schedules exactly one timer.

This "fluid" formulation makes whole-run simulations exact and cheap: a
24-thread convolution run produces a few hundred events rather than
billions of cycle ticks, yet completion times are identical to what an
infinitesimally-fine round-robin would give (processor sharing is the
fluid limit of round-robin; see DESIGN.md §5.1).

Invariants (property-tested in ``tests/simx/test_rate.py``):

* *Work conservation*: at every instant, sum over items of executed work
  equals the integral of the total service rate.
* *Monotonicity*: an item's remaining demand never increases.
* *Exact completion*: an item completes exactly when its integrated rate
  reaches its demand (to within one nanosecond of timer quantization).

Structure-of-arrays core and the two engines (DESIGN.md §3)
-----------------------------------------------------------
Items are stored as parallel arrays — an insertion-ordered item list
plus a rate column — so ``sync``/``set_rates``/``_reschedule`` are
single indexed passes over contiguous storage instead of dict
iterations.  Two interchangeable engines share this layout:

* :class:`RateExecutor` — the pure-Python scalar engine
  (``REPRO_ENGINE=py``).  No third-party dependencies.
* :class:`VecRateExecutor` — the vector engine (``REPRO_ENGINE=vec``,
  the default when numpy is importable).  Below
  :data:`VecRateExecutor.VEC_MIN` resident items it runs the *same*
  scalar kernels — the size check is a class-level threshold the scalar
  engine parks at an unreachable sentinel, so neither engine pays any
  dispatch overhead on the small executors real workloads live on.  At
  or above the threshold, ``sync`` and ``_reschedule`` become numpy
  passes over a lazily-materialized float64 mirror of the
  remaining-work column (see :class:`VecRateExecutor`).

Both engines are **byte-identical** in observable behaviour: the vector
kernels perform the exact same IEEE-754 operations per element
(``rate*dt``, the completion test against ``_EPS_WORK``, the ETA
``remaining/rate + 0.999999``), accumulate ``total_work_served`` by the
same left-to-right fold (never ``np.sum``, whose pairwise reduction
associates differently), and complete simultaneous finishers in
insertion order.  The golden-cell suite pins this contract.

Use :func:`make_rate_executor` to construct whichever engine
``$REPRO_ENGINE`` selects (resolved per call, so tests can flip it).

Rate-update coalescing (DESIGN.md §3 "Performance")
---------------------------------------------------
A freeze/unfreeze or placement change used to trigger one full
ETA-rescheduling pass per mutation: a 24-segment rebalance did ~48
cancel+push cycles whose timers were all dead on arrival.  Two
mechanisms remove that churn while keeping event order **identical**:

* *Deferred rescheduling* — inside :meth:`defer_reschedule` (used by
  :meth:`repro.machine.node.Node.rate_batch`), membership and rate
  mutations mark the executor dirty instead of rescheduling; one
  rescheduling pass runs at batch exit.  Work integration (``sync``)
  still happens eagerly, so completions and their follow-up events fire
  at exactly the same points in the instant as before; only the
  intermediate timers — all of which the legacy code cancelled before
  they could fire — are never created.
* *ETA keep* — rescheduling keeps the live timer when the new fire time
  equals the old one **and** nothing else was scheduled since the timer
  was pushed (``timer seq == engine seq``).  Re-pushing would then yield
  the adjacent sequence number with no intervening events, so keeping
  the entry is observationally identical.

One hygiene rule on top (the stale-ETA fix): whenever the executor goes
empty — the last item removed (even inside a deferred-reschedule
window) or sync completing everything it held — the live timer is
cancelled *immediately*.  Cancellation is a tombstone (no new event, no
sequence number), so the event stream is unchanged, but ``_on_timer``
can no longer fire for an item that is already dead.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.simx.engine import Engine, Event
from repro.simx.errors import SimulationError

try:  # numpy is an optional dependency: the scalar engine never needs it
    import numpy as _np
except ImportError:  # pragma: no cover — exercised on numpy-free installs
    _np = None

__all__ = [
    "WorkItem",
    "RateExecutor",
    "VecRateExecutor",
    "make_rate_executor",
    "current_engine",
]

# Completion slack: float rounding can leave a vanishing residue of work;
# anything below this fraction of a unit counts as done.
_EPS_WORK = 1e-6

# Completion horizon: an ETA beyond ~292 years of simulated time means the
# assigned rate is effectively zero (denormal floats); schedule nothing and
# wait for the next rate change instead of overflowing the clock.
_ETA_CAP = float(1 << 62)


def current_engine() -> str:
    """Resolve ``$REPRO_ENGINE`` to the engine in effect: ``"py"`` or
    ``"vec"``.  Unset/``auto`` picks ``vec`` when numpy is importable."""
    kind = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    if kind == "auto":
        return "vec" if _np is not None else "py"
    if kind == "vec":
        if _np is None:
            raise SimulationError("REPRO_ENGINE=vec requires numpy")
        return "vec"
    if kind == "py":
        return "py"
    raise SimulationError(f"unknown REPRO_ENGINE {kind!r} (want py|vec|auto)")


def make_rate_executor(
    engine: Engine,
    on_complete: Callable[["WorkItem"], None],
    on_busy_change: Optional[Callable[[bool], None]] = None,
) -> "RateExecutor":
    """Construct the executor class ``$REPRO_ENGINE`` selects.  The
    environment is read per call, so a test can flip engines without
    re-importing anything."""
    cls = VecRateExecutor if current_engine() == "vec" else RateExecutor
    return cls(engine, on_complete, on_busy_change)


class WorkItem:
    """A demand of ``demand`` work units with a completion event.

    ``meta`` is an arbitrary payload (the owning task, for the CPU model).
    """

    __slots__ = ("demand", "remaining", "done", "meta", "started_at", "finished_at")

    def __init__(self, engine: Engine, demand: float, meta=None, name: str = "work"):
        if demand < 0:
            raise ValueError(f"negative demand: {demand}")
        self.demand = float(demand)
        self.remaining = float(demand)
        self.done: Event = engine.event(name=f"{name}.done")
        self.meta = meta
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    @property
    def executed(self) -> float:
        """Work completed so far."""
        return self.demand - self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkItem {self.remaining:.3g}/{self.demand:.3g}>"


class RateExecutor:
    """Serves :class:`WorkItem`\\ s at externally-assigned rates (the
    pure-Python scalar engine; see the module docstring for the engine
    contract).

    The owner (a :class:`repro.machine.cpu.LogicalCpu`) is responsible for
    calling :meth:`set_rates` with a full rate assignment whenever anything
    that affects rates changes.  The executor:

    1. advances every item's ``remaining`` for the elapsed interval at the
       *old* rates (``sync``),
    2. records the new rates,
    3. re-schedules the single next-completion timer.

    Completion order among simultaneous finishers follows insertion order
    (deterministic).

    ``on_busy_change(busy)`` — optional — fires on every 0↔nonzero
    membership transition (the node uses it to maintain its busy-CPU
    set), *after* the transitioning add/remove mutated storage but
    before the associated reschedule.
    """

    # Resident-set size at which sync/ETA switch to the numpy kernels.
    # The scalar engine parks this at an unreachable sentinel so the
    # size check below compiles down to one always-false comparison;
    # VecRateExecutor lowers it to VEC_MIN.
    _vec_min: int = 1 << 62

    __slots__ = (
        "engine",
        "on_complete",
        "on_busy_change",
        "_items",
        "_index",
        "_rate",
        "_rem_np",
        "_rem_clean_n",
        "_last_sync",
        "_timer",
        "_timer_time",
        "_defer",
        "_dirty",
        "total_work_served",
        "pre_sync",
    )

    def __init__(
        self,
        engine: Engine,
        on_complete: Callable[[WorkItem], None],
        on_busy_change: Optional[Callable[[bool], None]] = None,
    ):
        self.engine = engine
        self.on_complete = on_complete
        self.on_busy_change = on_busy_change
        # Structure-of-arrays storage: _items[i] runs at _rate[i] units/ns.
        # _index maps item -> slot; slots shift down on removal so the
        # array order always equals insertion order (the completion
        # tie-break contract).  Remaining work lives on the items; the
        # vector engine mirrors it into a numpy column on demand.
        self._items: List[WorkItem] = []
        self._index: Dict[WorkItem, int] = {}
        self._rate: List[float] = []
        self._rem_np = None     # float64 mirror of [it.remaining for it in items]
        self._rem_clean_n = -1  # mirror length when valid; -1 = stale
        self._last_sync = engine.now
        self._timer: Optional[list] = None  # raw engine heap entry
        self._timer_time = 0  # absolute fire time of the live timer
        self._defer = False   # inside a coalescing batch
        self._dirty = False   # a reschedule is owed at batch exit
        self.total_work_served = 0.0  # lifetime integral, for conservation tests
        #: Optional hook ``pre_sync(dt_ns)`` called at the top of every
        #: non-empty sync window, *before* items are advanced or evicted.
        #: The CPU model uses it for kernel-style time accounting: the
        #: window [last_sync, now) is homogeneous (rates and freeze state
        #: constant), so integrating task CPU shares here is exact.
        self.pre_sync: Optional[Callable[[int], None]] = None

    # -- membership --------------------------------------------------------
    @property
    def items(self) -> List[WorkItem]:
        """Resident items in insertion order (the live list — don't
        mutate; callers that remove while iterating must copy first)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: WorkItem, rate: float = 0.0) -> None:
        """Admit an item (initially at ``rate``).  Caller normally follows
        with :meth:`set_rates` to rebalance everyone."""
        if item in self._index:
            raise SimulationError("work item already admitted")
        self.sync()
        if item.started_at is None:
            item.started_at = self.engine.now
        items = self._items
        self._index[item] = len(items)
        items.append(item)
        self._rate.append(float(rate))
        self._rem_clean_n = -1
        if len(items) == 1 and self.on_busy_change is not None:
            self.on_busy_change(True)
        self._reschedule()

    def remove(self, item: WorkItem) -> None:
        """Evict an item (e.g. the task migrated to another CPU)."""
        self.sync()
        i = self._index.pop(item, None)
        if i is not None:
            self._evict_slot(i)
            if not self._items:
                self._cancel_timer()
                if self.on_busy_change is not None:
                    self.on_busy_change(False)
        self._reschedule()

    def _evict_slot(self, i: int) -> None:
        items = self._items
        del items[i]
        del self._rate[i]
        self._rem_clean_n = -1
        index = self._index
        for j in range(i, len(items)):
            index[items[j]] = j

    def _cancel_timer(self) -> None:
        # Tombstone the live timer (no event, no sequence number): an
        # empty executor must never fire _on_timer — the stale-ETA rule.
        timer = self._timer
        if timer is not None:
            self.engine._cancel_entry(timer)
            self._timer = None

    # -- rate control ---------------------------------------------------------
    def sync(self) -> None:
        """Advance all items to ``engine.now`` at the current rates, and
        complete any that finish exactly in the elapsed window."""
        now = self.engine._now
        dt = now - self._last_sync
        if dt <= 0:
            return
        self._last_sync = now
        items = self._items
        n = len(items)
        if n == 0:
            return
        if self.pre_sync is not None:
            self.pre_sync(dt)
        if n >= self._vec_min:
            self._sync_vec(n, dt)
            return
        # The scalar kernel.  It leaves the vector engine's remaining
        # mirror untouched: validity is keyed on n, and any transition
        # back into the vector regime requires a membership change,
        # which invalidates the mirror anyway.
        finished = None
        total = self.total_work_served
        rate_s = self._rate
        i = 0
        for item in items:
            rate = rate_s[i]
            i += 1
            if rate <= 0.0:
                continue
            served = rate * dt
            remaining = item.remaining
            if served >= remaining - _EPS_WORK:
                served = remaining
                if finished is None:
                    finished = [item]
                else:
                    finished.append(item)
            item.remaining = remaining - served
            total += served
        self.total_work_served = total
        if finished is not None:
            self._finish_batch(finished)

    def _finish_batch(self, finished: List[WorkItem]) -> None:
        for item in finished:
            self._complete(item)
        if not self._items:
            self._cancel_timer()

    def set_rates(self, rates: Dict[WorkItem, float]) -> None:
        """Assign new rates.  Items not mentioned keep their old rate;
        callers that rebalance everything pass a complete mapping.
        :meth:`sync` must already have been called by the code path that
        changed conditions — ``set_rates`` calls it defensively anyway."""
        self.sync()
        index = self._index
        rate_s = self._rate
        for item, rate in rates.items():
            i = index.get(item)
            if i is None:
                raise SimulationError("set_rates for unadmitted item")
            if rate < 0:
                raise ValueError("negative rate")
            rate_s[i] = float(rate)
        self._reschedule()

    def set_rates_seq(self, rates: Sequence[float]) -> None:
        """Assign new rates positionally: ``rates[i]`` goes to the i-th
        resident item (insertion order — the order :attr:`items` yields
        and :meth:`repro.machine.cpu.LogicalCpu.compute_rates` returns).
        The fast path for full reassignment: no per-item hashing."""
        self.sync()
        if len(rates) != len(self._items):
            raise SimulationError(
                f"set_rates_seq length {len(rates)} != {len(self._items)} items")
        rate_s = self._rate
        i = 0
        for rate in rates:
            if rate < 0:
                raise ValueError("negative rate")
            rate_s[i] = float(rate)
            i += 1
        self._reschedule()

    def rate_of(self, item: WorkItem) -> float:
        return self._rate[self._index[item]]

    # -- coalescing --------------------------------------------------------
    def defer_reschedule(self) -> None:
        """Enter a coalescing batch: mutations mark the executor dirty
        instead of rescheduling.  Must be paired with
        :meth:`flush_reschedule` before control returns to the engine
        loop (see :meth:`repro.machine.node.Node.rate_batch`)."""
        self._defer = True

    def flush_reschedule(self) -> None:
        """Exit a coalescing batch; run the one owed rescheduling pass."""
        self._defer = False
        if self._dirty:
            self._dirty = False
            self._reschedule()

    # -- internals -------------------------------------------------------------
    def _complete(self, item: WorkItem) -> None:
        i = self._index.pop(item)
        self._evict_slot(i)
        item.remaining = 0.0
        item.finished_at = self.engine._now
        if not self._items and self.on_busy_change is not None:
            self.on_busy_change(False)
        self.on_complete(item)
        if item.done._ok is None:
            item.done.succeed(item)

    def _soonest_eta(self) -> Optional[int]:
        """Nanoseconds until the earliest completion at current rates
        (``None``: nothing can complete until rates change)."""
        items = self._items
        n = len(items)
        if n >= self._vec_min:
            return self._soonest_eta_vec(n)
        soonest: Optional[int] = None
        rate_s = self._rate
        i = 0
        for item in items:
            rate = rate_s[i]
            i += 1
            if rate <= 0.0:
                continue
            remaining = item.remaining
            if remaining <= _EPS_WORK:
                # Degenerate zero-demand item: completes now.
                eta = 0
            else:
                eta_f = remaining / rate + 0.999999
                if eta_f >= _ETA_CAP:
                    # Vanishing rate: no practical progress — treat like a
                    # zero rate (no completion timer until rates change).
                    continue
                eta = int(eta_f)
                if eta < 1:
                    eta = 1
            if soonest is None or eta < soonest:
                soonest = eta
        return soonest

    def _reschedule(self) -> None:
        if self._defer:
            self._dirty = True
            return
        soonest = self._soonest_eta()
        engine = self.engine
        timer = self._timer
        if soonest is None:
            if timer is not None:
                engine._cancel_entry(timer)
                self._timer = None
            return
        t_abs = engine._now + soonest
        if timer is not None:
            if (self._timer_time == t_abs and not timer[5]
                    and timer[1] == engine._seq):
                # ETA keep: same fire time and no event scheduled since
                # this timer was pushed — a fresh push would occupy the
                # adjacent sequence slot, so keeping it is identical.
                return
            engine._cancel_entry(timer)
        self._timer = engine._post(soonest, self._on_timer, (), False)
        self._timer_time = t_abs

    def _on_timer(self) -> None:
        self._timer = None
        self.sync()
        # sync() completed whoever finished; if rounding left stragglers
        # within epsilon, finish them too.
        leftovers = None
        rate_s = self._rate
        i = 0
        for item in self._items:
            rate = rate_s[i]
            i += 1
            if rate > 0.0 and item.remaining <= _EPS_WORK:
                if leftovers is None:
                    leftovers = [item]
                else:
                    leftovers.append(item)
        if leftovers is not None:
            self._finish_batch(leftovers)
        self._reschedule()

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        """Capture the SoA columns and timer state.  Membership itself is
        captured by reference (items cannot be reconstructed), so a
        restore is valid only while the resident set is unchanged — the
        quiescent-window contract of :mod:`repro.simx.snapshot`."""
        timer = self._timer
        return {
            "remaining": [it.remaining for it in self._items],
            "rates": list(self._rate),
            "last_sync": self._last_sync,
            "total_work_served": self.total_work_served,
            "timer_time": self._timer_time,
            "timer_armed": timer is not None and not timer[5],
            "_items": list(self._items),
            "_timer": timer,
        }

    def __restore__(self, state: dict) -> None:
        if state["_items"] != self._items:
            raise SimulationError(
                "rate-executor membership changed since snapshot")
        for it, rem in zip(self._items, state["remaining"]):
            it.remaining = rem
        self._rate[:] = state["rates"]
        self._rem_clean_n = -1  # the numpy mirror is stale either way
        self._last_sync = state["last_sync"]
        self.total_work_served = state["total_work_served"]
        self._timer_time = state["timer_time"]
        saved = state["_timer"]
        cur = self._timer
        if not state["timer_armed"]:
            if cur is not None:
                self._cancel_timer()
            return
        # An armed completion timer must come back armed at the saved fire
        # time (the PR 8 stale-timer bug class).  Three cases:
        if (cur is saved and cur is not None and not cur[5]
                and self._timer_time == cur[0]):
            return  # 1. the very same live entry: nothing to do
        if saved is not None and not saved[5] and saved[0] == self._timer_time:
            # 2. the saved entry was resurrected by Engine.restore (its
            #    tombstone cleared, time re-installed): rebind to it.
            if cur is not None and cur is not saved:
                self.engine._cancel_entry(cur)
            self._timer = saved
            return
        # 3. the saved entry was consumed for good: arm a fresh timer at
        #    the saved absolute time (costs one sequence number, so this
        #    path is for standalone layer restores, not byte-exact replay).
        if cur is not None:
            self.engine._cancel_entry(cur)
        delay = self._timer_time - self.engine._now
        if delay < 0:
            raise SimulationError(
                f"cannot re-arm completion timer in the past "
                f"({self._timer_time} < now={self.engine._now})")
        self._timer = self.engine._post(delay, self._on_timer, (), False)

    # -- vector kernels (reached only when n >= _vec_min, i.e. never on
    # -- the scalar engine; numpy is guaranteed importable then) -----------
    def _rem_mirror(self, n: int):
        rem = self._rem_np
        if self._rem_clean_n != n:
            rem = self._rem_np = _np.array(
                [item.remaining for item in self._items])
            self._rem_clean_n = n
        return rem

    def _sync_vec(self, n: int, dt: int) -> None:
        np = _np
        rate = np.array(self._rate)
        rem = self._rem_mirror(n)
        active = rate > 0.0
        served = rate * dt
        served[~active] = 0.0
        fin_mask = active & (served >= rem - _EPS_WORK)
        np.copyto(served, rem, where=fin_mask)
        rem -= served  # in place: the mirror stays valid across syncs
        # total_work_served is a left-to-right fold in item order — the
        # scalar contract.  np.sum's pairwise reduction associates
        # differently and would break byte-identity; adding the 0.0 of
        # inactive items is an exact identity, so folding the full
        # column matches the scalar skip-if-idle loop bit for bit.
        total = self.total_work_served
        for served_i in served.tolist():
            total += served_i
        self.total_work_served = total
        items = self._items
        rem_list = rem.tolist()
        i = 0
        for item in items:
            item.remaining = rem_list[i]
            i += 1
        if fin_mask.any():
            # _complete evictions below invalidate the mirror (slots
            # shift) via _evict_slot — ordering is already correct.
            finished = [items[i] for i in np.nonzero(fin_mask)[0].tolist()]
            self._finish_batch(finished)

    def _soonest_eta_vec(self, n: int) -> Optional[int]:
        np = _np
        rate = np.array(self._rate)
        active = rate > 0.0
        if not active.any():
            return None
        rem = self._rem_mirror(n)
        if bool((active & (rem <= _EPS_WORK)).any()):
            return 0  # a degenerate zero-demand item completes now
        # Same per-element arithmetic as the scalar loop; inactive slots
        # are parked at the cap so they never win the min.
        eta_f = np.full(n, _ETA_CAP)
        np.divide(rem, rate, out=eta_f, where=active)
        eta_f += 0.999999
        best = float(eta_f.min())
        if best >= _ETA_CAP:
            return None
        eta = int(best)  # floor(min) == min(floor): floor is monotone
        return eta if eta >= 1 else 1


class VecRateExecutor(RateExecutor):
    """The vector engine: same observable behaviour as the scalar
    :class:`RateExecutor`, numpy passes for ``sync``/``_reschedule`` once
    ``len() >= VEC_MIN``.

    Below the threshold it *is* the scalar engine — the kernels live in
    the base class behind a single size comparison, so the hot
    real-world executors (one rank per CPU, a handful of stacked
    threads) pay zero dispatch overhead.  At or above the threshold,
    sync and ETA passes run as numpy array operations over a
    lazily-materialized float64 mirror of the remaining-work column:
    the mirror is rebuilt (one bulk gather) only after membership
    mutations invalidate it, and vector syncs update it in place, so
    steady large-n operation pays one ``np.array(rate_list)`` per pass
    and no gathers.  ``item.remaining`` is written back on every vector
    sync, so external observers see exactly what the scalar engine
    shows at the same instants.
    """

    #: Resident-set size at which the numpy kernels take over; below it,
    #: numpy call overhead loses to the scalar loop.
    VEC_MIN = 32
    _vec_min = VEC_MIN

    __slots__ = ()

    def __init__(
        self,
        engine: Engine,
        on_complete: Callable[[WorkItem], None],
        on_busy_change: Optional[Callable[[bool], None]] = None,
    ):
        if _np is None:  # pragma: no cover — guarded by make_rate_executor
            raise SimulationError("VecRateExecutor requires numpy")
        super().__init__(engine, on_complete, on_busy_change)
