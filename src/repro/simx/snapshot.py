"""The ``__snapshot__``/``__restore__`` protocol (DESIGN.md §11).

:meth:`repro.simx.engine.Engine.snapshot` rewinds the *scheduler*: the
event heap, the monotonic sequence counter, and the clock.  Everything
the simulation's callbacks mutate *outside* the heap — rate columns, SMM
residency state, RNG streams, network serializer clocks, mailbox depths
— lives in the layers, and each stateful layer exposes two methods:

``__snapshot__() -> dict``
    Capture the layer's mutable state.  Keys are plain strings; values
    must be JSON-able **except** keys starting with ``"_"``, which hold
    live object references (heap entries, event lists) that
    :func:`strip_refs` drops before digesting.

``__restore__(state) -> None``
    Reinstate a prior capture on the *same* object graph.  Raises
    :class:`~repro.simx.errors.SnapshotError` when the live population
    no longer matches (e.g. a timer entry was consumed and cannot be
    re-armed consistently).

The protocol serves two distinct consumers:

* the **digest path** (:func:`state_digest`) — fingerprinting a warmed
  simulation so the prefix-fork planner (:mod:`repro.runx.forkshare`)
  can key its :class:`SnapshotStore` on content, not provenance;
* the **rewind path** (:func:`snapshot_all` / :func:`restore_all`) —
  in-process checkpointing across a quiescent window, used by the
  property tests and by callers that probe a few instants ahead and
  roll back.

What is deliberately *not* snapshotted: metrics registries, timelines,
and traces.  They are observational accumulators — restoring them would
erase the record of the probe itself — so runs that attach any of them
are simply ineligible for the fork fast path (the planner falls back to
cold replay; see :mod:`repro.runx.forkshare`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.simx.errors import SnapshotError

__all__ = [
    "snapshot_all",
    "restore_all",
    "strip_refs",
    "state_digest",
    "engine_state",
    "cluster_snapshot",
    "cluster_restore",
    "cluster_digest",
]


def snapshot_all(objs: Iterable[Any]) -> List[Tuple[Any, Dict[str, Any]]]:
    """``[(obj, obj.__snapshot__()), ...]`` for each protocol object."""
    out = []
    for obj in objs:
        fn = getattr(obj, "__snapshot__", None)
        if fn is None:
            raise SnapshotError(
                f"{type(obj).__name__} does not implement __snapshot__")
        out.append((obj, fn()))
    return out

def restore_all(pairs: Iterable[Tuple[Any, Dict[str, Any]]]) -> None:
    """Reinstate captures in reverse order (layers were captured
    outside-in; restoring inside-out keeps parent invariants intact)."""
    for obj, state in reversed(list(pairs)):
        obj.__restore__(state)


def strip_refs(state: Any) -> Any:
    """Recursively drop ``"_"``-prefixed keys (live object references)
    so the remainder is JSON-able for digesting."""
    if isinstance(state, dict):
        return {k: strip_refs(v) for k, v in state.items()
                if not (isinstance(k, str) and k.startswith("_"))}
    if isinstance(state, (list, tuple)):
        return [strip_refs(v) for v in state]
    return state


def state_digest(*states: Any) -> str:
    """Content digest over the ref-stripped states (sha256, 16 hex chars
    — the same shape as :func:`repro.runx.spec.CellSpec.digest`)."""
    blob = json.dumps([strip_refs(s) for s in states],
                      sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def engine_state(engine) -> Dict[str, Any]:
    """A digest-friendly projection of the scheduler: clock, counters,
    and the (time, seq, daemon, cancelled) shape of every pending entry.
    Callback identities are deliberately excluded — two engines that
    agree on this projection *and* on every layer's ``__snapshot__`` are
    replay-equivalent."""
    return {
        "now": engine._now,
        "seq": engine._seq,
        "foreground": engine._foreground,
        "live": engine._live_processes,
        "pending": sorted(
            (e[0], e[1], bool(e[4]), bool(e[5])) for e in engine._heap),
    }


def _cluster_layers(cluster) -> List[Any]:
    """Every protocol-bearing layer of a cluster, outside-in: network,
    then per-node (clock, SMM, node, scheduler, per-CPU executors), then
    the communicator-independent SMI sources."""
    layers: List[Any] = [cluster.network]
    for node in cluster.nodes:
        layers.append(node.clock)
        layers.append(node.smm)
        layers.append(node)
        if node.scheduler is not None:
            layers.append(node.scheduler)
        for cpu in node.cpus:
            layers.append(cpu.executor)
        if node.nic is not None:
            layers.append(node.nic)
    layers.extend(src for src in cluster.smi_sources if src.proc is not None)
    return layers


def cluster_snapshot(cluster) -> Dict[str, Any]:
    """Snapshot a whole cluster: the engine plus every stateful layer.

    Returns ``{"engine": EngineSnapshot, "_layers": [(obj, state)...]}``
    — hand it to :func:`cluster_restore`.  Communicators attached by a
    running job are *not* walked here; callers snapshotting mid-job pass
    them via ``extra``."""
    layers = _cluster_layers(cluster)
    return {
        "engine": cluster.engine.snapshot(),
        "_layers": snapshot_all(layers),
    }


def cluster_restore(cluster, snap: Dict[str, Any]) -> None:
    """Rewind a cluster to a :func:`cluster_snapshot` capture."""
    cluster.engine.restore(snap["engine"])
    restore_all(snap["_layers"])


def cluster_digest(cluster) -> str:
    """Content fingerprint of a warmed cluster's full mutable state."""
    states = [engine_state(cluster.engine)]
    states.extend(s for _o, s in snapshot_all(_cluster_layers(cluster)))
    return state_digest(*states)
