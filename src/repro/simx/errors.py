"""Exception types raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for all errors raised by :mod:`repro.simx`."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Engine.run` when ``run_until_deadlock`` detects that
    live processes remain but no events are scheduled.

    A deadlock in the simulator almost always indicates a modeling bug —
    e.g. an MPI rank blocked on a receive that no one will send, or a task
    waiting on a lock whose holder has exited.  The error message lists the
    blocked processes to make those bugs debuggable.
    """


class ProcessKilled(SimulationError):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class NodeFailedError(SimulationError):
    """Thrown into every task process hosted on a node when the node fails.

    Unlike :class:`ProcessKilled` (which terminates a process *cleanly* —
    its ``done_event`` succeeds), a node failure is an *error* outcome:
    the process's ``done_event`` fails, so joiners and the MPI layer can
    distinguish "rank finished" from "rank died with its node"."""


class GateClosedForever(SimulationError):
    """Raised when a wake-up is delivered through a gate that reports it
    will never reopen (e.g. a node that has been powered off)."""


class SnapshotError(SimulationError):
    """Raised by :meth:`Engine.restore` (and layer ``__restore__``
    implementations) when the live object population no longer matches the
    snapshot — e.g. a process stepped, died, or was created since
    :meth:`Engine.snapshot`.  Restoring across such a boundary would
    resurrect generators whose frames have already advanced, so the
    engine refuses rather than silently diverging."""
