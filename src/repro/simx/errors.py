"""Exception types raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for all errors raised by :mod:`repro.simx`."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Engine.run` when ``run_until_deadlock`` detects that
    live processes remain but no events are scheduled.

    A deadlock in the simulator almost always indicates a modeling bug —
    e.g. an MPI rank blocked on a receive that no one will send, or a task
    waiting on a lock whose holder has exited.  The error message lists the
    blocked processes to make those bugs debuggable.
    """


class ProcessKilled(SimulationError):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class GateClosedForever(SimulationError):
    """Raised when a wake-up is delivered through a gate that reports it
    will never reopen (e.g. a node that has been powered off)."""
