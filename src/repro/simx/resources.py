"""Synchronization and communication primitives for simulation processes.

All primitives are *fair* (FIFO) and deterministic.  They are used both by
the OS substrate (run-queue hand-off, pipe model) and by the simulated MPI
(point-to-point channels under the hood of :mod:`repro.mpi.comm`).

Usage inside a process generator::

    lock = Lock(engine)
    def body():
        yield from lock.acquire()
        try:
            ...
        finally:
            lock.release()
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.simx.engine import Engine, Event
from repro.simx.errors import SimulationError

__all__ = ["Lock", "Semaphore", "Barrier", "Channel", "Store"]


class Semaphore:
    """Counting semaphore with FIFO wake-up order."""

    def __init__(self, engine: Engine, value: int = 1, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.engine = engine
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Generator[Any, Any, None]:
        """Generator: suspend until a unit is available, then take it."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return
        ev = self.engine.event(name=f"{self.name}.acquire")
        self._waiters.append(ev)
        yield ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        """Return a unit; wakes the oldest waiter if any."""
        if self._waiters:
            # Hand the unit directly to the next waiter (no count bump) so
            # a fast looper cannot barge past queued processes.
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Lock(Semaphore):
    """Binary mutex.  ``release`` on an unheld lock raises."""

    def __init__(self, engine: Engine, name: str = "lock"):
        super().__init__(engine, value=1, name=name)

    @property
    def held(self) -> bool:
        return self._value == 0

    def release(self) -> None:
        if self._value == 1 and not self._waiters:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        super().release()


class Barrier:
    """Reusable N-party barrier.

    The i-th arrival of each generation suspends until all N have arrived;
    all are then released at the same instant.  ``wait()`` resumes with the
    arrival index (0-based) within the generation, which tests use to
    verify release ordering.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs >= 1 parties")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._generation = 0
        self._arrived: list[Event] = []

    def wait(self) -> Generator[Any, Any, int]:
        index = len(self._arrived)
        if index + 1 == self.parties:
            arrived, self._arrived = self._arrived, []
            self._generation += 1
            for ev in arrived:
                ev.succeed(None)
            return index
        ev = self.engine.event(name=f"{self.name}.g{self._generation}")
        self._arrived.append(ev)
        yield ev
        return index


class Channel:
    """A rendezvous-free FIFO message channel with optional capacity.

    ``put`` blocks when the channel holds ``capacity`` items (capacity
    ``None`` = unbounded); ``get`` blocks when empty.  This is the building
    block for the pipe model in the UnixBench substrate and for MPI eager
    message queues.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: Optional[int] = None,
        name: str = "chan",
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Generator[Any, Any, None]:
        """Generator: enqueue ``item``, blocking while full."""
        if self._getters:
            # Direct handoff to the oldest blocked getter.
            self._getters.popleft().succeed(item)
            return
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return
        ev = self.engine.event(name=f"{self.name}.put")
        self._putters.append((ev, item))
        yield ev

    def try_put(self, item: Any) -> bool:
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Generator[Any, Any, Any]:
        """Generator: dequeue the oldest item, blocking while empty."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return item
        ev = self.engine.event(name=f"{self.name}.get")
        self._getters.append(ev)
        item = yield ev
        return item

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()


class Store:
    """An unbounded keyed mailbox with predicate matching.

    Used by the MPI matching engine: receivers wait for the first message
    satisfying a predicate (source/tag match); messages arriving earlier
    are held in an unexpected-message queue, preserving MPI's
    non-overtaking order between any (source, tag) pair.

    Items live in an insertion-ordered dict (monotonic id → item), so a
    predicate scan still sees arrival order while removal anywhere in the
    queue is O(1).  With a ``key_fn`` the store additionally maintains a
    per-key index (key → deque of ids), which :meth:`get_async` uses to
    match an *exact* key without scanning unrelated items — the MPI
    source/tag fast path.  Ids left stale in the index by predicate-path
    removals are skipped lazily.
    """

    def __init__(self, engine: Engine, name: str = "store", key_fn=None):
        self.engine = engine
        self.name = name
        self._key_fn = key_fn
        self._seq = 0
        self._items: dict[int, Any] = {}  # insertion-ordered: id -> item
        self._index: Optional[dict[Any, Deque[int]]] = (
            {} if key_fn is not None else None
        )
        self._waiters: list[tuple[Any, Event]] = []  # (predicate, event)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the *oldest* waiter whose predicate
        matches (FIFO among waiters, preserving arrival order of items).

        Waiters whose event has already triggered are skipped (and
        dropped): the MPI failure detector fails pending-receive events
        out from under the store, and a late-arriving message must not
        re-trigger them."""
        stale = False
        for i, (pred, ev) in enumerate(self._waiters):
            if ev._ok is not None:
                stale = True
                continue
            if pred(item):
                del self._waiters[i]
                ev.succeed(item)
                return
        if stale:
            self._waiters = [w for w in self._waiters if w[1]._ok is None]
        self._seq += 1
        self._items[self._seq] = item
        if self._index is not None:
            key = self._key_fn(item)
            q = self._index.get(key)
            if q is None:
                self._index[key] = q = deque()
            q.append(self._seq)

    def get_async(self, predicate, key: Any = None) -> Event:
        """Non-blocking matching: returns an event that succeeds (with the
        item) as soon as a matching item is available — immediately if one
        is already queued.  This is the primitive under MPI ``irecv``.

        ``key`` (only meaningful with a ``key_fn``) asserts that
        ``predicate`` accepts exactly the items whose ``key_fn`` equals
        ``key``; the oldest such item is then found via the index instead
        of a queue scan.  Per-key FIFO (non-overtaking) order is identical
        either way.
        """
        ev = self.engine.event(name=f"{self.name}.match")
        items = self._items
        if key is not None and self._index is not None:
            q = self._index.get(key)
            if q:
                while q:
                    item = items.pop(q.popleft(), None)  # None: stale id
                    if item is not None:
                        ev.succeed(item)
                        return ev
            self._waiters.append((predicate, ev))
            return ev
        for sid, item in items.items():
            if predicate(item):
                del items[sid]
                ev.succeed(item)
                return ev
        self._waiters.append((predicate, ev))
        return ev

    def get(self, predicate, key: Any = None) -> Generator[Any, Any, Any]:
        """Generator: retrieve the oldest item matching ``predicate``."""
        item = yield self.get_async(predicate, key)
        return item

    def peek(self, predicate) -> Optional[Any]:
        """Return (without removing) the oldest matching item, or None."""
        for item in self._items.values():
            if predicate(item):
                return item
        return None

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        return {
            "seq": self._seq,
            "depth": len(self._items),
            "n_waiters": len(self._waiters),
            "_items": dict(self._items),
            "_index": ({k: list(q) for k, q in self._index.items()}
                       if self._index is not None else None),
            "_waiters": list(self._waiters),
        }

    def __restore__(self, state: dict) -> None:
        from collections import deque as _deque

        self._seq = state["seq"]
        self._items = dict(state["_items"])
        if self._index is not None:
            self._index = {k: _deque(ids)
                           for k, ids in state["_index"].items()}
        self._waiters = list(state["_waiters"])
