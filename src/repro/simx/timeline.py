"""Trace recording: the simulator's equivalent of a measurement infrastructure.

The paper's central methodological point is that *the platform's own
instrumentation lies* about SMM time.  The :class:`Timeline` is the
omniscient observer that the real hardware lacks: every interesting
transition (SMM entry/exit, task state changes, messages, interrupts) is
recorded here with ground-truth timestamps, so the analysis layer
(:mod:`repro.core.attribution`) can compare ground truth against the
kernel's (deliberately wrong) accounting and against what a profiling tool
would report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = ["TraceRecord", "Timeline"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``kind`` is a dotted event name (``smm.enter``, ``task.run``,
    ``net.deliver``, ...); ``where`` identifies the component (node id, cpu
    id); ``data`` is a small dict of event attributes.
    """

    time: int
    kind: str
    where: str
    data: dict = field(default_factory=dict)


class Timeline:
    """An append-only trace with simple querying.

    Recording can be disabled per-kind-prefix for big runs (the benchmark
    harness disables ``task.*`` records for million-event BT runs while
    keeping ``smm.*``).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        # Bound-method cache: record() is called once per SMM transition /
        # message / interrupt on big runs.
        self._append = self._records.append
        self._muted_prefixes: tuple[str, ...] = ()
        self._counters: dict[str, int] = {}

    # -- recording ----------------------------------------------------------
    def record(self, time: int, kind: str, where: str, **data: Any) -> None:
        """Record one transition.  A disabled timeline does nothing at all
        (no records *and* no counters) — hot call sites additionally guard
        with ``if timeline.enabled`` so a disabled run pays one attribute
        test, not a call."""
        if not self.enabled:
            return
        counters = self._counters
        counters[kind] = counters.get(kind, 0) + 1
        if self._muted_prefixes and kind.startswith(self._muted_prefixes):
            return
        self._append(TraceRecord(time, kind, where, data))

    def mute(self, *prefixes: str) -> None:
        """Stop storing records whose kind starts with any prefix
        (counters still accumulate)."""
        self._muted_prefixes = tuple(set(self._muted_prefixes) | set(prefixes))

    # -- querying ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        kind: Optional[str] = None,
        where: Optional[str] = None,
        t0: Optional[int] = None,
        t1: Optional[int] = None,
        pred: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Filter records by kind prefix, component, time window, predicate."""
        out = []
        for r in self._records:
            if kind is not None and not r.kind.startswith(kind):
                continue
            if where is not None and r.where != where:
                continue
            if t0 is not None and r.time < t0:
                continue
            if t1 is not None and r.time >= t1:
                continue
            if pred is not None and not pred(r):
                continue
            out.append(r)
        return out

    def count(self, kind: str) -> int:
        """Total number of records of exactly this kind while *enabled*
        (muting does not affect counters; disabling stops them)."""
        return self._counters.get(kind, 0)

    def intervals(self, enter_kind: str, exit_kind: str, where: Optional[str] = None
                  ) -> list[tuple[int, int]]:
        """Pair up enter/exit records into [start, end) intervals.

        Used to extract SMM residency windows:
        ``timeline.intervals("smm.enter", "smm.exit", where="node0")``.
        Unclosed trailing intervals are dropped.
        """
        starts: list[int] = []
        out: list[tuple[int, int]] = []
        for r in self._records:
            if where is not None and r.where != where:
                continue
            if r.kind == enter_kind:
                starts.append(r.time)
            elif r.kind == exit_kind and starts:
                out.append((starts.pop(), r.time))
        return out

    @staticmethod
    def total_overlap(intervals: Iterable[tuple[int, int]], t0: int, t1: int) -> int:
        """Total time inside ``[t0, t1)`` covered by the (possibly
        unsorted, non-overlapping) intervals."""
        tot = 0
        for a, b in intervals:
            lo, hi = max(a, t0), min(b, t1)
            if hi > lo:
                tot += hi - lo
        return tot
