"""The discrete-event engine: clock, event heap, and generator processes.

Time model
----------
Simulated time is an ``int`` count of nanoseconds from simulation start.
Using integers removes floating-point drift: two events scheduled for the
same instant compare equal, and replays are exact.

Process model
-------------
A *process* wraps a generator.  The generator communicates with the engine
by yielding one of:

``Delay(ns)`` or a plain ``int``
    Suspend for that many nanoseconds of simulated time.

:class:`Event`
    Suspend until the event succeeds (resumes with the event's value) or
    fails (the stored exception is thrown into the generator).

:class:`Process`
    Suspend until that process terminates (join).  Resumes with the
    process's return value; re-raises the process's exception.

:class:`AllOf` / :class:`AnyOf`
    Composite waits over several events/processes.

Gates
-----
A process may be constructed with a *gate* — any object with a method
``deliver(fn: Callable[[], None]) -> None``.  Every resumption of the
process is routed through the gate.  This is how System Management Mode is
modeled: a node acts as the gate for every task process it hosts, and
while the node's cores are frozen in SMM the gate queues wake-ups instead
of delivering them (see :class:`repro.machine.node.Node`).  Hardware-level
processes (the SMM controller itself, the SMI source, NIC transfers) are
created without a gate and are therefore unaffected by the freeze — just
like real hardware below the host software stack.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.simx.errors import DeadlockError, ProcessKilled, SimulationError

__all__ = ["Engine", "Delay", "Event", "AllOf", "AnyOf", "Interrupt", "Process", "Handle"]


@dataclass(frozen=True)
class Delay:
    """Yieldable command: suspend the process for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError(f"negative delay: {self.ns}")


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`Process.interrupt`.

    Carries an arbitrary ``cause``.  Used e.g. by the interrupt-controller
    model to preempt a task that is sleeping.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*; exactly one of :meth:`succeed` or
    :meth:`fail` may be called, after which waiters are resumed.  Waiters
    that register after triggering are resumed immediately (on delivery
    through their gate).
    """

    __slots__ = ("engine", "_ok", "_value", "_exc", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value (or the exception if the event failed)."""
        if self._ok is None:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value if self._ok else self._exc

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)``; invoked immediately if already triggered."""
        if self._ok is not None:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<Event {self.name!r} {state}>"


class AllOf:
    """Composite wait: resume when *all* of the given waitables trigger.

    Resumes with a list of values in input order.  If any waitable fails,
    the first failure is raised into the waiting process.
    """

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)


class AnyOf:
    """Composite wait: resume when *any one* of the given waitables triggers.

    Resumes with ``(index, value)`` of the first trigger.  A failure of the
    first-triggering waitable is raised.
    """

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("AnyOf requires at least one waitable")


class Handle:
    """A cancelable scheduled callback returned by :meth:`Engine.schedule`.

    ``daemon`` callbacks do not keep the engine alive: like daemon
    threads, they serve perpetual background activities (the SMI trigger
    timer, the kernel's periodic load balancer) and :meth:`Engine.run`
    returns once only daemon events remain.
    """

    __slots__ = ("engine", "time", "seq", "fn", "cancelled", "daemon")

    def __init__(self, engine: "Engine", time: int, seq: int,
                 fn: Callable[[], None], daemon: bool):
        self.engine = engine
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if not self.daemon:
                self.engine._foreground -= 1

    def __lt__(self, other: "Handle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Process:
    """A running generator on the engine.  See module docstring for the
    yield protocol.  A process is itself waitable (join)."""

    __slots__ = (
        "engine",
        "name",
        "gen",
        "gate",
        "daemon",
        "done_event",
        "_alive",
        "_pending_handle",
        "_waiting_on",
    )

    def __init__(
        self,
        engine: "Engine",
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        gate: Any = None,
        daemon: bool = False,
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator (got {type(gen).__name__}); "
                "did you forget `yield` in the function?"
            )
        self.engine = engine
        self.name = name
        self.gen = gen
        self.gate = gate
        self.daemon = daemon
        self.done_event = Event(engine, name=f"{name}.done")
        self._alive = True
        self._pending_handle: Optional[Handle] = None
        self._waiting_on: Any = None
        engine._live_processes += 1
        # First step happens at the current instant, in scheduling order.
        engine.schedule(0, self._step, None, None, daemon=daemon)

    # -- public -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if not finished or failed."""
        return self.done_event.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Only a process that is suspended (waiting on a delay or event) can
        be interrupted; interrupting a dead process is a no-op.
        """
        if not self._alive:
            return
        self._cancel_pending()
        self.engine.schedule(0, self._step, None, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        self._cancel_pending()
        self.engine.schedule(0, self._step, None, ProcessKilled(self.name))

    # -- engine internals ---------------------------------------------------
    def _cancel_pending(self) -> None:
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._waiting_on = None

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        """Resume through the gate (if any).

        Resumption is always *scheduled* (never synchronous): an event may
        trigger deep inside a rate-executor sync or an interrupt handler,
        and running user generator code re-entrantly from there would let
        a task mutate CPU state mid-recomputation.  Scheduling at +0 ns
        keeps simulated time identical while serializing the control flow.
        """
        self._pending_handle = None
        self._waiting_on = None
        if self.gate is None:
            self.engine.schedule(0, self._step, value, exc, daemon=self.daemon)
        else:
            self.gate.deliver(lambda: self._step(value, exc))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(ok=True, value=stop.value)
            return
        except ProcessKilled as pk:
            self._finish(ok=True, value=None, killed=pk)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into joiners
            self._finish(ok=False, exc=err)
            return
        self._wait_on(cmd)

    def _finish(
        self,
        ok: bool,
        value: Any = None,
        exc: Optional[BaseException] = None,
        killed: Optional[ProcessKilled] = None,
    ) -> None:
        self._alive = False
        self.engine._live_processes -= 1
        self.gen.close()
        if ok:
            self.done_event.succeed(value)
        else:
            assert exc is not None
            if not self.done_event._callbacks:
                # No joiner: surface the error at the engine level rather
                # than dropping it silently.
                self.engine._record_orphan_failure(self, exc)
            self.done_event.fail(exc)

    def _wait_on(self, cmd: Any) -> None:
        eng = self.engine
        if isinstance(cmd, int):
            cmd = Delay(cmd)
        if isinstance(cmd, Delay):
            self._pending_handle = eng.schedule(
                cmd.ns, self._resume, None, None, daemon=self.daemon
            )
            self._waiting_on = cmd
        elif isinstance(cmd, Process):
            self._wait_event(cmd.done_event)
        elif isinstance(cmd, Event):
            self._wait_event(cmd)
        elif isinstance(cmd, AllOf):
            self._wait_all(cmd)
        elif isinstance(cmd, AnyOf):
            self._wait_any(cmd)
        else:
            self._resume(
                None,
                TypeError(f"process {self.name!r} yielded unsupported {cmd!r}"),
            )

    def _wait_event(self, ev: Event) -> None:
        self._waiting_on = ev
        token = object()
        self._pending_handle = _EventHandle(self, token)

        def on_trigger(event: Event, token=token) -> None:
            handle = self._pending_handle
            if not isinstance(handle, _EventHandle) or handle.token is not token:
                return  # stale registration (process was interrupted/killed)
            if event.ok:
                self._resume(event._value, None)
            else:
                self._resume(None, event._exc)

        ev.add_callback(on_trigger)

    def _wait_all(self, allof: AllOf) -> None:
        events = [_as_event(w) for w in allof.waitables]
        if not events:
            self._pending_handle = self.engine.schedule(0, self._resume, [], None)
            return
        self._waiting_on = allof
        token = object()
        self._pending_handle = _EventHandle(self, token)
        remaining = {"n": len(events)}

        def on_one(event: Event, token=token) -> None:
            handle = self._pending_handle
            if not isinstance(handle, _EventHandle) or handle.token is not token:
                return
            if not event.ok:
                self._resume(None, event._exc)
                return
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._resume([e._value for e in events], None)

        for e in events:
            e.add_callback(on_one)

    def _wait_any(self, anyof: AnyOf) -> None:
        events = [_as_event(w) for w in anyof.waitables]
        self._waiting_on = anyof
        token = object()
        self._pending_handle = _EventHandle(self, token)

        def make_cb(i: int):
            def on_one(event: Event, token=token) -> None:
                handle = self._pending_handle
                if not isinstance(handle, _EventHandle) or handle.token is not token:
                    return
                if event.ok:
                    self._resume((i, event._value), None)
                else:
                    self._resume(None, event._exc)

            return on_one

        for i, e in enumerate(events):
            e.add_callback(make_cb(i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state} waiting_on={self._waiting_on!r}>"


class _EventHandle:
    """Pseudo-handle marking 'waiting on an event'; cancel() invalidates the
    registration token so stale callbacks are ignored."""

    __slots__ = ("proc", "token", "cancelled")

    def __init__(self, proc: Process, token: object):
        self.proc = proc
        self.token = token
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self.token = None


def _as_event(w: Any) -> Event:
    if isinstance(w, Event):
        return w
    if isinstance(w, Process):
        return w.done_event
    raise TypeError(f"cannot wait on {w!r}")


class Engine:
    """The event loop: an event heap plus a live-process census.

    Typical use::

        eng = Engine()
        def body():
            yield Delay(1_000)
            return 42
        p = eng.process(body(), name="answer")
        eng.run()
        assert p.result == 42
    """

    def __init__(self, metrics=None) -> None:
        self._heap: list[Handle] = []
        self._now = 0
        self._seq = 0
        self._live_processes = 0
        self._foreground = 0  # pending non-daemon callbacks
        self._orphan_failures: list[tuple[str, BaseException]] = []
        # Observability: instruments are cached here (or None) so the
        # disabled-mode cost on the scheduling/dispatch hot paths is a
        # single attribute check (see repro.obs.metrics).
        self.metrics = metrics
        if metrics is not None:
            self._m_scheduled = metrics.counter(
                "engine.events.scheduled", "event-heap pushes")
            self._m_fired = metrics.counter(
                "engine.events.fired", "callbacks dispatched")
            self._m_heap = metrics.gauge(
                "engine.heap.depth", "event-heap size after each push")
        else:
            self._m_scheduled = None
            self._m_fired = None
            self._m_heap = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable[..., None], *args: Any,
                 daemon: bool = False) -> Handle:
        """Schedule ``fn(*args)`` after ``delay_ns`` nanoseconds."""
        return self.schedule_at(self._now + int(delay_ns), fn, *args, daemon=daemon)

    def schedule_at(self, t_ns: int, fn: Callable[..., None], *args: Any,
                    daemon: bool = False) -> Handle:
        """Schedule ``fn(*args)`` at absolute time ``t_ns``.

        ``daemon=True`` events do not keep :meth:`run` alive on their own.
        """
        if t_ns < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {t_ns} < now={self._now}"
            )
        self._seq += 1
        h = Handle(self, int(t_ns), self._seq,
                   (lambda: fn(*args)) if args else fn, daemon)
        if not daemon:
            self._foreground += 1
        heapq.heappush(self._heap, h)
        if self._m_scheduled is not None:
            self._m_scheduled.value += 1
            self._m_heap.set(len(self._heap))
        return h

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None) -> Event:
        """An event that succeeds after ``delay_ns``, carrying ``value``."""
        ev = Event(self, name=f"timeout+{delay_ns}")
        self.schedule(delay_ns, ev.succeed, value)
        return ev

    def process(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        gate: Any = None,
        daemon: bool = False,
    ) -> Process:
        """Start a new process from a generator.  ``daemon`` processes
        (perpetual noise sources, periodic kernel work) do not keep
        :meth:`run` alive."""
        return Process(self, gen, name=name, gate=gate, daemon=daemon)

    # -- execution --------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> int:
        """Run until the heap is exhausted or ``until_ns`` is reached.

        Returns the final simulated time.  Unhandled process failures with
        no joiner are re-raised here so they cannot be lost.
        """
        heap = self._heap
        while heap and self._foreground > 0:
            h = heap[0]
            if until_ns is not None and h.time > until_ns:
                self._now = until_ns
                return self._now
            heapq.heappop(heap)
            if h.cancelled:
                continue
            if not h.daemon:
                self._foreground -= 1
            self._now = h.time
            if self._m_fired is not None:
                self._m_fired.value += 1
            h.fn()
            if self._orphan_failures:
                name, exc = self._orphan_failures[0]
                raise SimulationError(
                    f"process {name!r} failed with no joiner"
                ) from exc
        if until_ns is not None and until_ns > self._now:
            self._now = until_ns
        return self._now

    def run_until(self, event: Event, limit_ns: Optional[int] = None) -> int:
        """Run until ``event`` triggers (or the heap empties / ``limit_ns``).

        This is how experiments with perpetual noise sources terminate:
        the workload's completion event stops the loop even though the
        SMI source would keep scheduling forever.
        """
        heap = self._heap
        while heap and not event.triggered:
            h = heap[0]
            if limit_ns is not None and h.time > limit_ns:
                self._now = limit_ns
                return self._now
            heapq.heappop(heap)
            if h.cancelled:
                continue
            if not h.daemon:
                self._foreground -= 1
            self._now = h.time
            if self._m_fired is not None:
                self._m_fired.value += 1
            h.fn()
            if self._orphan_failures:
                name, exc = self._orphan_failures[0]
                raise SimulationError(
                    f"process {name!r} failed with no joiner"
                ) from exc
        return self._now

    def run_until_deadlock_check(self) -> int:
        """Run to completion; raise :class:`DeadlockError` if processes
        remain alive with an empty heap (e.g. an MPI recv never matched)."""
        t = self.run()
        if self._live_processes > 0:
            raise DeadlockError(
                f"{self._live_processes} process(es) still alive at t={t} "
                "with no scheduled events (blocked forever)"
            )
        return t

    def _record_orphan_failure(self, proc: Process, exc: BaseException) -> None:
        self._orphan_failures.append((proc.name, exc))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self._now} pending={len(self._heap)} "
            f"live={self._live_processes}>"
        )
