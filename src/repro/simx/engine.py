"""The discrete-event engine: clock, event heap, and generator processes.

Time model
----------
Simulated time is an ``int`` count of nanoseconds from simulation start.
Using integers removes floating-point drift: two events scheduled for the
same instant compare equal, and replays are exact.

Process model
-------------
A *process* wraps a generator.  The generator communicates with the engine
by yielding one of:

``Delay(ns)`` or a plain ``int``
    Suspend for that many nanoseconds of simulated time.

:class:`Event`
    Suspend until the event succeeds (resumes with the event's value) or
    fails (the stored exception is thrown into the generator).

:class:`Process`
    Suspend until that process terminates (join).  Resumes with the
    process's return value; re-raises the process's exception.

:class:`AllOf` / :class:`AnyOf`
    Composite waits over several events/processes.

Gates
-----
A process may be constructed with a *gate* — any object with a method
``deliver(fn: Callable[[], None]) -> None``.  Every resumption of the
process is routed through the gate.  This is how System Management Mode is
modeled: a node acts as the gate for every task process it hosts, and
while the node's cores are frozen in SMM the gate queues wake-ups instead
of delivering them (see :class:`repro.machine.node.Node`).  Hardware-level
processes (the SMM controller itself, the SMI source, NIC transfers) are
created without a gate and are therefore unaffected by the freeze — just
like real hardware below the host software stack.

Hot-path representation (DESIGN.md §3 "Performance")
----------------------------------------------------
Heap entries are plain lists ``[time, seq, fn, args, daemon, cancelled]``
rather than objects: ``heapq`` then compares them with C-level list
comparison (``seq`` is unique, so comparison never reaches ``fn``), and
no closure is allocated per scheduled callback.  Cancellation is *lazy*:
``cancel`` flips the tombstone flag in place and the run loop discards
the entry when it surfaces, so cancelling never touches the heap.  The
public :class:`Handle` is a thin view over the entry; internal callers
(processes, rate executors) use :meth:`Engine._post` and skip even that
allocation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.simx.errors import (
    DeadlockError,
    ProcessKilled,
    SimulationError,
    SnapshotError,
)

__all__ = [
    "Engine",
    "EngineSnapshot",
    "Delay",
    "Event",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Handle",
]

# Heap-entry field indices (see module docstring).
_TIME, _SEQ, _FN, _ARGS, _DAEMON, _CANCELLED = range(6)

_heappush = heapq.heappush
_heappop = heapq.heappop


@dataclass(frozen=True)
class Delay:
    """Yieldable command: suspend the process for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError(f"negative delay: {self.ns}")


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`Process.interrupt`.

    Carries an arbitrary ``cause``.  Used e.g. by the interrupt-controller
    model to preempt a task that is sleeping.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*; exactly one of :meth:`succeed` or
    :meth:`fail` may be called, after which waiters are resumed.  Waiters
    that register after triggering are resumed immediately (on delivery
    through their gate).
    """

    __slots__ = ("engine", "_ok", "_value", "_exc", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value (or the exception if the event failed)."""
        if self._ok is None:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value if self._ok else self._exc

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._ok = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            if len(callbacks) == 1:
                # Single-waiter fast path: the overwhelmingly common case
                # (a process joining a delay/segment/message completion).
                cb = callbacks[0]
                callbacks.clear()
                cb(self)
            else:
                self._callbacks = []
                for cb in callbacks:
                    cb(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)``; invoked immediately if already triggered."""
        if self._ok is not None:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<Event {self.name!r} {state}>"


class AllOf:
    """Composite wait: resume when *all* of the given waitables trigger.

    Resumes with a list of values in input order.  If any waitable fails,
    the first failure is raised into the waiting process.
    """

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)


class AnyOf:
    """Composite wait: resume when *any one* of the given waitables triggers.

    Resumes with ``(index, value)`` of the first trigger.  A failure of the
    first-triggering waitable is raised.
    """

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise ValueError("AnyOf requires at least one waitable")


class Handle:
    """A cancelable scheduled callback returned by :meth:`Engine.schedule`.

    ``daemon`` callbacks do not keep the engine alive: like daemon
    threads, they serve perpetual background activities (the SMI trigger
    timer, the kernel's periodic load balancer) and :meth:`Engine.run`
    returns once only daemon events remain.
    """

    __slots__ = ("engine", "_entry")

    def __init__(self, engine: "Engine", entry: list):
        self.engine = engine
        self._entry = entry

    @property
    def time(self) -> int:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def fn(self) -> Callable[..., None]:
        return self._entry[_FN]

    @property
    def daemon(self) -> bool:
        return self._entry[_DAEMON]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.engine._cancel_entry(self._entry)

    def __lt__(self, other: "Handle") -> bool:
        return self._entry < other._entry


class Process:
    """A running generator on the engine.  See module docstring for the
    yield protocol.  A process is itself waitable (join)."""

    __slots__ = (
        "engine",
        "name",
        "gen",
        "gate",
        "daemon",
        "done_event",
        "_alive",
        "_pending_handle",
        "_waiting_on",
        "_steps",
    )

    def __init__(
        self,
        engine: "Engine",
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        gate: Any = None,
        daemon: bool = False,
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator (got {type(gen).__name__}); "
                "did you forget `yield` in the function?"
            )
        self.engine = engine
        self.name = name
        self.gen = gen
        self.gate = gate
        self.daemon = daemon
        self.done_event = Event(engine, name=f"{name}.done")
        self._alive = True
        #: One of: a raw heap entry (delay wait), a ``_Waiter`` (event
        #: wait), or None.  Identity doubles as the staleness token for
        #: event callbacks.
        self._pending_handle: Any = None
        self._waiting_on: Any = None
        #: Generator resumption count — the staleness census token for
        #: :meth:`Engine.snapshot`/:meth:`Engine.restore`: a process whose
        #: frame advanced since the snapshot cannot be rewound.
        self._steps = 0
        engine._live_processes += 1
        engine._procs[id(self)] = self
        # First step happens at the current instant, in scheduling order.
        engine._post(0, self._step, (None, None), daemon)

    # -- public -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if not finished or failed."""
        return self.done_event.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Only a process that is suspended (waiting on a delay or event) can
        be interrupted; interrupting a dead process is a no-op.
        """
        if not self._alive:
            return
        self._cancel_pending()
        self.engine._post(0, self._step, (None, Interrupt(cause)), False)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        self._cancel_pending()
        self.engine._post(0, self._step, (None, ProcessKilled(self.name)), False)

    def abort(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current instant, bypassing
        its gate.

        :meth:`kill` ends a process *cleanly* (its ``done_event`` succeeds);
        ``abort`` is the error path — unless the generator catches ``exc``,
        the ``done_event`` fails with it.  Bypassing the gate matters for
        fault injection: when a node fails, the gate *is* the failed node,
        which no longer delivers wake-ups.
        """
        if not self._alive:
            return
        self._cancel_pending()
        self.engine._post(0, self._step, (None, exc), False)

    # -- engine internals ---------------------------------------------------
    def _cancel_pending(self) -> None:
        h = self._pending_handle
        if h is not None:
            if type(h) is list:  # raw heap entry (delay wait)
                self.engine._cancel_entry(h)
            self._pending_handle = None
        self._waiting_on = None

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        """Resume through the gate (if any).

        Resumption is always *scheduled* (never synchronous): an event may
        trigger deep inside a rate-executor sync or an interrupt handler,
        and running user generator code re-entrantly from there would let
        a task mutate CPU state mid-recomputation.  Scheduling at +0 ns
        keeps simulated time identical while serializing the control flow.
        """
        self._pending_handle = None
        self._waiting_on = None
        if self.gate is None:
            self.engine._post(0, self._step, (value, exc), self.daemon)
        else:
            self.gate.deliver(lambda: self._step(value, exc))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        self._steps += 1
        try:
            if exc is not None:
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(ok=True, value=stop.value)
            return
        except ProcessKilled as pk:
            self._finish(ok=True, value=None, killed=pk)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into joiners
            self._finish(ok=False, exc=err)
            return
        self._wait_on(cmd)

    def _finish(
        self,
        ok: bool,
        value: Any = None,
        exc: Optional[BaseException] = None,
        killed: Optional[ProcessKilled] = None,
    ) -> None:
        self._alive = False
        self.engine._live_processes -= 1
        self.engine._procs.pop(id(self), None)
        self.gen.close()
        if ok:
            self.done_event.succeed(value)
        else:
            assert exc is not None
            if not self.done_event._callbacks:
                # No joiner: surface the error at the engine level rather
                # than dropping it silently.
                self.engine._record_orphan_failure(self, exc)
            self.done_event.fail(exc)

    def _wait_on(self, cmd: Any) -> None:
        cls = cmd.__class__
        if cls is Delay:
            self._pending_handle = self.engine._post(
                cmd.ns, self._resume, (None, None), self.daemon
            )
            self._waiting_on = cmd
        elif cls is int:
            if cmd < 0:
                raise ValueError(f"negative delay: {cmd}")
            self._pending_handle = self.engine._post(
                cmd, self._resume, (None, None), self.daemon
            )
            self._waiting_on = cmd
        elif isinstance(cmd, Event):
            self._wait_event(cmd)
        elif isinstance(cmd, Process):
            self._wait_event(cmd.done_event)
        elif isinstance(cmd, AllOf):
            self._wait_all(cmd)
        elif isinstance(cmd, AnyOf):
            self._wait_any(cmd)
        elif isinstance(cmd, int):  # bool or int subclass
            self._pending_handle = self.engine._post(
                int(cmd), self._resume, (None, None), self.daemon
            )
            self._waiting_on = cmd
        elif isinstance(cmd, Delay):
            self._pending_handle = self.engine._post(
                cmd.ns, self._resume, (None, None), self.daemon
            )
            self._waiting_on = cmd
        else:
            self._resume(
                None,
                TypeError(f"process {self.name!r} yielded unsupported {cmd!r}"),
            )

    def _wait_event(self, ev: Event) -> None:
        self._waiting_on = ev
        waiter = _EventWaiter(self)
        self._pending_handle = waiter
        ev.add_callback(waiter)

    def _wait_all(self, allof: AllOf) -> None:
        events = [_as_event(w) for w in allof.waitables]
        if not events:
            self._pending_handle = self.engine._post(
                0, self._resume, ([], None), False)
            return
        self._waiting_on = allof
        waiter = _AllWaiter(self, events)
        self._pending_handle = waiter
        for e in events:
            e.add_callback(waiter)

    def _wait_any(self, anyof: AnyOf) -> None:
        events = [_as_event(w) for w in anyof.waitables]
        self._waiting_on = anyof
        waiter = _AnyWaiter(self, events)
        self._pending_handle = waiter
        for e in events:
            e.add_callback(waiter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state} waiting_on={self._waiting_on!r}>"


class _EventWaiter:
    """Registered as an event callback for a single-event wait.

    Staleness is checked by identity: a new wait installs a new waiter
    object in ``proc._pending_handle``, so callbacks from a superseded
    wait (the process was interrupted or killed meanwhile) fall through.
    One object serves as both the pending handle and the callback, so a
    wait costs one allocation instead of a handle + token + closure.
    """

    __slots__ = ("proc",)

    def __init__(self, proc: Process):
        self.proc = proc

    def cancel(self) -> None:  # pragma: no cover - identity check suffices
        pass

    def __call__(self, event: Event) -> None:
        proc = self.proc
        if proc._pending_handle is not self:
            return  # stale registration (process was interrupted/killed)
        if event._ok:
            proc._resume(event._value, None)
        else:
            proc._resume(None, event._exc)


class _AllWaiter:
    """Shared callback for an :class:`AllOf` wait."""

    __slots__ = ("proc", "events", "remaining")

    def __init__(self, proc: Process, events: List[Event]):
        self.proc = proc
        self.events = events
        self.remaining = len(events)

    def cancel(self) -> None:  # pragma: no cover - identity check suffices
        pass

    def __call__(self, event: Event) -> None:
        proc = self.proc
        if proc._pending_handle is not self:
            return
        if not event._ok:
            proc._resume(None, event._exc)
            return
        self.remaining -= 1
        if self.remaining == 0:
            proc._resume([e._value for e in self.events], None)


class _AnyWaiter:
    """Shared callback for an :class:`AnyOf` wait."""

    __slots__ = ("proc", "events")

    def __init__(self, proc: Process, events: List[Event]):
        self.proc = proc
        self.events = events

    def cancel(self) -> None:  # pragma: no cover - identity check suffices
        pass

    def __call__(self, event: Event) -> None:
        proc = self.proc
        if proc._pending_handle is not self:
            return
        if event._ok:
            # Event identity (no __eq__ override) → index of first
            # registration, matching the legacy per-index closures.
            proc._resume((self.events.index(event), event._value), None)
        else:
            proc._resume(None, event._exc)


def _describe_wait(w: Any) -> str:
    """Human-readable description of a process's wait target (for
    :class:`DeadlockError` diagnostics)."""
    if w is None:
        return "nothing (never resumed)"
    if isinstance(w, Event):
        return f"event {w.name!r}" if w.name else "unnamed event"
    if isinstance(w, Process):
        return f"process {w.name!r}"
    if isinstance(w, (AllOf, AnyOf)):
        kind = "all of" if isinstance(w, AllOf) else "any of"
        names = []
        for item in w.waitables[:3]:
            if isinstance(item, Event):
                names.append(item.name or "<event>")
            elif isinstance(item, Process):
                names.append(item.name)
            else:  # pragma: no cover - waitables are events/processes
                names.append(repr(item))
        if len(w.waitables) > 3:
            names.append(f"... {len(w.waitables) - 3} more")
        return f"{kind} [{', '.join(names)}]"
    if isinstance(w, Delay):
        return f"delay {w.ns}ns"
    if isinstance(w, int):
        return f"delay {w}ns"
    return repr(w)


def _as_event(w: Any) -> Event:
    if isinstance(w, Event):
        return w
    if isinstance(w, Process):
        return w.done_event
    raise TypeError(f"cannot wait on {w!r}")


class EngineSnapshot:
    """An :meth:`Engine.snapshot` capture (opaque; hand it back to
    :meth:`Engine.restore`).

    Heap entries are captured *by reference* together with their mutable
    fields (fire time, tombstone flag): entries are single-use lists, so
    re-installing the saved field values and rebuilding the heap from the
    saved entry list rewinds the scheduler exactly — including entries
    that were popped, fired, cancelled, or time-shifted in between.
    """

    __slots__ = ("now", "seq", "foreground", "live", "entries", "proc_steps")

    def __init__(self, now: int, seq: int, foreground: int, live: int,
                 entries: list, proc_steps: dict):
        self.now = now
        self.seq = seq
        self.foreground = foreground
        self.live = live
        #: ``[(entry, time_ns, cancelled), ...]`` for every heap entry.
        self.entries = entries
        #: ``id(proc) -> (proc, steps)`` census at capture time.
        self.proc_steps = proc_steps


class Engine:
    """The event loop: an event heap plus a live-process census.

    Typical use::

        eng = Engine()
        def body():
            yield Delay(1_000)
            return 42
        p = eng.process(body(), name="answer")
        eng.run()
        assert p.result == 42
    """

    def __init__(self, metrics=None) -> None:
        self._heap: list[list] = []
        self._now = 0
        self._seq = 0
        self._live_processes = 0
        #: id(proc) -> live Process; insertion-ordered, so deadlock
        #: diagnostics list blocked processes in creation order.
        self._procs: dict[int, Process] = {}
        self._foreground = 0  # pending non-daemon callbacks
        self._orphan_failures: list[tuple[str, BaseException]] = []
        # Observability: instruments are cached here (or None) so the
        # disabled-mode cost on the scheduling/dispatch hot paths is a
        # single attribute check (see repro.obs.metrics).
        self.metrics = metrics
        if metrics is not None:
            self._m_scheduled = metrics.counter(
                "engine.events.scheduled", "event-heap pushes")
            self._m_fired = metrics.counter(
                "engine.events.fired", "callbacks dispatched")
            self._m_heap = metrics.gauge(
                "engine.heap.depth", "event-heap size after each push")
        else:
            self._m_scheduled = None
            self._m_fired = None
            self._m_heap = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def _post(self, delay_ns: int, fn: Callable[..., None], args: tuple,
              daemon: bool) -> list:
        """Internal fast-path schedule: returns the raw heap entry (no
        :class:`Handle` allocation).  Cancel with :meth:`_cancel_entry`."""
        t_ns = self._now + delay_ns
        self._seq = seq = self._seq + 1
        entry = [t_ns, seq, fn, args, daemon, False]
        if not daemon:
            self._foreground += 1
        _heappush(self._heap, entry)
        if self._m_scheduled is not None:
            self._m_scheduled.value += 1
            self._m_heap.set(len(self._heap))
        return entry

    def _cancel_entry(self, entry: list) -> None:
        """Tombstone a heap entry (lazy cancellation).  Idempotent."""
        if not entry[_CANCELLED]:
            entry[_CANCELLED] = True
            if not entry[_DAEMON]:
                self._foreground -= 1

    def schedule(self, delay_ns: int, fn: Callable[..., None], *args: Any,
                 daemon: bool = False) -> Handle:
        """Schedule ``fn(*args)`` after ``delay_ns`` nanoseconds."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past: {self._now + delay_ns} "
                f"< now={self._now}"
            )
        return Handle(self, self._post(delay_ns, fn, args, daemon))

    def schedule_at(self, t_ns: int, fn: Callable[..., None], *args: Any,
                    daemon: bool = False) -> Handle:
        """Schedule ``fn(*args)`` at absolute time ``t_ns``.

        ``daemon=True`` events do not keep :meth:`run` alive on their own.
        """
        t_ns = int(t_ns)
        if t_ns < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {t_ns} < now={self._now}"
            )
        return Handle(self, self._post(t_ns - self._now, fn, args, daemon))

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None) -> Event:
        """An event that succeeds after ``delay_ns``, carrying ``value``."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(
                f"cannot schedule into the past: {self._now + delay_ns} "
                f"< now={self._now}"
            )
        ev = Event(self, name=f"timeout+{delay_ns}")
        self._post(delay_ns, ev.succeed, (value,), False)
        return ev

    def process(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "proc",
        gate: Any = None,
        daemon: bool = False,
    ) -> Process:
        """Start a new process from a generator.  ``daemon`` processes
        (perpetual noise sources, periodic kernel work) do not keep
        :meth:`run` alive."""
        return Process(self, gen, name=name, gate=gate, daemon=daemon)

    # -- execution --------------------------------------------------------------
    def run(self, until_ns: Optional[int] = None) -> int:
        """Run until the heap is exhausted or ``until_ns`` is reached.

        Returns the final simulated time.  Unhandled process failures with
        no joiner are re-raised here so they cannot be lost.
        """
        heap = self._heap
        pop = _heappop
        m_fired = self._m_fired
        orphans = self._orphan_failures
        while heap and self._foreground > 0:
            entry = heap[0]
            t = entry[0]
            if until_ns is not None and t > until_ns:
                self._now = until_ns
                return until_ns
            pop(heap)
            if entry[5]:  # tombstoned by a lazy cancel
                continue
            if not entry[4]:
                self._foreground -= 1
            self._now = t
            if m_fired is not None:
                m_fired.value += 1
            entry[2](*entry[3])
            if orphans:
                name, exc = orphans[0]
                raise SimulationError(
                    f"process {name!r} failed with no joiner"
                ) from exc
        if until_ns is not None and until_ns > self._now:
            self._now = until_ns
        return self._now

    def run_until(self, event: Event, limit_ns: Optional[int] = None) -> int:
        """Run until ``event`` triggers (or the heap empties / ``limit_ns``).

        This is how experiments with perpetual noise sources terminate:
        the workload's completion event stops the loop even though the
        SMI source would keep scheduling forever.
        """
        heap = self._heap
        pop = _heappop
        m_fired = self._m_fired
        orphans = self._orphan_failures
        while heap and event._ok is None:
            entry = heap[0]
            t = entry[0]
            if limit_ns is not None and t > limit_ns:
                self._now = limit_ns
                return limit_ns
            pop(heap)
            if entry[5]:
                continue
            if not entry[4]:
                self._foreground -= 1
            self._now = t
            if m_fired is not None:
                m_fired.value += 1
            entry[2](*entry[3])
            if orphans:
                name, exc = orphans[0]
                raise SimulationError(
                    f"process {name!r} failed with no joiner"
                ) from exc
        return self._now

    def run_until_deadlock_check(self) -> int:
        """Run to completion; raise :class:`DeadlockError` if processes
        remain alive with an empty heap (e.g. an MPI recv never matched).

        The error lists the first 10 blocked processes by name together
        with what each is waiting on, so a modeling bug ("rank 3 blocked
        on recv from rank 1") is distinguishable from an injected hang at
        a glance."""
        t = self.run()
        if self._live_processes > 0:
            alive = [p for p in self._procs.values() if p._alive]
            lines = [
                f"  {p.name!r} waiting on {_describe_wait(p._waiting_on)}"
                for p in alive[:10]
            ]
            more = len(alive) - len(lines)
            if more > 0:
                lines.append(f"  ... and {more} more")
            raise DeadlockError(
                f"{self._live_processes} process(es) still alive at t={t} "
                "with no scheduled events (blocked forever):\n"
                + "\n".join(lines)
            )
        return t

    # -- snapshot/restore (DESIGN.md §11) ------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Capture the scheduler's full state at the current instant.

        Valid only at a *quiescent window*: between callbacks, with no
        resumption half-delivered.  The capture is cheap (one pass over
        the heap, no copying of generator frames) because generators
        cannot be rewound — :meth:`restore` instead *refuses* to restore
        once any process has stepped, died, or been created since the
        snapshot.  Layer state (rate columns, SMM residency, RNGs) is
        captured separately via the ``__snapshot__`` protocol
        (:mod:`repro.simx.snapshot`).
        """
        entries = [(e, e[_TIME], e[_CANCELLED]) for e in self._heap]
        proc_steps = {pid: (p, p._steps) for pid, p in self._procs.items()}
        return EngineSnapshot(
            now=self._now,
            seq=self._seq,
            foreground=self._foreground,
            live=self._live_processes,
            entries=entries,
            proc_steps=proc_steps,
        )

    def restore(self, snap: EngineSnapshot) -> None:
        """Rewind the scheduler to a prior :meth:`snapshot`.

        Raises :class:`SnapshotError` if the process census changed —
        any process stepped, finished, or was created since the capture.
        Within that window the restore is exact: entry times and
        tombstones are re-installed in place and the heap is rebuilt from
        the captured entry list, so subsequent pops replay in the
        identical (time, seq) order.
        """
        if len(self._procs) != len(snap.proc_steps):
            raise SnapshotError(
                f"process census changed: {len(self._procs)} live now vs "
                f"{len(snap.proc_steps)} at snapshot")
        for pid, (proc, steps) in snap.proc_steps.items():
            cur = self._procs.get(pid)
            if cur is not proc or cur._steps != steps:
                raise SnapshotError(
                    f"process {proc.name!r} advanced since snapshot "
                    f"(steps {getattr(cur, '_steps', None)} vs {steps})")
        # Entries scheduled *after* the snapshot are about to be dropped
        # from the heap, but layers may still hold handles to them (an
        # executor's armed timer, say).  Tombstone them now so a later
        # _cancel_entry through such a handle is an idempotent no-op
        # instead of decrementing the restored foreground count for an
        # entry that is no longer scheduled.
        snap_ids = {id(e) for e, _, _ in snap.entries}
        for entry in self._heap:
            if id(entry) not in snap_ids:
                entry[_CANCELLED] = True
        heap = []
        foreground = 0
        for entry, t_ns, cancelled in snap.entries:
            entry[_TIME] = t_ns
            entry[_CANCELLED] = cancelled
            heap.append(entry)
            if not cancelled and not entry[_DAEMON]:
                foreground += 1
        if foreground != snap.foreground:  # pragma: no cover - invariant
            raise SnapshotError(
                f"foreground count mismatch: {foreground} rebuilt vs "
                f"{snap.foreground} captured")
        heapq.heapify(heap)
        self._heap = heap
        self._now = snap.now
        self._seq = snap.seq
        self._foreground = snap.foreground
        self._live_processes = snap.live
        self._orphan_failures.clear()

    def reheapify(self) -> None:
        """Re-establish the heap invariant after entry fire times were
        mutated in place (the prefix-fork retarget path; see
        :meth:`repro.core.smi.SmiSource.retarget_interval`)."""
        heapq.heapify(self._heap)

    def _record_orphan_failure(self, proc: Process, exc: BaseException) -> None:
        self._orphan_failures.append((proc.name, exc))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Engine now={self._now} pending={len(self._heap)} "
            f"live={self._live_processes}>"
        )
