"""A stdlib-only metrics registry: counters, gauges, histograms.

Design constraints (in order):

1. **Near-zero cost when disabled.**  No component holds a registry by
   default; every instrumentation site caches its instrument (or ``None``)
   in an attribute at construction time, so the disabled hot path is one
   attribute load plus an ``is not None`` test — no dict lookup, no call.
2. **Cheap when enabled.**  Instruments are plain objects with ``__slots__``;
   ``Counter.inc`` is one float add, ``Histogram.observe`` one linear scan
   over a handful of bucket bounds (the bucket lists here have ≤ 16 edges,
   where a linear scan beats ``bisect`` call overhead).
3. **No dependencies.**  The rendering is Prometheus-flavoured text, but
   nothing here imports outside the stdlib.

Naming convention: dotted, ``<subsystem>.<noun>[.<verb>]`` — e.g.
``engine.events.fired``, ``smm.residency_ns``, ``net.queue_delay_ns``.
The resilient runner (:mod:`repro.runx`) contributes the ``runx.cells.*``
family: ``started`` / ``ok`` / ``failed`` / ``retried`` / ``resumed`` /
``timeouts``.

Because that runner isolates cells in worker *subprocesses*, registries
must be able to cross process boundaries: a worker snapshots its
registry into the result JSON and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot`, so ``--metrics`` output is
complete whether cells ran in-process or crash-isolated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def snapshot(self) -> Dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """An instantaneous level; also tracks its high-water mark."""

    __slots__ = ("name", "help", "value", "high")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0
        self.high: Number = 0

    def set(self, v: Number) -> None:
        self.value = v
        if v > self.high:
            self.high = v

    def inc(self, n: Number = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: Number = 1) -> None:
        self.value -= n

    def snapshot(self) -> Dict:
        return {"type": "gauge", "value": self.value, "high": self.high}


#: Default histogram bucket upper bounds, in nanoseconds: spans the
#: interesting range from microsecond queueing delays to the paper's
#: 100–110 ms SMM residencies.
DEFAULT_NS_BUCKETS: Tuple[int, ...] = (
    1_000, 10_000, 100_000, 1_000_000, 3_000_000, 10_000_000,
    30_000_000, 100_000_000, 300_000_000, 1_000_000_000,
)


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets, like Prometheus).

    ``buckets`` are upper bounds; an implicit +Inf bucket catches the
    rest.  ``counts[i]`` is the number of observations ≤ ``buckets[i]``
    exclusive of earlier buckets (i.e. *per-bucket*, not cumulative — the
    snapshot exposes both).
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[Number] = DEFAULT_NS_BUCKETS):
        bs = tuple(buckets)
        if not bs or any(b >= c for b, c in zip(bs, bs[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bs
        self.counts: List[int] = [0] * (len(bs) + 1)  # + overflow
        self.sum: Number = 0
        self.count = 0

    def observe(self, v: Number) -> None:
        self.sum += v
        self.count += 1
        for i, b in enumerate(self.buckets):
            if v <= b:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments, get-or-create semantics.

    One registry is typically shared by a whole cluster run; components
    cache the instruments they need at construction time so per-event
    costs never involve the registry.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args, **kwargs)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_NS_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, help, buckets)

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def names(self) -> Iterable[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict]:
        """All instruments as plain JSON-able dicts."""
        return {n: self._instruments[n].snapshot() for n in sorted(self._instruments)}

    def merge_snapshot(self, snap: Dict[str, Dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram sums/counts add; gauges keep the maximum
        of the high-water marks and the latest value.  Used to aggregate
        metrics shipped back from `repro.runx` worker subprocesses.
        """
        for name, rec in snap.items():
            kind = rec.get("type")
            if kind == "counter":
                self.counter(name).inc(rec.get("value", 0))
            elif kind == "gauge":
                g = self.gauge(name)
                g.set(rec.get("value", 0))
                high = rec.get("high", 0)
                if high > g.high:
                    g.high = high
            elif kind == "histogram":
                buckets = rec.get("buckets") or list(DEFAULT_NS_BUCKETS)
                h = self.histogram(name, buckets=tuple(buckets))
                if list(h.buckets) != list(buckets):
                    raise ValueError(
                        f"histogram {name!r}: bucket layout mismatch in merge")
                counts = rec.get("counts", [])
                for i, c in enumerate(counts[: len(h.counts)]):
                    h.counts[i] += c
                h.sum += rec.get("sum", 0)
                h.count += rec.get("count", 0)
            else:
                raise ValueError(
                    f"cannot merge snapshot entry {name!r} of type {kind!r}")

    def render_prom(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (textfile-collector ready).

        Dotted names are mangled to underscores under ``prefix``
        (``attr.wait.late_sender_ns`` → ``repro_attr_wait_late_sender_ns``).
        Counters gain the conventional ``_total`` suffix; gauges emit
        their level plus a ``_high`` companion for the high-water mark;
        histograms emit cumulative ``_bucket{le="..."}`` series ending in
        ``+Inf`` plus ``_sum``/``_count``.  Instruments render in sorted
        name order and the only label (``le``) is emitted in bucket
        order, so output for equal registry contents is byte-stable —
        diffs of two scrapes show only value changes.
        """

        def mangle(name: str) -> str:
            base = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name)
            return f"{prefix}_{base}"

        def fmt(v: Number) -> str:
            if isinstance(v, int):
                return str(v)
            f = float(v)
            return str(int(f)) if f.is_integer() else repr(f)

        lines: List[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            m = mangle(name)
            help_text = getattr(inst, "help", "") or name
            help_text = help_text.replace("\\", r"\\").replace("\n", r"\n")
            if isinstance(inst, Counter):
                lines.append(f"# HELP {m}_total {help_text}")
                lines.append(f"# TYPE {m}_total counter")
                lines.append(f"{m}_total {fmt(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"# HELP {m} {help_text}")
                lines.append(f"# TYPE {m} gauge")
                lines.append(f"{m} {fmt(inst.value)}")
                lines.append(f"# HELP {m}_high high-water mark of {name}")
                lines.append(f"# TYPE {m}_high gauge")
                lines.append(f"{m}_high {fmt(inst.high)}")
            else:
                h: Histogram = inst  # type: ignore[assignment]
                lines.append(f"# HELP {m} {help_text}")
                lines.append(f"# TYPE {m} histogram")
                cum = 0
                for b, c in zip(h.buckets, h.counts):
                    cum += c
                    lines.append(f'{m}_bucket{{le="{b:g}"}} {cum}')
                lines.append(f'{m}_bucket{{le="+Inf"}} {h.count}')
                lines.append(f"{m}_sum {fmt(h.sum)}")
                lines.append(f"{m}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable dump (one instrument per line; histograms show
        count/mean and the occupied buckets)."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                lines.append(f"{name:<36} {inst.value:>14g}")
            elif isinstance(inst, Gauge):
                lines.append(f"{name:<36} {inst.value:>14g}  (high {inst.high:g})")
            else:
                h: Histogram = inst  # type: ignore[assignment]
                occupied = [
                    f"≤{b:g}:{c}"
                    for b, c in zip(h.buckets, h.counts)
                    if c
                ]
                if h.counts[-1]:
                    occupied.append(f">{h.buckets[-1]:g}:{h.counts[-1]}")
                lines.append(
                    f"{name:<36} n={h.count} mean={h.mean:g} "
                    + " ".join(occupied)
                )
        return "\n".join(lines)
