"""Timeline → Chrome Trace Format / Perfetto JSON, and JSONL streaming.

The exporter **re-encodes, never re-derives**: every SMM duration event
carries the exact integer nanosecond span between the matched
``smm.enter``/``smm.exit`` timeline records in ``args.duration_ns``, so
per-node totals from a trace file equal
:func:`repro.analysis.traces.smm_residency` totals exactly.  The standard
``ts``/``dur`` fields are the same values scaled to the microseconds the
trace-viewer UIs expect (floats; use ``args`` for arithmetic).

Track layout (viewable in Perfetto / ``chrome://tracing``):

* one *process* per node (pid = node index, labeled with the node name);
* thread 0: SMM residency windows as complete (``X``) duration events;
* thread 1: interrupt deliveries as instants;
* thread 2: scheduler events (post-SMM misplacements) as instants;
* thread 3: network activity — each message is an ``X`` slice on the
  sender spanning injection→delivery, connected to a delivery marker on
  the receiver by a flow arrow (``s``/``f``);
* thread 7: counter tracks (``"ph": "C"``) — cumulative per-node SMM
  residency (so Perfetto plots the duty cycle directly) and cumulative
  per-rank MPI wait time;
* threads 10+cpu: task compute-segment placements as duration events
  (recorded only when placement tracing is switched on, see
  :attr:`repro.sched.scheduler.Scheduler.trace_placements`);
* threads 40+lrank: per-rank blocking-wait spans (``mpi.wait`` records,
  emitted when wait tracing is on — ``repro-smm trace``/``explain``).

The JSONL writer is the compact archival form: one timeline record per
line, suitable for ``grep``/``jq`` and for streaming out of long runs.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Sequence, Union

from repro.simx.timeline import Timeline, TraceRecord

__all__ = ["chrome_trace_events", "write_chrome_trace", "write_jsonl"]

#: tid assignments within each node's track group.
TID_SMM = 0
TID_IRQ = 1
TID_SCHED = 2
TID_NET = 3
TID_CTR = 7
TID_CPU_BASE = 10
TID_WAIT_BASE = 40

_THREAD_NAMES = {
    TID_SMM: "SMM",
    TID_IRQ: "irq",
    TID_SCHED: "sched",
    TID_NET: "net",
    TID_CTR: "counters",
}


def _us(t_ns: int) -> float:
    """ns → µs for the ts/dur display fields (args keep exact ns)."""
    return t_ns / 1e3


def chrome_trace_events(
    timeline: Timeline,
    nodes: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Convert a timeline into a list of Chrome-trace event dicts.

    ``nodes`` optionally restricts and orders the exported node tracks;
    by default every ``where`` seen in the timeline gets a track group,
    in order of first appearance.
    """
    pids: Dict[str, int] = {}
    if nodes is not None:
        for n in nodes:
            pids[n] = len(pids)

    def pid_of(where: str) -> Optional[int]:
        if where in pids:
            return pids[where]
        if nodes is not None:
            return None  # filtered out
        pids[where] = len(pids)
        return pids[where]

    events: List[Dict] = []
    used_tids: Dict[int, set] = {}
    tid_labels: Dict[tuple, str] = {}

    def mark(pid: int, tid: int) -> None:
        used_tids.setdefault(pid, set()).add(tid)

    # Open SMM windows and in-flight task segments, keyed for pairing.
    smm_open: Dict[str, TraceRecord] = {}
    seg_open: Dict[tuple, TraceRecord] = {}
    # Running totals behind the counter tracks.
    smm_cum: Dict[str, int] = {}
    wait_cum: Dict[tuple, int] = {}

    for rec in timeline:
        pid = pid_of(rec.where)
        if pid is None:
            continue
        if rec.kind == "smm.enter":
            smm_open[rec.where] = rec
        elif rec.kind == "smm.exit":
            enter = smm_open.pop(rec.where, None)
            if enter is None:
                continue  # unmatched exit: nothing to re-encode
            span_ns = rec.time - enter.time
            mark(pid, TID_SMM)
            events.append({
                "name": "SMM",
                "cat": "smm",
                "ph": "X",
                "ts": _us(enter.time),
                "dur": _us(span_ns),
                "pid": pid,
                "tid": TID_SMM,
                # enter.data first: it may carry a planned duration_ns,
                # which must not shadow the measured span re-encoded here.
                "args": {
                    **enter.data,
                    "enter_ns": enter.time,
                    "exit_ns": rec.time,
                    "duration_ns": span_ns,
                },
            })
            smm_cum[rec.where] = smm_cum.get(rec.where, 0) + span_ns
            mark(pid, TID_CTR)
            events.append({
                "name": "SMM residency (ms)",
                "cat": "counter",
                "ph": "C",
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_CTR,
                "args": {"ms": smm_cum[rec.where] / 1e6},
            })
        elif rec.kind == "mpi.wait":
            rank = rec.data.get("rank", 0)
            lrank = rec.data.get("lrank", 0)
            dur_ns = rec.data.get("dur_ns", 0)
            begin_ns = rec.data.get("begin_ns", rec.time - dur_ns)
            tid = TID_WAIT_BASE + lrank
            mark(pid, tid)
            tid_labels[(pid, tid)] = f"rank {rank} wait"
            events.append({
                "name": f"wait:{rec.data.get('cls', 'p2p')}",
                "cat": "mpi",
                "ph": "X",
                "ts": _us(begin_ns),
                "dur": _us(dur_ns),
                "pid": pid,
                "tid": tid,
                "args": {
                    "end_ns": begin_ns + dur_ns,
                    "duration_ns": dur_ns,
                    **rec.data,
                },
            })
            key = (pid, rank)
            wait_cum[key] = wait_cum.get(key, 0) + dur_ns
            mark(pid, TID_CTR)
            events.append({
                "name": f"MPI wait r{rank} (ms)",
                "cat": "counter",
                "ph": "C",
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_CTR,
                "args": {"ms": wait_cum[key] / 1e6},
            })
        elif rec.kind == "irq.deliver":
            mark(pid, TID_IRQ)
            events.append({
                "name": f"irq:{rec.data.get('irq_class', '?')}",
                "cat": "irq",
                "ph": "i",
                "s": "t",
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_IRQ,
                "args": {"time_ns": rec.time, **rec.data},
            })
        elif rec.kind.startswith("sched."):
            mark(pid, TID_SCHED)
            events.append({
                "name": rec.kind.split(".", 1)[1],
                "cat": "sched",
                "ph": "i",
                "s": "t",
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_SCHED,
                "args": {"time_ns": rec.time, **rec.data},
            })
        elif rec.kind == "net.send":
            # The matching net.deliver carries the same id; the sender
            # slice spans injection→delivery so we emit it at delivery
            # time (see below) — here only the flow origin is emitted.
            mark(pid, TID_NET)
            events.append({
                "name": "msg",
                "cat": "net",
                "ph": "s",
                "id": rec.data.get("id"),
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_NET,
                "args": {"time_ns": rec.time, **rec.data},
            })
        elif rec.kind == "net.deliver":
            mark(pid, TID_NET)
            src = rec.data.get("src_node")
            sent_ns = rec.data.get("sent_ns")
            if src is not None and sent_ns is not None:
                src_pid = pid_of(src)
                if src_pid is not None:
                    mark(src_pid, TID_NET)
                    events.append({
                        "name": f"msg→{rec.where}",
                        "cat": "net",
                        "ph": "X",
                        "ts": _us(sent_ns),
                        "dur": _us(rec.time - sent_ns),
                        "pid": src_pid,
                        "tid": TID_NET,
                        "args": {
                            "sent_ns": sent_ns,
                            "delivered_ns": rec.time,
                            "latency_ns": rec.time - sent_ns,
                            "nbytes": rec.data.get("nbytes"),
                        },
                    })
            events.append({
                "name": "recv",
                "cat": "net",
                "ph": "X",
                "ts": _us(rec.time),
                "dur": 1.0,
                "pid": pid,
                "tid": TID_NET,
                "args": {"time_ns": rec.time, **rec.data},
            })
            events.append({
                "name": "msg",
                "cat": "net",
                "ph": "f",
                "bp": "e",
                "id": rec.data.get("id"),
                "ts": _us(rec.time),
                "pid": pid,
                "tid": TID_NET,
            })
        elif rec.kind == "task.place":
            cpu = rec.data.get("cpu", 0)
            seg_open[(rec.where, rec.data.get("task"))] = rec
            mark(pid, TID_CPU_BASE + cpu)
        elif rec.kind == "task.done":
            place = seg_open.pop((rec.where, rec.data.get("task")), None)
            if place is None:
                continue
            cpu = place.data.get("cpu", 0)
            events.append({
                "name": str(rec.data.get("task")),
                "cat": "task",
                "ph": "X",
                "ts": _us(place.time),
                "dur": _us(rec.time - place.time),
                "pid": pid,
                "tid": TID_CPU_BASE + cpu,
                "args": {
                    "start_ns": place.time,
                    "end_ns": rec.time,
                    "duration_ns": rec.time - place.time,
                    "cpu": cpu,
                },
            })

    # Metadata: label process/thread tracks so viewers show node names.
    meta: List[Dict] = []
    for where, pid in pids.items():
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": where},
        })
        for tid in sorted(used_tids.get(pid, ())):
            label = tid_labels.get((pid, tid)) or _THREAD_NAMES.get(
                tid, f"cpu{tid - TID_CPU_BASE}")
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return meta + events


def write_chrome_trace(
    timeline: Timeline,
    dest: Union[str, IO[str]],
    nodes: Optional[Sequence[str]] = None,
    extra: Optional[Dict] = None,
) -> int:
    """Write a full Chrome-trace JSON document; returns the event count.

    ``extra`` lands in the document's ``otherData`` section (seed,
    scenario parameters, package version — whatever identifies the run).
    """
    events = chrome_trace_events(timeline, nodes=nodes)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(extra) if extra else {},
    }
    if isinstance(dest, str):
        from repro.obs.atomic import atomic_write_text

        atomic_write_text(dest, lambda fp: json.dump(doc, fp, indent=1))
    else:
        json.dump(doc, dest, indent=1)
    return len(events)


def write_jsonl(
    timeline: Timeline,
    dest: Union[str, IO[str]],
    kinds: Optional[Sequence[str]] = None,
) -> int:
    """Stream timeline records as JSON Lines; returns the line count.

    ``kinds`` optionally restricts to records whose kind starts with any
    of the given prefixes.
    """
    prefixes = tuple(kinds) if kinds else None

    def lines():
        for rec in timeline:
            if prefixes and not rec.kind.startswith(prefixes):
                continue
            yield json.dumps(
                {"time": rec.time, "kind": rec.kind, "where": rec.where,
                 "data": rec.data},
                separators=(",", ":"),
            )

    n = 0
    if isinstance(dest, str):
        from repro.obs.atomic import atomic_write_text

        counted: List[int] = [0]

        def write(fp) -> None:
            for line in lines():
                fp.write(line + "\n")
                counted[0] += 1

        atomic_write_text(dest, write)
        n = counted[0]
    else:
        for line in lines():
            dest.write(line + "\n")
            n += 1
    return n
