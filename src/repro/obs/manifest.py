"""Run provenance: JSON manifests for table/figure runs.

Hunold & Carpen-Amarie's reproducibility argument applies to simulations
just as much as to hardware benchmarks: a number without its experimental
configuration is unrepeatable.  A :class:`RunManifest` captures everything
needed to re-run the exact cell matrix of a harness invocation —

* the command and its parameters (seed, repetitions, quick/full matrix),
* the package version and the Python that ran it,
* **all fitted calibration constants** (the model's five free scalars plus
  the structural timing constants they interact with),
* the planned cell matrix, and
* per-cell results with wall-clock build times.

Manifests are plain JSON; ``repro-smm table2 --manifest out.json`` writes
one next to the table output.

Schema v2 (the `repro.runx` resilient runner):

* cells may carry ``id``/``status``/``attempts``/``duration_s``/``seed``
  — everything ``--resume`` needs to skip finished work and re-run the
  rest with the recorded seeds;
* ``mode`` records how the manifest was produced: ``"direct"`` (legacy
  in-process build) or ``"journal"`` (checkpointed sweep — while the run
  is live the same cells exist as ``<path>.part.jsonl`` lines);
* ``elapsed_monotonic_s`` reports honest run duration from a monotonic
  clock (``wall_s`` is kept for v1 compatibility), and resumed runs add
  only their own elapsed time instead of inheriting the killed run's
  wall-clock span;
* files are written atomically (temp + fsync + rename), so an
  interrupted run never leaves a truncated manifest for a later
  ``--resume`` to choke on.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Union

__all__ = ["RunManifest", "calibration_constants", "MANIFEST_SCHEMA"]

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 2


def calibration_constants() -> Dict:
    """All constants that pin the model's behaviour, keyed by subsystem.

    Everything here is read live from the modules that own it, so a
    manifest always reflects the code that produced the run (constant
    drift shows up as a manifest diff).
    """
    from repro.machine.smm import ENTRY_LATENCY_NS, RELATCH_GAP_NS
    from repro.machine.topology import WYEAST_SPEC, R410_SPEC
    from repro.mpi.network import NetworkSpec
    from repro.sched.scheduler import (
        BALANCE_PERIOD_NS,
        IDLE_BALANCE_NS,
        MISPLACE_SATURATION_NS,
    )
    from repro.apps.nas.params import BT_PARAMS, EP_PARAMS, FT_PARAMS

    net = NetworkSpec()
    work_units = {
        bench: {cls.value: p.work_total for cls, p in params.items()}
        for bench, params in (
            ("EP", EP_PARAMS), ("BT", BT_PARAMS), ("FT", FT_PARAMS),
        )
    }
    return {
        "network": {
            "latency_ns": net.latency_ns,
            "bandwidth_bps": net.bandwidth_bps,
            "memcpy_bps": net.memcpy_bps,
            "sw_overhead_ops": net.sw_overhead_ops,
            "per_byte_ops": net.per_byte_ops,
        },
        "scheduler": {
            "balance_period_ns": BALANCE_PERIOD_NS,
            "idle_balance_ns": IDLE_BALANCE_NS,
            "misplace_saturation_ns": MISPLACE_SATURATION_NS,
        },
        "smm": {
            "entry_latency_ns": ENTRY_LATENCY_NS,
            "relatch_gap_ns": RELATCH_GAP_NS,
        },
        "machine": {
            "wyeast_base_hz": WYEAST_SPEC.base_hz,
            "r410_base_hz": R410_SPEC.base_hz,
        },
        "work_units": work_units,
    }


@dataclass
class RunManifest:
    """Provenance record for one harness invocation."""

    command: str
    params: Dict = field(default_factory=dict)
    matrix: List[Dict] = field(default_factory=list)
    cells: List[Dict] = field(default_factory=list)
    version: str = ""
    python: str = ""
    platform: str = ""
    created_unix: float = 0.0
    wall_s: Optional[float] = None
    schema: int = MANIFEST_SCHEMA
    #: "direct" = legacy in-process build; "journal" = checkpointed
    #: `repro.runx` sweep (cells mirror the journal's records).
    mode: str = "direct"

    def __post_init__(self) -> None:
        if not self.version:
            import repro

            self.version = repro.__version__
        if not self.python:
            self.python = sys.version.split()[0]
        if not self.platform:
            self.platform = platform.platform()
        if not self.created_unix:
            self.created_unix = time.time()
        self._t0 = time.perf_counter()

    # -- recording -----------------------------------------------------------
    def plan_cell(self, **spec) -> None:
        """Declare one cell of the run matrix before measuring it."""
        self.matrix.append(dict(spec))

    def add_cell(self, label: str, **result) -> None:
        """Record one measured cell: its label, result values, and the
        wall-clock second mark (relative to manifest creation) at which
        it completed.  v2 cells additionally pass ``status``/``attempts``/
        ``duration_s``/``seed`` (the resilient runner does this for every
        cell, making the manifest a resume source)."""
        self.cells.append({
            "label": label,
            "at_wall_s": round(time.perf_counter() - self._t0, 6),
            **result,
        })

    # -- output ---------------------------------------------------------------
    def elapsed_monotonic_s(self) -> float:
        """Seconds of honest (monotonic-clock) run time so far."""
        return round(time.perf_counter() - self._t0, 6)

    def to_dict(self) -> Dict:
        elapsed = self.elapsed_monotonic_s()
        return {
            "schema": self.schema,
            "mode": self.mode,
            "command": self.command,
            "params": self.params,
            "version": self.version,
            "python": self.python,
            "platform": self.platform,
            "created_unix": self.created_unix,
            "calibration": calibration_constants(),
            "matrix": self.matrix,
            "cells": self.cells,
            "wall_s": self.wall_s if self.wall_s is not None else elapsed,
            "elapsed_monotonic_s": elapsed,
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, dest: Union[str, IO[str]]) -> None:
        """Serialize; for path destinations the write is atomic (an
        interrupted run never leaves a truncated manifest)."""
        if isinstance(dest, str):
            from repro.obs.atomic import atomic_write_text

            atomic_write_text(dest, lambda fp: fp.write(self.to_json() + "\n"))
        else:
            dest.write(self.to_json() + "\n")
