"""Crash-safe artifact writes: temp file + fsync + atomic rename.

Every artifact this package emits (manifests, traces, JSONL dumps) may be
the *input* of a later ``--resume``, so a half-written file is worse than
no file: it makes the interrupted run look finished.  The helpers here
guarantee that a path either holds the complete previous content or the
complete new content — never a truncation — by writing to a temporary
file in the *same directory* (``os.replace`` is only atomic within a
filesystem), fsyncing it, and renaming it over the destination.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, IO

__all__ = ["atomic_write_text", "fsync_append"]


def atomic_write_text(path: str, write: Callable[[IO[str]], None]) -> None:
    """Atomically replace ``path`` with whatever ``write(fp)`` produces.

    ``write`` receives a text-mode file object.  On any exception the
    temporary file is removed and ``path`` is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fp:
            write(fp)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fsync_append(path: str, line: str) -> None:
    """Append one line to ``path`` and force it to stable storage.

    The journal's durability primitive: after this returns, a SIGKILL (or
    power loss, modulo disk caches) cannot lose the line.  A crash *during*
    the call can at worst leave one partial final line, which journal
    readers skip.
    """
    with open(path, "a", encoding="utf-8") as fp:
        fp.write(line + "\n")
        fp.flush()
        os.fsync(fp.fileno())
