"""repro.obs — the observability layer.

The simulator's :class:`~repro.simx.timeline.Timeline` holds the
omniscient ground truth that the paper's real hardware could not expose.
This package turns that (and the engine/OS/network internals) into
artifacts you can actually watch and archive:

* :mod:`repro.obs.metrics` — a stdlib-only metrics registry (counters,
  gauges, fixed-bucket histograms) with instrumentation points in the
  event engine, the SMM/SMI machinery, the scheduler, and the
  interconnect.  Collection is opt-in: when no registry is attached the
  instrumented hot paths pay a single attribute check.
* :mod:`repro.obs.trace` — exporters from the Timeline to Chrome Trace
  Format / Perfetto JSON (SMM windows as duration events, messages as
  flow arrows, one track group per node) and to a compact JSONL stream.
* :mod:`repro.obs.manifest` — run provenance: every harness entry point
  can emit a JSON manifest capturing the seed, the cell matrix, the
  calibration constants, and per-cell timings, so any table or figure is
  reproducible from its artifact alone.
* :mod:`repro.obs.attr` — the noise-attribution engine: per-rank
  wait-state capture, critical-path extraction, and slowdown
  decomposition against a zero-SMI baseline (``repro-smm explain``).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.manifest import RunManifest, calibration_constants
from repro.obs.attr import (
    AttrCapture,
    CellAttribution,
    attribute_cell,
    build_profile,
    critical_path,
    decompose,
    render_explain,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "RunManifest",
    "calibration_constants",
    "AttrCapture",
    "CellAttribution",
    "attribute_cell",
    "build_profile",
    "critical_path",
    "decompose",
    "render_explain",
]
