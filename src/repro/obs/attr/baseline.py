"""Shared-baseline memoization for the attribution engine.

Every ``--attr`` cell runs *two* simulations: the noisy one it is
reporting on and a zero-SMI baseline to difference against
(:func:`repro.obs.attr.explain.attribute_cell`).  Across a table sweep
the baseline is wildly redundant: all SMI classes of one
(bench, class, nodes, rpn, htt) configuration share the *same* SMM-0
run — same config, same seed, same payload, byte for byte.

This module memoizes that baseline.  The key is a content digest in the
style of :meth:`repro.runx.spec.CellSpec.digest` — sha256 over the
canonical JSON of everything that determines the baseline run — and the
value is a :class:`BaselineProfile`: the slim, JSON-able projection of a
baseline :class:`~repro.obs.attr.profile.RunProfile` that
:func:`~repro.obs.attr.decompose.decompose` actually reads (per-rank
wait/queue/SMM-wait/stolen/true totals plus the elapsed time).  Because
the projection preserves every number exactly (ints verbatim; floats
survive JSON round-trips bit-for-bit), a decomposition against a cached
baseline is identical to one against a fresh run.

Reuse crosses process boundaries through serialization, not shared
memory: the sweep runner attaches its known records to each worker
request and absorbs the records new workers produce
(:mod:`repro.runx.runner` / :mod:`repro.runx.worker`), and the serve
daemon does the same across its long-lived worker pool
(:mod:`repro.serve.pool` / :mod:`repro.serve.workproc`), surfacing
``engine.baseline_cache.{hits,misses}`` in ``repro-smm status``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "baseline_digest",
    "BaselineRank",
    "BaselineProfile",
    "BaselineStore",
    "global_store",
    "reset_global_store",
]


def baseline_digest(
    bench: str,
    cls: str,
    nodes: int,
    rpn: int,
    htt: bool,
    seed: int,
) -> str:
    """Content digest of one zero-SMI baseline run: (app, class,
    topology, seed).  The SMI class and interval deliberately are not in
    the key — the baseline is SMM 0 regardless of which noisy class asks,
    and a run with no SMIs never consumes the interval (or, it turns out,
    the seed: the zero-SMI simulation is fully deterministic, which
    ``tests/obs/test_attr_baseline.py`` pins down as the invariant this
    memo leans on).  Seed stays in the key anyway so the store provably
    never serves one seed's entry for another's lookup."""
    blob = json.dumps(
        ["attr-baseline", bench, cls, int(nodes), int(rpn), bool(htt),
         int(seed)],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class BaselineRank:
    """Per-rank baseline totals — exactly the five fields
    :func:`~repro.obs.attr.decompose.decompose` reads from the baseline
    side of the difference."""

    __slots__ = ("rank", "wait_ns", "queue_ns", "smm_wait_ns",
                 "stolen_ns", "true_ns")

    def __init__(self, rank: int, wait_ns: int, queue_ns: int,
                 smm_wait_ns: int, stolen_ns: float, true_ns: float):
        self.rank = rank
        self.wait_ns = wait_ns
        self.queue_ns = queue_ns
        self.smm_wait_ns = smm_wait_ns
        self.stolen_ns = stolen_ns
        self.true_ns = true_ns


class BaselineProfile:
    """The decompose-facing projection of a baseline run profile.

    Duck-typed stand-in for :class:`~repro.obs.attr.profile.RunProfile`
    on the *baseline* side of :func:`decompose` — it exposes ``ranks``,
    ``elapsed_app_s`` and ``span_ns`` and nothing else (the noisy side
    needs the full profile; the baseline side never did).
    """

    __slots__ = ("elapsed_app_s", "span_ns", "ranks")

    def __init__(self, elapsed_app_s: Optional[float], span_ns: int,
                 ranks: Dict[int, BaselineRank]):
        self.elapsed_app_s = elapsed_app_s
        self.span_ns = span_ns
        self.ranks = ranks

    @classmethod
    def from_profile(cls, prof) -> "BaselineProfile":
        """Project a full :class:`RunProfile` down to the baseline view."""
        ranks = {
            r: BaselineRank(r, rp.wait_ns, rp.queue_ns, rp.smm_wait_ns,
                            rp.stolen_ns, rp.true_ns)
            for r, rp in prof.ranks.items()
        }
        return cls(prof.elapsed_app_s, prof.span_ns, ranks)

    def to_record(self) -> Dict[str, Any]:
        """JSON-able record.  Ints serialize verbatim and floats survive
        a ``json.dumps``/``loads`` round-trip exactly (repr-based), so
        ``from_record(to_record())`` reproduces every field bit-for-bit."""
        return {
            "elapsed_app_s": self.elapsed_app_s,
            "span_ns": self.span_ns,
            "ranks": [
                [br.rank, br.wait_ns, br.queue_ns, br.smm_wait_ns,
                 br.stolen_ns, br.true_ns]
                for br in (self.ranks[r] for r in sorted(self.ranks))
            ],
        }

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "BaselineProfile":
        ranks = {
            int(row[0]): BaselineRank(int(row[0]), row[1], row[2], row[3],
                                      row[4], row[5])
            for row in rec["ranks"]
        }
        return cls(rec.get("elapsed_app_s"), rec["span_ns"], ranks)


#: Default LRU capacity of a baseline store (``REPRO_BASELINE_CACHE_MAX``
#: overrides).  Records are slim (a few hundred bytes per rank) but a
#: daemon-lifetime store would otherwise grow without bound.
DEFAULT_BASELINE_CACHE_MAX = 256


class BaselineStore:
    """Digest-keyed LRU baseline cache with hit/miss/eviction accounting.

    Thread-safe: the sweep runner's worker threads and the attribution
    engine may share one instance.  ``put`` tracks which digests this
    process produced so :meth:`drain_new` can ship exactly the fresh
    records upstream (worker reply → runner / daemon) without resending
    what came down in the request.
    """

    def __init__(self, max_entries: Optional[int] = None):
        import os
        from collections import OrderedDict

        if max_entries is None:
            max_entries = int(os.environ.get(
                "REPRO_BASELINE_CACHE_MAX", DEFAULT_BASELINE_CACHE_MAX))
        self.max_entries = max(1, max_entries)
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._new: List[str] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._records)

    def get(self, digest: str) -> Optional[BaselineProfile]:
        """Cached baseline profile, or ``None`` (counted as a miss —
        the caller is about to run the baseline for real)."""
        with self._lock:
            rec = self._records.get(digest)
            if rec is None:
                self.misses += 1
                return None
            self._records.move_to_end(digest)
            self.hits += 1
        return BaselineProfile.from_record(rec)

    def _evict_over_cap(self) -> None:
        # Caller holds the lock.  Oldest-touched entries go first; an
        # evicted baseline simply gets re-simulated on its next miss.
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)
            self.evictions += 1

    def put(self, digest: str, profile: BaselineProfile) -> None:
        """Record a freshly computed baseline (marked for drain_new)."""
        rec = profile.to_record()
        with self._lock:
            if digest not in self._records:
                self._records[digest] = rec
                self._new.append(digest)
                self._evict_over_cap()

    def absorb(self, pairs) -> None:
        """Merge ``[[digest, record], ...]`` from an upstream cache —
        not counted as hits/misses and not re-exported by drain_new."""
        with self._lock:
            for digest, rec in pairs:
                self._records.setdefault(digest, rec)
            self._evict_over_cap()

    def export_all(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Every known ``(digest, record)`` pair — what a dispatcher
        attaches to a worker request."""
        with self._lock:
            return [(d, rec) for d, rec in self._records.items()]

    def drain_new(self) -> List[Tuple[str, Dict[str, Any]]]:
        """``(digest, record)`` pairs :meth:`put` added since the last
        drain — what a worker sends back upstream.  A record evicted
        before it was drained is gone (the cap bounds memory, not the
        wire) and is skipped here."""
        with self._lock:
            out = [(d, self._records[d]) for d in self._new
                   if d in self._records]
            self._new = []
            return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._records)}


_global: Optional[BaselineStore] = None
_global_lock = threading.Lock()


def global_store() -> BaselineStore:
    """The process-wide store :func:`attribute_cell` defaults to."""
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                _global = BaselineStore()
    return _global


def reset_global_store() -> BaselineStore:
    """Replace the process-wide store (tests; seed isolation checks)."""
    global _global
    with _global_lock:
        _global = BaselineStore()
    return _global
