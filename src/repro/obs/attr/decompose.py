"""Slowdown decomposition with a conservation check.

The cell's measured slowdown (noisy minus zero-SMI baseline, the delta
the paper's tables report) is split along the timeline of the noisy
run's **terminal rank** r* — the rank whose finish defines the job's
makespan, where wall time tiles exactly into CPU-resident time plus
blocked time:

    T(r*) = true_cpu(r*) + stolen(r*) + wait(r*)   (+ scheduler slack)

Differencing against the *same rank* in the baseline run gives four
components that sum to the measured delta by construction:

* **direct**  — own-node SMM residency on r*'s timeline: CPU time the
  freeze stole from its compute segments *plus* freeze windows absorbed
  inside its blocked spans (the duty-cycle tax itself — in a
  synchronized application the two forms are interchangeable across
  ranks, and their sum ≈ duty × runtime on every rank);
* **induced** — growth of r*'s blocked MPI time net of NIC queueing and
  of its own-node freezes (remote freezes and amplified imbalance
  arriving as waits — the paper's communication amplification);
* **contention** — NIC-queueing growth plus CPU-drift (true service
  time growth: HTT-sibling interference after post-SMM misplacement,
  cache/sharing effects);
* **residual** — whatever remains (scheduler slack drift, the gap
  between the app's timed region and the whole-job tiling).  The
  conservation check requires |residual| ≤ tolerance × slowdown; a
  violation means the model of the run is missing something, and the
  CLI/CI surface it as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.attr.profile import RunProfile

__all__ = ["Decomposition", "decompose"]


@dataclass
class Decomposition:
    """The four-way split, in seconds, plus its bookkeeping."""

    baseline_s: float
    noisy_s: float
    slowdown_s: float
    direct_s: float
    induced_s: float
    contention_s: float
    nic_queue_s: float
    cpu_drift_s: float
    residual_s: float
    residual_frac: float
    tolerance: float
    conserved: bool
    terminal_rank: int
    terminal_node: str

    def components(self):
        return {
            "direct_smi_s": self.direct_s,
            "induced_wait_s": self.induced_s,
            "contention_s": self.contention_s,
            "residual_s": self.residual_s,
        }


def decompose(noisy: RunProfile, base, tolerance: float = 0.05
              ) -> Decomposition:
    """Split ``noisy - base`` along the noisy run's terminal rank.

    ``base`` is the zero-SMI reference: either a full
    :class:`RunProfile` or any profile-like object exposing ``ranks``
    (with per-rank ``wait_ns``/``queue_ns``/``smm_wait_ns``/
    ``stolen_ns``/``true_ns``), ``elapsed_app_s`` and ``span_ns`` — in
    particular the memoized
    :class:`~repro.obs.attr.baseline.BaselineProfile` projection, which
    preserves those fields bit-for-bit, so a decomposition against a
    cached baseline equals one against the fresh run."""
    r = noisy.terminal_rank
    if r not in base.ranks:
        raise ValueError(
            f"baseline profile has no rank {r}; runs are not comparable")
    rn, rb = noisy.ranks[r], base.ranks[r]
    baseline_s = base.elapsed_app_s if base.elapsed_app_s is not None else (
        base.span_ns / 1e9)
    noisy_s = noisy.elapsed_app_s if noisy.elapsed_app_s is not None else (
        noisy.span_ns / 1e9)
    slowdown = noisy_s - baseline_s
    direct = (rn.stolen_ns - rb.stolen_ns + rn.smm_wait_ns - rb.smm_wait_ns) / 1e9
    nic = (rn.queue_ns - rb.queue_ns) / 1e9
    induced = ((rn.wait_ns - rn.queue_ns - rn.smm_wait_ns)
               - (rb.wait_ns - rb.queue_ns - rb.smm_wait_ns)) / 1e9
    cpu_drift = (rn.true_ns - rb.true_ns) / 1e9
    contention = nic + cpu_drift
    residual = slowdown - direct - induced - contention
    denom = max(abs(slowdown), 0.01 * max(baseline_s, 1e-9), 1e-9)
    frac = abs(residual) / denom
    return Decomposition(
        baseline_s=baseline_s,
        noisy_s=noisy_s,
        slowdown_s=slowdown,
        direct_s=direct,
        induced_s=induced,
        contention_s=contention,
        nic_queue_s=nic,
        cpu_drift_s=cpu_drift,
        residual_s=residual,
        residual_frac=frac,
        tolerance=tolerance,
        conserved=frac <= tolerance,
        terminal_rank=r,
        terminal_node=rn.node,
    )
