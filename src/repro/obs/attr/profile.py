"""Wait-state classification: raw capture → per-rank run profile.

The taxonomy follows the Scalasca wait-state vocabulary adapted to this
simulator's ground truth (we know every message's injection, NIC
queueing, physical arrival, and gate-delayed *visibility* exactly):

* **late_sender** — a point-to-point wait that blocked because the
  matching message had not yet become visible when the receiver started
  waiting (the receiver was early; the time is induced by the peer).
* **late_receiver** — the message was already visible when the wait
  began (the receiver was late; the wait costs ~nothing, but the count
  measures buffered/eager slack).
* **collective** — a wait issued inside a collective region (tags ≥
  ``COLL_TAG_BASE``); imbalance inside the algorithm's tree/butterfly
  shows up here, labeled with the operation name.

Each wait also carries its **NIC-queueing share**: the part of the
blocked span the matching message spent waiting behind earlier traffic
on the sender's NIC (contention, not sender lateness), plus its
**gate share**: visibility delay past physical arrival (the receiver's
own SMM freeze holding delivered bytes hostage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.attr.capture import AttrCapture, SendRec, WaitRec

__all__ = ["ClassifiedWait", "RankProfile", "RunProfile", "build_profile"]

LATE_SENDER = "late_sender"
LATE_RECEIVER = "late_receiver"
COLLECTIVE = "collective"


@dataclass
class ClassifiedWait:
    """One wait with its class and cost split."""

    rank: int
    begin_ns: int
    end_ns: int
    cls: str
    op: Optional[str] = None       # collective operation name
    peer: Optional[int] = None     # matched sender rank
    seq: Optional[int] = None
    queue_ns: int = 0              # NIC-queueing share of the blocked span
    gate_ns: int = 0               # receiver-gate (own-SMM) share

    @property
    def dur_ns(self) -> int:
        return self.end_ns - self.begin_ns


@dataclass
class RankProfile:
    """Per-rank totals over the whole job."""

    rank: int
    node: str
    lrank: int
    started_ns: Optional[int]
    finished_ns: Optional[int]
    kernel_ns: float
    true_ns: float
    stolen_ns: float
    n_waits: int = 0
    wait_ns: int = 0
    late_sender_ns: int = 0
    late_receiver_ns: int = 0
    collective_ns: int = 0
    queue_ns: int = 0
    gate_ns: int = 0
    #: own-node SMM residency overlapping this rank's blocked spans — the
    #: freeze time the rank absorbed *while waiting* (no stolen CPU is
    #: charged for it, but it is direct theft all the same).
    smm_wait_ns: int = 0
    coll_by_op: Dict[str, int] = field(default_factory=dict)


@dataclass
class RunProfile:
    """Everything the decomposition and the critical-path walk consume."""

    t0_ns: int
    end_ns: int
    terminal_rank: int
    elapsed_app_s: Optional[float]
    wall_s: Optional[float]
    ranks: Dict[int, RankProfile]
    waits: Dict[int, List[ClassifiedWait]]
    sends: Dict[int, SendRec]
    smm: Dict[str, List[tuple]]
    smm_total_ns: Dict[str, float]
    misplacements: Dict[str, int]

    @property
    def span_ns(self) -> int:
        return max(1, self.end_ns - self.t0_ns)

    def duty_measured(self) -> float:
        """Mean measured SMM duty cycle across nodes over the job span."""
        if not self.smm_total_ns:
            return 0.0
        return (sum(self.smm_total_ns.values())
                / (len(self.smm_total_ns) * self.span_ns))

    def node_of(self, rank: int) -> str:
        return self.ranks[rank].node


def _overlap(a0: int, a1: int, b0: int, b1: int) -> int:
    lo, hi = max(a0, b0), min(a1, b1)
    return hi - lo if hi > lo else 0


def _classify(w: WaitRec, sends: Dict[int, SendRec]) -> ClassifiedWait:
    send = sends.get(w.seq) if w.seq is not None else None
    dur = w.end_ns - w.begin_ns
    if w.coll is not None:
        cls = COLLECTIVE
    elif send is None or send.visible_ns is None:
        # No matched message (timeout/fault path) — the wait blocked on
        # something that never became visible; call it late_sender.
        cls = LATE_SENDER
    elif dur <= 0 or send.visible_ns <= w.begin_ns:
        cls = LATE_RECEIVER
    else:
        cls = LATE_SENDER
    out = ClassifiedWait(
        rank=w.rank, begin_ns=w.begin_ns, end_ns=w.end_ns, cls=cls,
        op=w.coll, peer=w.msg_src, seq=w.seq,
    )
    if send is not None and dur > 0:
        # NIC-queueing share: the queueing interval clipped to the wait.
        out.queue_ns = _overlap(
            send.inject_ns, send.inject_ns + send.queue_ns,
            w.begin_ns, w.end_ns)
        if send.eta_ns is not None and send.visible_ns is not None:
            # Gate share: physically arrived but invisible (receiver SMM).
            out.gate_ns = _overlap(
                send.eta_ns, send.visible_ns, w.begin_ns, w.end_ns)
    return out


def build_profile(capture: AttrCapture) -> RunProfile:
    """Classify every wait and summarize per rank."""
    if capture.t0_ns is None:
        raise ValueError("capture saw no communicator; was it attached?")
    if not capture._finalized:
        raise ValueError("capture not finalized; run the job first")
    waits: Dict[int, List[ClassifiedWait]] = {r: [] for r in capture.ranks}
    ranks: Dict[int, RankProfile] = {}
    for r, obs in capture.ranks.items():
        ranks[r] = RankProfile(
            rank=r, node=obs.node, lrank=obs.lrank,
            started_ns=obs.started_ns, finished_ns=obs.finished_ns,
            kernel_ns=obs.kernel_ns, true_ns=obs.true_ns,
            stolen_ns=obs.stolen_ns,
        )
    from repro.simx.timeline import Timeline

    for w in capture.waits:
        cw = _classify(w, capture.sends)
        waits[w.rank].append(cw)
        rp = ranks[w.rank]
        rp.n_waits += 1
        rp.wait_ns += cw.dur_ns
        rp.queue_ns += cw.queue_ns
        rp.gate_ns += cw.gate_ns
        if cw.dur_ns > 0:
            own = capture.smm.get(rp.node)
            if own:
                rp.smm_wait_ns += Timeline.total_overlap(
                    own, cw.begin_ns, cw.end_ns)
        if cw.cls == COLLECTIVE:
            rp.collective_ns += cw.dur_ns
            op = cw.op or "?"
            rp.coll_by_op[op] = rp.coll_by_op.get(op, 0) + cw.dur_ns
        elif cw.cls == LATE_SENDER:
            rp.late_sender_ns += cw.dur_ns
        else:
            rp.late_receiver_ns += cw.dur_ns
    for lst in waits.values():
        lst.sort(key=lambda cw: (cw.end_ns, cw.begin_ns))
    finishes = {
        r: rp.finished_ns for r, rp in ranks.items()
        if rp.finished_ns is not None
    }
    if finishes:
        end_ns = max(finishes.values())
        terminal = min(r for r, f in finishes.items() if f == end_ns)
    else:
        end_ns = capture.t_end_ns or capture.t0_ns
        terminal = 0
    prof = RunProfile(
        t0_ns=capture.t0_ns,
        end_ns=end_ns,
        terminal_rank=terminal,
        elapsed_app_s=capture.elapsed_app_s,
        wall_s=capture.wall_s,
        ranks=ranks,
        waits=waits,
        sends=capture.sends,
        smm=capture.smm,
        smm_total_ns=capture.smm_total_ns,
        misplacements=capture.misplacements,
    )
    m = capture.metrics
    if m is not None:
        ls = sum(rp.late_sender_ns for rp in ranks.values())
        co = sum(rp.collective_ns for rp in ranks.values())
        m.counter("attr.wait.late_sender_ns",
                  "blocked time classified late-sender").inc(ls)
        m.counter("attr.wait.collective_ns",
                  "blocked time inside collective regions").inc(co)
        m.counter("attr.wait.late_receiver",
                  "waits whose message was already visible").inc(
            sum(1 for lst in waits.values()
                for cw in lst if cw.cls == LATE_RECEIVER))
        h = m.histogram("attr.wait_ns", "blocking-wait durations")
        for lst in waits.values():
            for cw in lst:
                if cw.dur_ns > 0:
                    h.observe(cw.dur_ns)
    return prof
