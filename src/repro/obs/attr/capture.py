"""Per-rank event capture: the recording half of the attribution engine.

An :class:`AttrCapture` is attached to a cluster *before* the job
launches (``cluster.attr = capture``, done by :meth:`AttrCapture.attach`
or by :func:`repro.apps.nas.study.run_nas_config` via its ``attr=``
parameter).  The MPI layer then calls the ``on_*`` hooks at each
interesting transition:

* :meth:`on_comm` — a communicator was built (rank → node placement);
* :meth:`on_send` / :meth:`on_transfer` — a message was injected and
  its NIC queueing delay + physical arrival time are known;
* :meth:`on_arrival` — the message became *visible* to host software
  (post node-gate, i.e. after any SMM freeze on the receiver);
* :meth:`on_wait` — a blocking receive-side wait completed;
* :meth:`on_coll_begin` / :meth:`on_coll_end` — a rank entered/left a
  collective region (so waits inside it carry the operation name).

Every hook is **pure recording**: no events are scheduled, no state the
simulation reads is touched, so an attributed run is event-for-event
identical to an unattributed one (asserted by the inertness test in
``tests/obs/test_attr.py``).  :meth:`finalize` snapshots the per-task
accounting and the ground-truth SMM residency windows after the engine
stops; :func:`repro.obs.attr.profile.build_profile` does the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SendRec", "WaitRec", "RankObs", "AttrCapture"]


@dataclass
class SendRec:
    """One message's life: injection, NIC queueing, visibility."""

    seq: int
    src: int
    dst: int
    tag: int
    nbytes: int
    inject_ns: int
    #: time the message waited behind earlier traffic on the source NIC.
    queue_ns: int = 0
    #: scheduled physical arrival (DMA complete) at the destination.
    eta_ns: Optional[int] = None
    #: when host software on the destination could first see it (post
    #: node-gate: equals ``eta_ns`` unless the receiver was in SMM).
    visible_ns: Optional[int] = None


@dataclass
class WaitRec:
    """One completed blocking wait on a receive request."""

    rank: int
    begin_ns: int
    end_ns: int
    #: requested envelope (may be wildcards).
    src: int
    tag: int
    #: collective operation name when the wait ran inside one.
    coll: Optional[str] = None
    #: matched message identity (None when the wait returned no message).
    seq: Optional[int] = None
    msg_src: Optional[int] = None
    post_ns: Optional[int] = None


@dataclass
class RankObs:
    """Post-run per-rank observations (filled by :meth:`finalize`)."""

    rank: int
    node: str
    lrank: int
    started_ns: Optional[int] = None
    finished_ns: Optional[int] = None
    kernel_ns: float = 0.0
    true_ns: float = 0.0
    stolen_ns: float = 0.0
    segments: int = 0


class AttrCapture:
    """Recorder for one MPI job; attach to a cluster, run, finalize."""

    def __init__(self, metrics=None):
        self.metrics = metrics
        self.sends: Dict[int, SendRec] = {}
        self.waits: List[WaitRec] = []
        self.ranks: Dict[int, RankObs] = {}
        #: node name → SMM residency [enter, exit) windows (ground truth).
        self.smm: Dict[str, List[tuple]] = {}
        #: node name → total SMM residency ns (controller stats).
        self.smm_total_ns: Dict[str, float] = {}
        #: node name → post-SMM misplacement count (scheduler hook data).
        self.misplacements: Dict[str, int] = {}
        self.t0_ns: Optional[int] = None
        self.t_end_ns: Optional[int] = None
        self.elapsed_app_s: Optional[float] = None
        self.wall_s: Optional[float] = None
        self._coll_stack: Dict[int, List[str]] = {}
        self._pending_send: Optional[SendRec] = None
        self._tasks = None
        self._finalized = False

    # -- wiring -------------------------------------------------------------
    def attach(self, cluster) -> None:
        """Register with a cluster (before the job launches)."""
        cluster.attr = self
        cluster.network.attr = self

    # -- hooks (pure recording; called from the MPI layer) -------------------
    def on_comm(self, comm) -> None:
        if self._tasks is not None:
            return  # first communicator wins (one job per capture)
        self._tasks = list(comm.tasks)
        self.t0_ns = comm.engine.now
        per_node: Dict[str, int] = {}
        for r, task in enumerate(self._tasks):
            name = task.node.name
            lrank = per_node.get(name, 0)
            per_node[name] = lrank + 1
            self.ranks[r] = RankObs(rank=r, node=name, lrank=lrank)

    def on_send(self, msg, now: int) -> None:
        rec = SendRec(
            seq=msg.seq, src=msg.src, dst=msg.dst, tag=msg.tag,
            nbytes=msg.nbytes, inject_ns=now,
        )
        self.sends[msg.seq] = rec
        self._pending_send = rec

    def on_transfer(self, queue_ns: int, eta_ns: int) -> None:
        rec = self._pending_send
        if rec is None:
            return  # e.g. a fault-duplicated transfer; first one wins
        rec.queue_ns = queue_ns
        rec.eta_ns = eta_ns
        self._pending_send = None

    def on_arrival(self, seq: int, now: int) -> None:
        rec = self.sends.get(seq)
        if rec is not None and rec.visible_ns is None:
            rec.visible_ns = now

    def on_wait(self, rank: int, begin_ns: int, end_ns: int, request, msg
                ) -> None:
        stack = self._coll_stack.get(rank)
        self.waits.append(WaitRec(
            rank=rank,
            begin_ns=begin_ns,
            end_ns=end_ns,
            src=getattr(request, "post_src", -1),
            tag=getattr(request, "post_tag", -1),
            coll=stack[-1] if stack else None,
            seq=msg.seq if msg is not None else None,
            msg_src=msg.src if msg is not None else None,
            post_ns=getattr(request, "post_ns", None),
        ))

    def on_coll_begin(self, rank: int, op: str) -> None:
        self._coll_stack.setdefault(rank, []).append(op)

    def on_coll_end(self, rank: int) -> None:
        stack = self._coll_stack.get(rank)
        if stack:
            stack.pop()

    # -- post-run snapshot ---------------------------------------------------
    def finalize(self, cluster, result=None) -> None:
        """Snapshot accounting + ground truth once the engine stopped."""
        if self._finalized:
            return
        self._finalized = True
        timeline = cluster.timeline
        if not timeline.enabled:
            raise ValueError(
                "attribution capture needs an enabled timeline "
                "(SMM residency windows come from smm.enter/smm.exit records)")
        for node in cluster.nodes:
            self.smm[node.name] = timeline.intervals(
                "smm.enter", "smm.exit", where=node.name)
            self.smm_total_ns[node.name] = float(node.smm.stats.total_ns)
            self.misplacements[node.name] = len(
                timeline.select(kind="sched.misplace", where=node.name))
        finishes = []
        for r, obs in self.ranks.items():
            task = self._tasks[r]
            obs.started_ns = task.started_ns
            obs.finished_ns = task.finished_ns
            obs.kernel_ns = task.acct.kernel_ns
            obs.true_ns = task.acct.true_ns
            obs.stolen_ns = task.acct.stolen_ns
            obs.segments = task.acct.segments
            if task.finished_ns is not None:
                finishes.append(task.finished_ns)
        self.t_end_ns = max(finishes) if finishes else cluster.engine.now
        if result is not None:
            self.elapsed_app_s = getattr(result, "elapsed_s", None)
            self.wall_s = getattr(result, "wall_s", None)
        if self.metrics is not None:
            self.metrics.counter(
                "attr.captures", "attribution captures finalized").inc()
            self.metrics.counter(
                "attr.waits", "blocking waits recorded").inc(len(self.waits))
            self.metrics.counter(
                "attr.sends", "messages recorded").inc(len(self.sends))
