"""One-call attribution of a table cell, and its terminal rendering.

:func:`attribute_cell` runs a (config, SMI-class) cell twice with the
capture layer attached — once at SMM 0 (the baseline), once under the
requested SMI class, same seed — then classifies waits, extracts the
critical path, and decomposes the slowdown.  The resulting ``report``
dict is pure JSON data, deterministic for a given (params, seed): it is
what lands in the runx manifest's per-cell ``attribution`` block and
what ``repro-smm explain`` renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.attr.capture import AttrCapture
from repro.obs.attr.critical import CriticalPath, critical_path
from repro.obs.attr.decompose import Decomposition, decompose
from repro.obs.attr.profile import RunProfile, build_profile

__all__ = ["CellAttribution", "attribute_cell", "render_explain"]


def _duty_nominal(smm: int, interval_jiffies: int) -> float:
    """Expected duty cycle of an SMI class at an interval (DESIGN §5)."""
    from repro.core.smi import SmiProfile

    durations = SmiProfile.by_index(smm)
    if durations is None:
        return 0.0
    d = durations.mean_ns
    interval_ns = interval_jiffies * 1_000_000
    if interval_ns >= d:
        return d / interval_ns
    return d / (interval_ns + d)  # tick-swallowing regime


@dataclass
class CellAttribution:
    """Everything :func:`attribute_cell` produced for one cell.

    ``base`` is the full baseline :class:`RunProfile` when the baseline
    was simulated in this call, or the memoized
    :class:`~repro.obs.attr.baseline.BaselineProfile` projection when it
    came out of the shared-baseline store (the decomposition is
    identical either way — the projection preserves every field
    ``decompose`` reads, bit for bit).
    """

    report: Dict[str, Any]
    decomposition: Decomposition
    critical: CriticalPath
    noisy: RunProfile
    base: Any
    noisy_timeline: Any = None


def attribute_cell(
    bench: str,
    cls: Any = "A",
    nodes: int = 2,
    rpn: int = 1,
    smm: int = 2,
    seed: int = 1,
    interval_jiffies: int = 1000,
    htt: bool = False,
    metrics=None,
    trace: bool = False,
    tolerance: float = 0.05,
    baselines=None,
    baseline_seed: Optional[int] = None,
    noisy_capture: Optional[AttrCapture] = None,
    noisy_timeline=None,
) -> Optional[CellAttribution]:
    """Run + attribute one cell; None for infeasible configurations.

    ``baselines`` is the :class:`~repro.obs.attr.baseline.BaselineStore`
    to memoize the zero-SMI run through; ``None`` uses the process-wide
    store, so every noisy class of one configuration within a process
    (and, via the runner/daemon wiring, across worker processes) pays
    for exactly one baseline simulation.

    ``baseline_seed`` keys (and seeds) the zero-SMI run; ``None`` uses
    the noisy ``seed``.  The zero-SMI simulation is seed-deterministic,
    so a sweep may point every SMI class of one configuration at a
    canonical baseline seed — the table's SMM-0 column — and share a
    single baseline run without changing a bit of any report
    (:func:`repro.runx.cells.nas_cell` does exactly that).

    ``noisy_capture`` (with ``noisy_timeline``) is an already-populated
    capture of the noisy run at this exact (params, seed); when given,
    the noisy simulation is not repeated.  The capture layer is passive,
    so a capture taken during a sweep's first repetition is
    byte-identical to a dedicated replay.
    """
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config
    from repro.obs.attr.baseline import (
        BaselineProfile, baseline_digest, global_store)
    from repro.simx.timeline import Timeline

    if smm <= 0:
        raise ValueError("attribution needs an SMI class (smm >= 1); "
                         "SMM 0 has nothing to explain")
    if isinstance(cls, str):
        cls = NasClass(cls.upper())
    cfg = NasConfig(bench, cls, nodes=nodes, ranks_per_node=rpn, htt=htt)
    store = baselines if baselines is not None else global_store()
    bseed = seed if baseline_seed is None else int(baseline_seed)
    digest = baseline_digest(
        cfg.bench, cfg.cls.value, nodes, rpn, htt, bseed)
    base = store.get(digest)
    if base is None:
        base_cap = AttrCapture(metrics=metrics)
        base_s = run_nas_config(
            cfg, smm=0, seed=bseed, interval_jiffies=interval_jiffies,
            timeline=Timeline(), metrics=metrics, attr=base_cap,
        )
        if base_s is None:
            return None
        base = build_profile(base_cap)
        store.put(digest, BaselineProfile.from_profile(base))
        if metrics is not None:
            metrics.counter(
                "attr.baseline.misses", "baseline runs simulated").inc()
    elif metrics is not None:
        metrics.counter(
            "attr.baseline.hits",
            "baseline runs satisfied from the shared store").inc()
    if noisy_capture is not None:
        noisy_cap, noisy_tl = noisy_capture, noisy_timeline
    else:
        noisy_cap = AttrCapture(metrics=metrics)
        noisy_tl = Timeline()
        run_nas_config(
            cfg, smm=smm, seed=seed, interval_jiffies=interval_jiffies,
            timeline=noisy_tl, metrics=metrics, attr=noisy_cap, trace=trace,
        )
    noisy = build_profile(noisy_cap)
    dec = decompose(noisy, base, tolerance=tolerance)
    cp = critical_path(noisy)
    report = _report(cfg, smm, seed, interval_jiffies, dec, cp, noisy)
    if metrics is not None:
        metrics.counter("attr.cells", "cells attributed").inc()
        if not dec.conserved:
            metrics.counter(
                "attr.conservation_violations",
                "decompositions whose residual exceeded tolerance").inc()
    return CellAttribution(
        report=report, decomposition=dec, critical=cp,
        noisy=noisy, base=base, noisy_timeline=noisy_tl,
    )


def _r(x: float, digits: int = 6) -> float:
    return round(float(x), digits)


def _report(cfg, smm, seed, interval_jiffies, dec: Decomposition,
            cp: CriticalPath, noisy: RunProfile) -> Dict[str, Any]:
    ls_n = ls_s = lr_n = co_n = co_s = 0
    by_op: Dict[str, int] = {}
    for rp in noisy.ranks.values():
        ls_s += rp.late_sender_ns
        co_s += rp.collective_ns
        for op, ns in rp.coll_by_op.items():
            by_op[op] = by_op.get(op, 0) + ns
    for ws in noisy.waits.values():
        for w in ws:
            if w.cls == "late_sender":
                ls_n += 1
            elif w.cls == "late_receiver":
                lr_n += 1
            else:
                co_n += 1
    queue_s = sum(rp.queue_ns for rp in noisy.ranks.values()) / 1e9
    gate_s = sum(rp.gate_ns for rp in noisy.ranks.values()) / 1e9
    return {
        "bench": cfg.bench,
        "class": cfg.cls.value,
        "nodes": cfg.nodes,
        "rpn": cfg.ranks_per_node,
        "htt": cfg.htt,
        "smm": smm,
        "seed": seed,
        "interval_jiffies": interval_jiffies,
        "baseline_s": _r(dec.baseline_s),
        "noisy_s": _r(dec.noisy_s),
        "slowdown_s": _r(dec.slowdown_s),
        "slowdown_pct": _r(100.0 * dec.slowdown_s / dec.baseline_s, 2),
        "duty_nominal_pct": _r(100.0 * _duty_nominal(smm, interval_jiffies), 2),
        "duty_measured_pct": _r(100.0 * noisy.duty_measured(), 2),
        # The paper's tax-vs-amplification split: direct theft as a share
        # of the noisy runtime lands near the duty cycle; everything past
        # it is amplification (mostly induced wait).
        "direct_share_of_runtime_pct": _r(
            100.0 * dec.direct_s / max(dec.noisy_s, 1e-9), 2),
        "terminal_rank": dec.terminal_rank,
        "terminal_node": dec.terminal_node,
        "components": {
            "direct_smi_s": _r(dec.direct_s),
            "induced_wait_s": _r(dec.induced_s),
            "contention_s": _r(dec.contention_s),
            "residual_s": _r(dec.residual_s),
        },
        "contention_detail": {
            "nic_queue_s": _r(dec.nic_queue_s),
            "cpu_htt_s": _r(dec.cpu_drift_s),
        },
        "conservation": {
            "residual_frac": _r(dec.residual_frac, 4),
            "tolerance": dec.tolerance,
            "ok": dec.conserved,
        },
        "wait_states": {
            "late_sender": {"count": ls_n, "seconds": _r(ls_s / 1e9)},
            "late_receiver": {"count": lr_n},
            "collective": {
                "count": co_n,
                "seconds": _r(co_s / 1e9),
                "by_op": {op: _r(ns / 1e9) for op, ns in sorted(by_op.items())},
            },
            "nic_queue_s": _r(queue_s),
            "receiver_gate_s": _r(gate_s),
        },
        "misplacements": sum(noisy.misplacements.values()),
        "critical_path": {
            "segments": len(cp.segments),
            "ranks": cp.ranks_visited,
            "nodes": cp.nodes_visited(noisy),
            "compute_s": _r(cp.compute_ns / 1e9),
            "wait_s": _r(cp.wait_ns / 1e9),
            "direct_theft_s": _r(cp.direct_theft_ns / 1e9),
            "theft_behind_waits_s": _r(cp.theft_behind_waits_ns / 1e9),
        },
        "per_rank": [
            [r, _r(noisy.ranks[r].wait_ns / 1e9),
             _r(noisy.ranks[r].stolen_ns / 1e9)]
            for r in sorted(noisy.ranks)
        ],
    }


def _bar(value: float, total: float, width: int = 32) -> str:
    if total <= 0 or value <= 0:
        return ""
    return "#" * max(1, min(width, int(round(width * value / total))))


def render_explain(report: Dict[str, Any], paper=None) -> str:
    """Terminal rendering of a report, next to the paper's numbers.

    ``paper`` is the :data:`repro.paperdata` ``(smm0, smm1, smm2)``
    tuple for the same cell when the paper published it.
    """
    from repro.analysis.figures import Series, ascii_chart

    r = report
    c = r["components"]
    lines = []
    h = " ht=1" if r.get("htt") else ""
    lines.append(
        f"== {r['bench']}.{r['class']} n={r['nodes']} rpn={r['rpn']}{h} "
        f"smm={r['smm']} · noise attribution (seed {r['seed']}, "
        f"interval {r['interval_jiffies']} jiffies) ==")
    lines.append("")
    p0 = p2 = None
    if paper is not None:
        p0, p2 = paper[0], paper[r["smm"]]
    lines.append(
        f"  baseline (SMM 0)  {r['baseline_s']:>10.4f} s"
        + (f"     paper {p0:>8.2f} s" if p0 else ""))
    lines.append(
        f"  with SMI class {r['smm']} {r['noisy_s']:>11.4f} s"
        + (f"     paper {p2:>8.2f} s" if p2 else ""))
    paper_pct = ""
    if p0 and p2:
        paper_pct = f"     paper {100.0 * (p2 - p0) / p0:+.2f}%"
    lines.append(
        f"  slowdown          {r['slowdown_s']:>+10.4f} s  "
        f"({r['slowdown_pct']:+.2f}%)" + paper_pct)
    lines.append(
        f"  SMI duty cycle    {r['duty_nominal_pct']:.2f}% nominal · "
        f"{r['duty_measured_pct']:.2f}% measured")
    lines.append(
        f"  direct theft is {r['direct_share_of_runtime_pct']:.2f}% of the "
        "noisy runtime (~ duty cycle); the rest of the slowdown is "
        "amplification")
    lines.append("")
    lines.append(
        f"-- decomposition along critical rank {r['terminal_rank']} "
        f"({r['terminal_node']}) ".ljust(71, "-"))
    total = max(r["slowdown_s"], 1e-9)
    for label, key in (
        ("direct SMI theft", "direct_smi_s"),
        ("induced MPI wait", "induced_wait_s"),
        ("contention", "contention_s"),
        ("residual", "residual_s"),
    ):
        v = c[key]
        pct = 100.0 * v / total
        lines.append(
            f"  {label:<17}{v:>10.4f} s {pct:>6.1f}% |{_bar(v, total)}")
    cons = r["conservation"]
    lines.append(
        f"  conservation: |residual| = {100.0 * cons['residual_frac']:.2f}% "
        f"of slowdown (tolerance {100.0 * cons['tolerance']:.1f}%) -> "
        + ("OK" if cons["ok"] else "VIOLATED"))
    cd = r["contention_detail"]
    lines.append(
        f"    contention = nic queueing {cd['nic_queue_s']:.4f} s "
        f"+ cpu/HTT drift {cd['cpu_htt_s']:.4f} s")
    lines.append("")
    lines.append("-- wait states (noisy run, all ranks) ".ljust(71, "-"))
    ws = r["wait_states"]
    lines.append(
        f"  late sender   {ws['late_sender']['count']:>6} waits  "
        f"{ws['late_sender']['seconds']:>10.4f} s")
    lines.append(f"  late receiver {ws['late_receiver']['count']:>6} waits")
    ops = ws["collective"]["by_op"]
    op_note = ""
    if ops:
        op_note = "  (" + ", ".join(
            f"{op} {s:.2f}" for op, s in sorted(ops.items())) + ")"
    lines.append(
        f"  collective    {ws['collective']['count']:>6} waits  "
        f"{ws['collective']['seconds']:>10.4f} s" + op_note)
    lines.append(
        f"  nic queueing inside waits  {ws['nic_queue_s']:>10.4f} s")
    lines.append(
        f"  receiver-gate (own SMM)    {ws['receiver_gate_s']:>10.4f} s")
    lines.append(f"  post-SMM misplacements     {r['misplacements']:>10}")
    lines.append("")
    cp = r["critical_path"]
    lines.append("-- critical path (zigzag) ".ljust(71, "-"))
    lines.append(
        f"  segments {cp['segments']} · ranks {cp['ranks']} · "
        f"nodes {cp['nodes']}")
    lines.append(
        f"  compute {cp['compute_s']:.4f} s "
        f"(direct theft {cp['direct_theft_s']:.4f} s)")
    lines.append(
        f"  wait    {cp['wait_s']:.4f} s "
        f"(theft behind waits {cp['theft_behind_waits_s']:.4f} s)")
    lines.append("")
    lines.append("-- per-rank MPI wait (1) vs stolen CPU (2), shared scale "
                 .ljust(71, "-"))
    wait_series = Series("wait_s")
    stolen_series = Series("stolen_s")
    for rank, wait_s, stolen_s in r["per_rank"]:
        wait_series.add(rank, wait_s)
        stolen_series.add(rank, stolen_s)
    ymax = max(
        [y for _, y in wait_series.points + stolen_series.points] + [1e-9])
    lines.append(ascii_chart(
        [wait_series, stolen_series], width=60, height=12,
        y_min=0.0, y_max=ymax, x_label="rank",
    ))
    return "\n".join(lines)
