"""repro.obs.attr — the noise-attribution engine.

Turns "this cell slowed down by 96%" into *why*: a per-rank event
capture layer (:mod:`capture`) hooks the MPI communicator, the
interconnect, and the SMM machinery purely as a recorder; post-run
analysis classifies every blocking wait (:mod:`profile`), walks the
inter-rank dependency graph for the job's critical path
(:mod:`critical`), and decomposes the slowdown versus the zero-SMI
baseline into direct theft / induced wait / contention / residual with a
conservation check (:mod:`decompose`).  :func:`attribute_cell` runs the
whole pipeline for one table cell; ``repro-smm explain`` renders it.
"""

from repro.obs.attr.capture import AttrCapture
from repro.obs.attr.profile import RunProfile, build_profile
from repro.obs.attr.critical import CriticalPath, critical_path
from repro.obs.attr.decompose import Decomposition, decompose
from repro.obs.attr.explain import CellAttribution, attribute_cell, render_explain
from repro.obs.attr.baseline import (
    BaselineProfile,
    BaselineStore,
    baseline_digest,
    global_store,
    reset_global_store,
)

__all__ = [
    "AttrCapture",
    "RunProfile",
    "build_profile",
    "CriticalPath",
    "critical_path",
    "Decomposition",
    "decompose",
    "CellAttribution",
    "attribute_cell",
    "render_explain",
    "BaselineProfile",
    "BaselineStore",
    "baseline_digest",
    "global_store",
    "reset_global_store",
]
