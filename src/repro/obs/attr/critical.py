"""Critical-path extraction over the inter-rank dependency graph.

The walk runs *backward* from the job's terminal rank at its finish
time.  On the current rank it alternates compute spans (the gaps
between blocking waits) and wait spans; at a wait that blocked on a
message (late-sender, or an imbalanced collective step) the path jumps
to the sending rank at the message's injection time — the classic
zigzag that explains how one frozen node stalls the whole job: the
path repeatedly routes *through* whichever node was last in SMM.

Each path segment is charged against ground truth:

* compute segments overlapping the segment rank's own node's SMM
  windows are **direct theft on the critical path**;
* wait segments overlapping the *peer's* node's SMM windows are
  **theft behind waits** — SMI time propagated through the dependency
  graph rather than suffered locally.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.attr.profile import LATE_RECEIVER, RunProfile
from repro.simx.timeline import Timeline

__all__ = ["CPSegment", "CriticalPath", "critical_path"]


@dataclass
class CPSegment:
    """One span of the (backward-constructed, forward-ordered) path."""

    rank: int
    t0_ns: int
    t1_ns: int
    kind: str                 # "compute" | "wait"
    peer: Optional[int] = None
    op: Optional[str] = None

    @property
    def dur_ns(self) -> int:
        return self.t1_ns - self.t0_ns


@dataclass
class CriticalPath:
    segments: List[CPSegment] = field(default_factory=list)
    compute_ns: int = 0
    wait_ns: int = 0
    direct_theft_ns: int = 0
    theft_behind_waits_ns: int = 0

    @property
    def ranks_visited(self) -> int:
        return len({s.rank for s in self.segments})

    def nodes_visited(self, profile: RunProfile) -> int:
        return len({profile.node_of(s.rank) for s in self.segments})


def critical_path(profile: RunProfile) -> CriticalPath:
    """Walk the dependency graph backward from the terminal rank."""
    cp = CriticalPath()
    rank = profile.terminal_rank
    t = profile.ranks[rank].finished_ns
    if t is None:
        return cp
    t0 = profile.t0_ns
    # Per-rank wait end times for bisection (waits are end-sorted).
    ends = {r: [w.end_ns for w in ws] for r, ws in profile.waits.items()}
    segs: List[CPSegment] = []
    guard = sum(len(ws) for ws in profile.waits.values()) * 2 + 16
    while t > t0 and guard > 0:
        guard -= 1
        ws = profile.waits.get(rank, ())
        i = bisect_right(ends.get(rank, []), t) - 1
        w = None
        # Skip non-blocking waits: a late-receiver wait costs no time and
        # carries no dependency the path needs to follow.
        while i >= 0:
            cand = ws[i]
            if cand.dur_ns > 0 and cand.cls != LATE_RECEIVER:
                w = cand
                break
            i -= 1
        if w is None:
            segs.append(CPSegment(rank, max(t0, t0), t, "compute"))
            break
        if w.end_ns < t:
            segs.append(CPSegment(rank, w.end_ns, t, "compute"))
        begin = max(t0, w.begin_ns)
        segs.append(CPSegment(
            rank, begin, min(t, w.end_ns), "wait", peer=w.peer, op=w.op))
        send = profile.sends.get(w.seq) if w.seq is not None else None
        if w.peer is not None and w.peer != rank and send is not None:
            # Jump to the sender at injection time: everything before the
            # injection constrains the wait through the sender's timeline.
            nxt = min(w.begin_ns, max(t0, send.inject_ns))
            if nxt >= t:
                break  # cannot make progress; bail out rather than loop
            rank, t = w.peer, nxt
        else:
            if w.begin_ns >= t:
                break
            t = w.begin_ns
    segs.reverse()
    cp.segments = segs
    for s in segs:
        own = profile.smm.get(profile.node_of(s.rank), ())
        if s.kind == "compute":
            cp.compute_ns += s.dur_ns
            cp.direct_theft_ns += Timeline.total_overlap(own, s.t0_ns, s.t1_ns)
        else:
            cp.wait_ns += s.dur_ns
            peer_node = (profile.node_of(s.peer)
                         if s.peer is not None and s.peer in profile.ranks
                         else profile.node_of(s.rank))
            peer_smm = profile.smm.get(peer_node, ())
            cp.theft_behind_waits_ns += Timeline.total_overlap(
                peer_smm, s.t0_ns, s.t1_ns)
    return cp
