"""Builders for Tables 1–3 (the MPI study).

Two execution paths share one matrix definition:

* :func:`build_table` — the legacy in-process serial build;
* :func:`table_cell_specs` + :func:`assemble_table` — the same matrix as
  serializable `repro.runx` cell specs (crash-isolated, parallel,
  resumable) and the reducer that turns ``{cell_id: CellResult}`` back
  into table rows.  Seeds are identical in both paths, so their rendered
  output is bit-for-bit the same.
"""

from __future__ import annotations

import logging
from statistics import mean
from typing import Dict, List, Optional

from repro.analysis.tables import NasTableRow, render_nas_table, rows_csv
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.experiment import run_repeated, smm_cell_seed
from repro.harness.common import bench_full
from repro.paperdata import paper_cell

__all__ = [
    "table_rows_spec",
    "build_table",
    "render",
    "table_cell_specs",
    "interval_sweep_specs",
    "assemble_table",
]

log = logging.getLogger(__name__)

#: row indices per benchmark, from the paper's tables.
_ROWS = {"BT": (1, 4, 16), "EP": (1, 2, 4, 8, 16), "FT": (1, 2, 4, 8, 16)}
_TABLE_NO = {"BT": 1, "EP": 2, "FT": 3}


def table_rows_spec(bench: str, quick: bool) -> List[tuple]:
    """(cls, row) pairs to measure."""
    classes = [NasClass.A] if quick else [NasClass.A, NasClass.B, NasClass.C]
    return [(c, r) for c in classes for r in _ROWS[bench]]


def build_table(
    bench: str,
    quick: bool = True,
    reps: int = 1,
    seed: int = 1,
    progress=None,
    manifest=None,
    metrics=None,
) -> Dict[int, List[NasTableRow]]:
    """Measure both halves of a table; returns {ranks_per_node: rows}.

    ``manifest`` (a :class:`repro.obs.manifest.RunManifest`) receives the
    planned matrix and per-cell timings; ``metrics`` (a
    :class:`repro.obs.metrics.MetricsRegistry`) collects engine/SMM/
    network counters across every run of the table.
    """
    halves: Dict[int, List[NasTableRow]] = {}
    for rpn in (1, 4):
        rows: List[NasTableRow] = []
        for cls, row in table_rows_spec(bench, quick):
            cfg = NasConfig(bench, cls, nodes=row, ranks_per_node=rpn)
            cells: Dict[int, float] = {}
            for smm in (0, 1, 2):
                if progress:
                    progress(f"{bench}.{cls.value} row={row} rpn={rpn} smm={smm}")
                log.info("cell %s.%s row=%d rpn=%d smm=%d reps=%d",
                         bench, cls.value, row, rpn, smm, reps)
                if manifest is not None:
                    manifest.plan_cell(
                        bench=bench, cls=cls.value, nodes=row,
                        ranks_per_node=rpn, smm=smm, reps=reps,
                        base_seed=smm_cell_seed(seed, smm),
                    )
                m = run_repeated(
                    lambda s, cfg=cfg, smm=smm: run_nas_config(
                        cfg, smm=smm, seed=s, metrics=metrics),
                    reps=reps,
                    base_seed=smm_cell_seed(seed, smm),
                )
                cells[smm] = m.mean if m is not None else None
                if manifest is not None:
                    manifest.add_cell(
                        f"{bench}.{cls.value} n={row} rpn={rpn} smm={smm}",
                        mean_s=m.mean if m is not None else None,
                        values_s=m.values if m is not None else None,
                    )
            rows.append(
                NasTableRow(
                    cls=cls.value,
                    row=row,
                    smm=cells,
                    paper=paper_cell(bench, rpn, cls, row),
                )
            )
        halves[rpn] = rows
    return halves


def table_cell_specs(bench: str, quick: bool, reps: int, seed: int) -> List:
    """The table's matrix as serializable `repro.runx` cell specs.

    One spec per (class, row, ranks-per-node, smm) cell; ids double as
    checkpoint/resume keys and match the legacy manifest labels.
    """
    from repro.runx.spec import CellSpec

    specs: List[CellSpec] = []
    for rpn in (1, 4):
        for cls, row in table_rows_spec(bench, quick):
            for smm in (0, 1, 2):
                specs.append(CellSpec(
                    id=f"{bench}.{cls.value} n={row} rpn={rpn} smm={smm}",
                    fn="nas",
                    params={"bench": bench, "cls": cls.value, "nodes": row,
                            "rpn": rpn, "smm": smm, "reps": reps},
                    base_seed=smm_cell_seed(seed, smm),
                ))
    return specs


def interval_sweep_specs(
    bench: str,
    cls: NasClass,
    nodes: int,
    rpn: int,
    smm: int,
    intervals: List[int],
    reps: int,
    seed: int,
    htt: bool = False,
) -> List:
    """One configuration swept across SMI trigger intervals (the §IV.B/C
    protocol applied to the MPI study): one spec per interval, all sharing
    the cell seed so every interval perturbs the *same* underlying runs.

    That shared seed is what the warmup-prefix planner keys on
    (:mod:`repro.runx.forkshare`): cells here differ only in
    ``params["interval"]``, so a sweep runs one warm prefix per
    repetition and forks per interval.  Sort order is ascending interval
    — the smallest interval warms the prefix every later cell forks from
    (a larger first interval would strand smaller ones on the cold path).
    """
    from repro.runx.spec import CellSpec

    specs: List[CellSpec] = []
    for iv in sorted(set(int(i) for i in intervals)):
        params = {"bench": bench, "cls": cls.value, "nodes": nodes,
                  "rpn": rpn, "smm": smm, "reps": reps, "interval": iv}
        if htt:
            params["htt"] = True
        specs.append(CellSpec(
            id=(f"{bench}.{cls.value} n={nodes} rpn={rpn} smm={smm} "
                f"iv={iv}"),
            fn="nas",
            params=params,
            base_seed=smm_cell_seed(seed, smm, htt),
        ))
    return specs


def assemble_table(
    bench: str, quick: bool, results: Dict,
) -> Dict[int, List[NasTableRow]]:
    """Reduce `repro.runx` results back into the table's row structure.

    A failed or missing cell becomes ``None`` — rendered exactly like the
    paper's infeasible "-" cells, so a partially failed sweep still
    produces a readable table.
    """
    halves: Dict[int, List[NasTableRow]] = {}
    for rpn in (1, 4):
        rows: List[NasTableRow] = []
        for cls, row in table_rows_spec(bench, quick):
            cells: Dict[int, Optional[float]] = {}
            for smm in (0, 1, 2):
                cid = f"{bench}.{cls.value} n={row} rpn={rpn} smm={smm}"
                res = results.get(cid)
                values = res.value.get("values") if (
                    res is not None and res.ok and res.value) else None
                cells[smm] = mean(values) if values else None
            rows.append(NasTableRow(
                cls=cls.value, row=row, smm=cells,
                paper=paper_cell(bench, rpn, cls, row),
            ))
        halves[rpn] = rows
    return halves


def render(bench: str, halves: Dict[int, List[NasTableRow]], csv: bool = False) -> str:
    n = _TABLE_NO[bench]
    if csv:
        return "".join(
            f"# ranks_per_node={rpn}\n{rows_csv(rows)}" for rpn, rows in halves.items()
        )
    out = []
    for rpn, rows in halves.items():
        out.append(
            render_nas_table(
                f"Table {n}: {bench} — {rpn} MPI rank(s) per node "
                "(simulated vs paper)",
                rows,
            )
        )
    return "\n".join(out)
