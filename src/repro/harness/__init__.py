"""repro.harness — shared experiment builders for Tables 1–5 and Figures 1–2.

Both the CLI (``repro-smm table1`` …) and the pytest benchmark suite
(``benchmarks/``) drive these builders, so the artifacts are regenerated
identically from either entry point.

Scaling knobs (environment):

* ``REPRO_BENCH_FULL=1`` — run the paper's full matrix (all classes, all
  rows, 30-point Figure 1 sweep).  Default is the *quick* matrix: class A
  (which exhibits every shape the paper reports, at the highest
  noise-to-compute ratio), all row counts, coarser sweeps.
* ``REPRO_BENCH_REPS=N`` — repetitions per cell (paper: 6; default 1 for
  quick, 3 for full — the simulator's only run-to-run variance is the
  seeded SMI phase/duration jitter).
"""

from repro.harness.common import bench_full, bench_reps

__all__ = ["bench_full", "bench_reps"]
