"""Builders for Tables 4–5 (HTT × SMI at 4 ranks per node)."""

from __future__ import annotations

import logging
from typing import Dict, List

from repro.analysis.tables import HttRow, render_htt_table
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.experiment import run_repeated
from repro.paperdata import TABLE4_EP_HTT, TABLE5_FT_HTT

__all__ = ["build_htt_table", "render_htt"]

log = logging.getLogger(__name__)

_PAPER = {"EP": TABLE4_EP_HTT, "FT": TABLE5_FT_HTT}
_TABLE_NO = {"EP": 4, "FT": 5}
_ROWS = (1, 2, 4, 8, 16)


def build_htt_table(
    bench: str,
    quick: bool = True,
    reps: int = 1,
    seed: int = 1,
    progress=None,
    manifest=None,
    metrics=None,
) -> List[HttRow]:
    classes = [NasClass.A] if quick else [NasClass.A, NasClass.B, NasClass.C]
    rows: List[HttRow] = []
    for cls in classes:
        for row in _ROWS:
            cells: Dict[int, tuple] = {}
            for smm in (0, 1, 2):
                pair = []
                for htt in (False, True):
                    if progress:
                        progress(f"{bench}.{cls.value} row={row} smm={smm} ht={int(htt)}")
                    log.info("cell %s.%s row=%d smm=%d ht=%d reps=%d",
                             bench, cls.value, row, smm, int(htt), reps)
                    if manifest is not None:
                        manifest.plan_cell(
                            bench=bench, cls=cls.value, nodes=row,
                            ranks_per_node=4, htt=htt, smm=smm, reps=reps,
                            base_seed=seed + 31 * smm + (977 if htt else 0),
                        )
                    cfg = NasConfig(bench, cls, nodes=row, ranks_per_node=4, htt=htt)
                    m = run_repeated(
                        lambda s, cfg=cfg, smm=smm: run_nas_config(
                            cfg, smm=smm, seed=s, metrics=metrics),
                        reps=reps,
                        base_seed=seed + 31 * smm + (977 if htt else 0),
                    )
                    pair.append(m.mean if m is not None else None)
                    if manifest is not None:
                        manifest.add_cell(
                            f"{bench}.{cls.value} n={row} smm={smm} ht={int(htt)}",
                            mean_s=m.mean if m is not None else None,
                            values_s=m.values if m is not None else None,
                        )
                cells[smm] = tuple(pair)
            rows.append(
                HttRow(
                    cls=cls.value,
                    row=row,
                    cells=cells,
                    paper=_PAPER[bench].get((cls, row)),
                )
            )
    return rows


def render_htt(bench: str, rows: List[HttRow]) -> str:
    return render_htt_table(
        f"Table {_TABLE_NO[bench]}: Effect of HTT on {bench} with 4 MPI ranks "
        "per node (simulated vs paper Δ%)",
        rows,
    )
