"""Builders for Tables 4–5 (HTT × SMI at 4 ranks per node).

Like :mod:`repro.harness.mpi_tables`, the matrix exists in two forms
with identical seeds: the legacy in-process :func:`build_htt_table`, and
:func:`htt_cell_specs` + :func:`assemble_htt_table` for the resilient
`repro.runx` path.
"""

from __future__ import annotations

import logging
from statistics import mean
from typing import Dict, List, Optional

from repro.analysis.tables import HttRow, render_htt_table
from repro.apps.nas.params import NasClass
from repro.apps.nas.study import NasConfig, run_nas_config
from repro.core.experiment import run_repeated, smm_cell_seed
from repro.paperdata import TABLE4_EP_HTT, TABLE5_FT_HTT

__all__ = [
    "build_htt_table",
    "render_htt",
    "htt_cell_specs",
    "assemble_htt_table",
]

log = logging.getLogger(__name__)

_PAPER = {"EP": TABLE4_EP_HTT, "FT": TABLE5_FT_HTT}
_TABLE_NO = {"EP": 4, "FT": 5}
_ROWS = (1, 2, 4, 8, 16)


def build_htt_table(
    bench: str,
    quick: bool = True,
    reps: int = 1,
    seed: int = 1,
    progress=None,
    manifest=None,
    metrics=None,
) -> List[HttRow]:
    classes = [NasClass.A] if quick else [NasClass.A, NasClass.B, NasClass.C]
    rows: List[HttRow] = []
    for cls in classes:
        for row in _ROWS:
            cells: Dict[int, tuple] = {}
            for smm in (0, 1, 2):
                pair = []
                for htt in (False, True):
                    if progress:
                        progress(f"{bench}.{cls.value} row={row} smm={smm} ht={int(htt)}")
                    log.info("cell %s.%s row=%d smm=%d ht=%d reps=%d",
                             bench, cls.value, row, smm, int(htt), reps)
                    if manifest is not None:
                        manifest.plan_cell(
                            bench=bench, cls=cls.value, nodes=row,
                            ranks_per_node=4, htt=htt, smm=smm, reps=reps,
                            base_seed=smm_cell_seed(seed, smm, htt),
                        )
                    cfg = NasConfig(bench, cls, nodes=row, ranks_per_node=4, htt=htt)
                    m = run_repeated(
                        lambda s, cfg=cfg, smm=smm: run_nas_config(
                            cfg, smm=smm, seed=s, metrics=metrics),
                        reps=reps,
                        base_seed=smm_cell_seed(seed, smm, htt),
                    )
                    pair.append(m.mean if m is not None else None)
                    if manifest is not None:
                        manifest.add_cell(
                            f"{bench}.{cls.value} n={row} smm={smm} ht={int(htt)}",
                            mean_s=m.mean if m is not None else None,
                            values_s=m.values if m is not None else None,
                        )
                cells[smm] = tuple(pair)
            rows.append(
                HttRow(
                    cls=cls.value,
                    row=row,
                    cells=cells,
                    paper=_PAPER[bench].get((cls, row)),
                )
            )
    return rows


def htt_cell_specs(bench: str, quick: bool, reps: int, seed: int) -> List:
    """Tables 4–5 as serializable `repro.runx` cell specs."""
    from repro.runx.spec import CellSpec

    classes = [NasClass.A] if quick else [NasClass.A, NasClass.B, NasClass.C]
    specs: List[CellSpec] = []
    for cls in classes:
        for row in _ROWS:
            for smm in (0, 1, 2):
                for htt in (False, True):
                    specs.append(CellSpec(
                        id=(f"{bench}.{cls.value} n={row} smm={smm} "
                            f"ht={int(htt)}"),
                        fn="nas",
                        params={"bench": bench, "cls": cls.value,
                                "nodes": row, "rpn": 4, "htt": htt,
                                "smm": smm, "reps": reps},
                        base_seed=smm_cell_seed(seed, smm, htt),
                    ))
    return specs


def assemble_htt_table(bench: str, quick: bool, results: Dict) -> List[HttRow]:
    """Reduce `repro.runx` results into HTT rows (failures become "-")."""
    classes = [NasClass.A] if quick else [NasClass.A, NasClass.B, NasClass.C]
    rows: List[HttRow] = []
    for cls in classes:
        for row in _ROWS:
            cells: Dict[int, tuple] = {}
            for smm in (0, 1, 2):
                pair: List[Optional[float]] = []
                for htt in (False, True):
                    cid = f"{bench}.{cls.value} n={row} smm={smm} ht={int(htt)}"
                    res = results.get(cid)
                    values = res.value.get("values") if (
                        res is not None and res.ok and res.value) else None
                    pair.append(mean(values) if values else None)
                cells[smm] = tuple(pair)
            rows.append(HttRow(
                cls=cls.value, row=row, cells=cells,
                paper=_PAPER[bench].get((cls, row)),
            ))
    return rows


def render_htt(bench: str, rows: List[HttRow]) -> str:
    return render_htt_table(
        f"Table {_TABLE_NO[bench]}: Effect of HTT on {bench} with 4 MPI ranks "
        "per node (simulated vs paper Δ%)",
        rows,
    )
