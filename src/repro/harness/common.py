"""Harness scaling knobs (see package docstring)."""

from __future__ import annotations

import os

__all__ = ["bench_full", "bench_reps"]


def bench_full() -> bool:
    """True when the full paper matrix is requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")


def bench_reps(quick_default: int = 1, full_default: int = 3) -> int:
    """Repetitions per cell, honouring REPRO_BENCH_REPS."""
    v = os.environ.get("REPRO_BENCH_REPS")
    if v:
        n = int(v)
        if n < 1:
            raise ValueError("REPRO_BENCH_REPS must be >= 1")
        return n
    return full_default if bench_full() else quick_default
