"""Harness scaling knobs (see package docstring)."""

from __future__ import annotations

import os

from repro.core.experiment import reps_from_env

__all__ = ["bench_full", "bench_reps"]


def bench_full() -> bool:
    """True when the full paper matrix is requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0", "false")


def bench_reps(quick_default: int = 1, full_default: int = 3) -> int:
    """Repetitions per cell, honouring REPRO_BENCH_REPS."""
    n = reps_from_env()
    if n is not None:
        return n
    return full_default if bench_full() else quick_default
