"""Builder for Figure 1 (Convolve experiments).

Left graphs: execution time vs SMI interval (long SMIs, the paper sweeps
50–1500 ms in 50 ms steps), one line per logical-CPU configuration.
Right graphs: execution time vs logical-CPU count at a fixed 50 ms
interval, with repetition spread (the paper plots 3 runs and discusses
the variance).  Both for the CacheUnfriendly (top) and CacheFriendly
(bottom) configurations.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.figures import Series, ascii_chart, series_csv
from repro.apps.convolve import CACHE_FRIENDLY, CACHE_UNFRIENDLY, ConvolveConfig, run_convolve
from repro.core.smi import SmiProfile
from repro.harness.common import bench_full

__all__ = [
    "Figure1Data",
    "build_figure1",
    "render_figure1",
    "figure1_cell_specs",
    "assemble_figure1",
]

log = logging.getLogger(__name__)

_CPU_CONFIGS_QUICK = (1, 2, 4, 8)
_CPU_CONFIGS_FULL = (1, 2, 3, 4, 5, 6, 7, 8)


def _intervals(quick: bool) -> List[int]:
    if quick:
        return [50, 100, 200, 400, 600, 900, 1200, 1500]
    return list(range(50, 1501, 50))  # the paper's 50 ms grid


@dataclass
class Figure1Data:
    """All series of the four panels."""

    #: config name -> list of per-CPU-config Series over SMI interval (ms).
    left: Dict[str, List[Series]] = field(default_factory=dict)
    #: config name -> Series over CPU count at 50 ms interval (per seed).
    right: Dict[str, List[Series]] = field(default_factory=dict)
    baselines: Dict[str, Dict[int, float]] = field(default_factory=dict)


def build_figure1(quick: bool = True, seed: int = 1, reps_right: int = 3,
                  manifest=None, metrics=None) -> Figure1Data:
    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    intervals = _intervals(quick)
    data = Figure1Data()
    for config in (CACHE_UNFRIENDLY, CACHE_FRIENDLY):
        # Left panel: time vs interval per CPU config.
        lines: List[Series] = []
        data.baselines[config.name] = {}
        for k in cpus:
            log.info("figure1 left %s cpus=%d (%d intervals)",
                     config.name, k, len(intervals))
            base = run_convolve(config, k, seed=seed, metrics=metrics).elapsed_s
            data.baselines[config.name][k] = base
            if manifest is not None:
                manifest.plan_cell(config=config.name, cpus=k, panel="left",
                                   intervals_ms=list(intervals), seed=seed)
                manifest.add_cell(f"{config.name} {k}cpu baseline", mean_s=base)
            s = Series(label=f"{k}cpu")
            for iv in intervals:
                r = run_convolve(
                    config, k, smi_durations=SmiProfile.LONG,
                    smi_interval_jiffies=iv, seed=seed, metrics=metrics,
                )
                s.add(iv, r.elapsed_s)
                if manifest is not None:
                    manifest.add_cell(
                        f"{config.name} {k}cpu iv={iv}ms", mean_s=r.elapsed_s)
            lines.append(s)
        data.left[config.name] = lines
        # Right panel: time vs CPUs at the fixed 50 ms interval, 3 runs.
        runs: List[Series] = []
        for rep in range(reps_right):
            log.info("figure1 right %s run=%d", config.name, rep + 1)
            if manifest is not None:
                manifest.plan_cell(config=config.name, panel="right",
                                   run=rep + 1, cpus=list(cpus),
                                   interval_ms=50, seed=seed + 101 * (rep + 1))
            s = Series(label=f"run{rep + 1}")
            for k in cpus:
                r = run_convolve(
                    config, k, smi_durations=SmiProfile.LONG,
                    smi_interval_jiffies=50, seed=seed + 101 * (rep + 1),
                    metrics=metrics,
                )
                s.add(k, r.elapsed_s)
                if manifest is not None:
                    manifest.add_cell(
                        f"{config.name} run{rep + 1} {k}cpu @50ms",
                        mean_s=r.elapsed_s)
            runs.append(s)
        data.right[config.name] = runs
    return data


def figure1_cell_specs(quick: bool, seed: int, reps_right: int = 3) -> List:
    """Figure 1 as `repro.runx` cell specs: one cell per left-panel line
    (baseline + full interval sweep of one CPU config) and one per
    right-panel repetition — coarse enough to amortize worker startup,
    fine enough that a crash loses one line, not a panel."""
    from repro.runx.spec import CellSpec

    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    intervals = _intervals(quick)
    specs: List[CellSpec] = []
    for config in (CACHE_UNFRIENDLY, CACHE_FRIENDLY):
        for k in cpus:
            specs.append(CellSpec(
                id=f"figure1 {config.name} {k}cpu left",
                fn="convolve_line",
                params={"config": config.name, "cpus": k,
                        "intervals_ms": list(intervals)},
                base_seed=seed,
            ))
        for rep in range(reps_right):
            specs.append(CellSpec(
                id=f"figure1 {config.name} run{rep + 1} right",
                fn="convolve_run",
                params={"config": config.name, "cpus": list(cpus),
                        "interval_ms": 50},
                base_seed=seed + 101 * (rep + 1),
            ))
    return specs


def assemble_figure1(quick: bool, results: Dict,
                     reps_right: int = 3) -> Figure1Data:
    """Reduce `repro.runx` results into :class:`Figure1Data`.

    Failed cells are simply absent from their panel (the chart renders
    the surviving lines; the CLI's failure summary names the holes).
    """
    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    data = Figure1Data()
    for config in (CACHE_UNFRIENDLY, CACHE_FRIENDLY):
        lines: List[Series] = []
        data.baselines[config.name] = {}
        for k in cpus:
            res = results.get(f"figure1 {config.name} {k}cpu left")
            if res is None or not res.ok or not res.value:
                continue
            data.baselines[config.name][k] = res.value["baseline"]
            lines.append(Series(
                label=f"{k}cpu",
                points=[(float(iv), float(y))
                        for iv, y in res.value["points"]],
            ))
        data.left[config.name] = lines
        runs: List[Series] = []
        for rep in range(reps_right):
            res = results.get(f"figure1 {config.name} run{rep + 1} right")
            if res is None or not res.ok or not res.value:
                continue
            runs.append(Series(
                label=f"run{rep + 1}",
                points=[(float(k), float(y))
                        for k, y in res.value["points"]],
            ))
        data.right[config.name] = runs
    return data


def render_figure1(data: Figure1Data, csv: bool = False) -> str:
    out = []
    for name in ("CacheUnfriendly", "CacheFriendly"):
        if csv:
            out.append(f"# Figure 1 left — {name} (x = SMI interval ms)")
            out.append(series_csv(data.left[name], x_name="interval_ms"))
            out.append(f"# Figure 1 right — {name} (x = logical CPUs @50ms)")
            out.append(series_csv(data.right[name], x_name="cpus"))
        else:
            out.append(
                ascii_chart(
                    data.left[name],
                    title=f"Figure 1 (left) — Convolve {name}: time vs SMI interval",
                    x_label="SMI interval (ms, long SMIs)",
                    y_label="execution time (s)",
                    y_min=0.0,
                )
            )
            out.append(
                ascii_chart(
                    data.right[name],
                    title=f"Figure 1 (right) — Convolve {name}: time vs CPUs @50 ms",
                    x_label="online logical CPUs",
                    y_label="execution time (s)",
                    y_min=0.0,
                )
            )
    return "\n".join(out)
