"""Builder for Figure 2 (UnixBench under SMI noise).

The paper measures SMI intervals "from 100ms to 1600ms at 500 ms
increments" for each CPU configuration and plots the total index score
(higher is better) against the gap between SMIs; short SMIs showed no
effect (§IV.C) — the harness also verifies that claim.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.figures import Series, ascii_chart, series_csv
from repro.apps.unixbench import run_unixbench
from repro.core.smi import SmiProfile

__all__ = [
    "Figure2Data",
    "build_figure2",
    "render_figure2",
    "figure2_cell_specs",
    "assemble_figure2",
]

log = logging.getLogger(__name__)

_INTERVALS = (100, 600, 1100, 1600)  # the paper's grid
_CPU_CONFIGS_QUICK = (1, 2, 4, 8)
_CPU_CONFIGS_FULL = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass
class Figure2Data:
    #: per-CPU-config Series of total index vs SMI interval (long SMIs).
    long_series: List[Series] = field(default_factory=list)
    #: no-SMI baseline index per CPU config.
    baselines: Dict[int, float] = field(default_factory=dict)
    #: short-SMI index per CPU config at the fastest interval (the paper's
    #: "no noticeable effect" check).
    short_at_100ms: Dict[int, float] = field(default_factory=dict)


def build_figure2(quick: bool = True, seed: int = 1,
                  manifest=None, metrics=None) -> Figure2Data:
    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    data = Figure2Data()
    for k in cpus:
        log.info("figure2 cpus=%d", k)
        if manifest is not None:
            manifest.plan_cell(cpus=k, intervals_ms=list(_INTERVALS), seed=seed)
        data.baselines[k] = run_unixbench(k, seed=seed, metrics=metrics).total_index
        data.short_at_100ms[k] = run_unixbench(
            k, SmiProfile.SHORT, 100, seed=seed, metrics=metrics
        ).total_index
        if manifest is not None:
            manifest.add_cell(f"{k}cpu baseline", index=data.baselines[k])
            manifest.add_cell(f"{k}cpu short@100ms",
                              index=data.short_at_100ms[k])
        s = Series(label=f"{k}cpu")
        for iv in _INTERVALS:
            r = run_unixbench(k, SmiProfile.LONG, iv, seed=seed, metrics=metrics)
            s.add(iv, r.total_index)
            if manifest is not None:
                manifest.add_cell(f"{k}cpu long@{iv}ms", index=r.total_index)
        data.long_series.append(s)
    return data


def figure2_cell_specs(quick: bool, seed: int) -> List:
    """Figure 2 as `repro.runx` cell specs: one cell per CPU config
    (baseline + short-SMI check + the long-SMI interval sweep)."""
    from repro.runx.spec import CellSpec

    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    return [
        CellSpec(
            id=f"figure2 {k}cpu",
            fn="unixbench",
            params={"cpus": k, "intervals_ms": list(_INTERVALS)},
            base_seed=seed,
        )
        for k in cpus
    ]


def assemble_figure2(quick: bool, results: Dict) -> Figure2Data:
    """Reduce `repro.runx` results into :class:`Figure2Data`; failed CPU
    configs are left out of the chart and baselines."""
    cpus = _CPU_CONFIGS_QUICK if quick else _CPU_CONFIGS_FULL
    data = Figure2Data()
    for k in cpus:
        res = results.get(f"figure2 {k}cpu")
        if res is None or not res.ok or not res.value:
            continue
        data.baselines[k] = res.value["baseline"]
        data.short_at_100ms[k] = res.value["short_at_100ms"]
        data.long_series.append(Series(
            label=f"{k}cpu",
            points=[(float(iv), float(y)) for iv, y in res.value["points"]],
        ))
    return data


def render_figure2(data: Figure2Data, csv: bool = False) -> str:
    if csv:
        return series_csv(data.long_series, x_name="interval_ms")
    out = [
        ascii_chart(
            data.long_series,
            title="Figure 2 — UnixBench total index vs SMI interval (long SMIs)",
            x_label="gap between SMIs (ms) — larger = lower frequency",
            y_label="UnixBench index (higher is better)",
            y_min=0.0,
        )
    ]
    out.append("baselines (no SMIs): " + "  ".join(
        f"{k}cpu={v:.0f}" for k, v in sorted(data.baselines.items())
    ))
    out.append("short SMIs @100ms:   " + "  ".join(
        f"{k}cpu={v:.0f}" for k, v in sorted(data.short_at_100ms.items())
    ))
    return "\n".join(out)
