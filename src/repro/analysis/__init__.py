"""repro.analysis — statistics, table rendering, figure series, traces.

Everything the benchmark harness needs to turn raw runs into the paper's
artifacts: Δ/%Δ tables in the layout of Tables 1–5, series + ASCII charts
for Figures 1–2, SMM residency queries over timelines, and the
paper-vs-measured comparison records that feed EXPERIMENTS.md.
"""

from repro.analysis.stats import (
    mean,
    geomean,
    pct_change,
    confidence_interval95,
    summarize,
    Summary,
)
from repro.analysis.figures import Series, ascii_chart, series_csv
from repro.analysis.tables import NasTableRow, render_nas_table, render_htt_table
from repro.analysis.report import Comparison, ShapeCheck

__all__ = [
    "mean",
    "geomean",
    "pct_change",
    "confidence_interval95",
    "summarize",
    "Summary",
    "Series",
    "ascii_chart",
    "series_csv",
    "NasTableRow",
    "render_nas_table",
    "render_htt_table",
    "Comparison",
    "ShapeCheck",
]
