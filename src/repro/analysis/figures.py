"""Figure series and terminal rendering.

The harness regenerates Figures 1–2 as data series (CSV on request) plus
a monospace chart so ``pytest benchmarks/ -s`` shows the shapes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Series", "ascii_chart", "series_csv"]


@dataclass
class Series:
    """One labelled line of a figure: sorted (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def xs(self) -> List[float]:
        return [p[0] for p in sorted(self.points)]

    def ys(self) -> List[float]:
        return [p[1] for p in sorted(self.points)]


def series_csv(series: Sequence[Series], x_name: str = "x") -> str:
    """Wide CSV: one x column, one column per series (x values unioned)."""
    xs = sorted({x for s in series for x, _ in s.points})
    lookup: List[Dict[float, float]] = [dict(s.points) for s in series]
    out = StringIO()
    out.write(x_name + "," + ",".join(s.label for s in series) + "\n")
    for x in xs:
        row = [f"{x:g}"]
        for d in lookup:
            row.append(f"{d[x]:.6g}" if x in d else "")
        out.write(",".join(row) + "\n")
    return out.getvalue()


def ascii_chart(
    series: Sequence[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """A scatter-line chart in monospace (series marked 1..9, a..z).

    ``y_min``/``y_max`` pin the y range — pass the same pair to several
    charts to render them on a shared scale (the ``explain`` breakdowns
    and the Figure 1/2 panels use this so CI-log charts are comparable).
    Interior y-axis tick labels appear at the quarter lines.
    """
    pts = [(x, y) for s in series for x, y in s.points]
    if not pts:
        return "(empty chart)\n"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0 = min(ys) if y_min is None else y_min
    y1 = max(ys) if y_max is None else y_max
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    marks = "123456789abcdefghijklmnopqrstuvwxyz"
    for si, s in enumerate(series):
        mark = marks[si % len(marks)]
        for x, y in sorted(s.points):
            cx = int((x - x0) / (x1 - x0) * (width - 1))
            cy = int((y - y0) / (y1 - y0) * (height - 1))
            cy = max(0, min(height - 1, cy))
            grid[height - 1 - cy][cx] = mark
    # Interior tick rows: the quarter lines, skipping the labeled ends.
    ticks = {
        round(k * (height - 1) / 4)
        for k in (1, 2, 3)
    } - {0, height - 1}
    out = StringIO()
    if title:
        out.write(title + "\n")
    out.write(f"{y1:>10.4g} ┤" + "".join(grid[0]) + "\n")
    for i, row in enumerate(grid[1:-1], start=1):
        if i in ticks:
            yv = y1 - i * (y1 - y0) / (height - 1)
            out.write(f"{yv:>10.4g} ┤" + "".join(row) + "\n")
        else:
            out.write(" " * 10 + " │" + "".join(row) + "\n")
    out.write(f"{y0:>10.4g} ┤" + "".join(grid[-1]) + "\n")
    out.write(" " * 12 + "└" + "─" * width + "\n")
    out.write(" " * 12 + f"{x0:<12.4g}{x_label:^{max(0, width - 24)}}{x1:>12.4g}\n")
    legend = "   ".join(f"{marks[i % len(marks)]}={s.label}" for i, s in enumerate(series))
    out.write("    " + legend + "\n")
    if y_label:
        out.write("    y: " + y_label + "\n")
    return out.getvalue()
