"""Timeline queries: SMM residency and noise characterization.

Turns the omniscient :class:`repro.simx.timeline.Timeline` into the
summaries the study needs — per-node SMM residency, inter-SMI gaps, and
overlap structure across nodes (the quantity that decides whether
multi-node noise is absorbed or amplified, DESIGN.md §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.simx.timeline import Timeline

__all__ = ["SmmResidency", "smm_residency", "union_coverage"]


@dataclass(frozen=True)
class SmmResidency:
    """SMM statistics for one node over an observation window."""

    node: str
    window_ns: int
    intervals: Tuple[Tuple[int, int], ...]

    @property
    def entries(self) -> int:
        return len(self.intervals)

    @property
    def total_ns(self) -> int:
        return sum(b - a for a, b in self.intervals)

    @property
    def duty(self) -> float:
        return self.total_ns / self.window_ns if self.window_ns else 0.0

    def gaps_ns(self) -> List[int]:
        """Gaps between consecutive SMM exits and the next entries."""
        out = []
        for (a1, b1), (a2, _b2) in zip(self.intervals, self.intervals[1:]):
            out.append(a2 - b1)
        return out


def smm_residency(timeline: Timeline, node: str, t0: int, t1: int) -> SmmResidency:
    """Extract a node's SMM intervals clipped to [t0, t1)."""
    raw = timeline.intervals("smm.enter", "smm.exit", where=node)
    clipped = tuple(
        (max(a, t0), min(b, t1)) for a, b in raw if min(b, t1) > max(a, t0)
    )
    return SmmResidency(node=node, window_ns=t1 - t0, intervals=clipped)


def union_coverage(residencies: Sequence[SmmResidency]) -> float:
    """Fraction of the common window during which *any* node was in SMM —
    the stall fraction a perfectly lock-step application would see."""
    if not residencies:
        return 0.0
    window = residencies[0].window_ns
    for r in residencies[1:]:
        if r.window_ns != window:
            raise ValueError(
                "union_coverage needs a common observation window: "
                f"{residencies[0].node} has {window} ns but {r.node} has "
                f"{r.window_ns} ns"
            )
    events: List[Tuple[int, int]] = []
    for r in residencies:
        for a, b in r.intervals:
            events.append((a, +1))
            events.append((b, -1))
    events.sort()
    covered = 0
    depth = 0
    last = None
    for t, d in events:
        if depth > 0 and last is not None:
            covered += t - last
        depth += d
        last = t
    return covered / window if window else 0.0
