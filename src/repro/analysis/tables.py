"""Render the MPI study tables in the paper's layout.

Tables 1–3: per (class, row) — SMM 0 mean, SMM 1 mean/Δ/%, SMM 2
mean/Δ/% for each ranks-per-node half, with the paper's published value
alongside for comparison.  Tables 4–5: ht=0/ht=1 pairs per SMM class.
"""

from __future__ import annotations

from dataclasses import dataclass
from io import StringIO
from typing import Dict, List, Optional, Tuple

__all__ = ["NasTableRow", "render_nas_table", "render_htt_table", "rows_csv"]


@dataclass
class NasTableRow:
    """One measured row: means per SMM class (None = infeasible)."""

    cls: str
    row: int
    smm: Dict[int, Optional[float]]
    paper: Optional[Tuple[float, float, float]] = None

    def delta(self, k: int) -> Optional[float]:
        if self.smm.get(0) is None or self.smm.get(k) is None:
            return None
        return self.smm[k] - self.smm[0]

    def pct(self, k: int) -> Optional[float]:
        d = self.delta(k)
        if d is None or not self.smm[0]:
            return None
        return 100.0 * d / self.smm[0]

    def paper_pct(self, k: int) -> Optional[float]:
        if self.paper is None or not self.paper[0]:
            return None
        return 100.0 * (self.paper[k] - self.paper[0]) / self.paper[0]


def _f(v: Optional[float], w: int = 8, nd: int = 2) -> str:
    return f"{v:>{w}.{nd}f}" if v is not None else " " * (w - 1) + "-"


def render_nas_table(title: str, rows: List[NasTableRow]) -> str:
    """One half-table (a ranks-per-node column group)."""
    out = StringIO()
    out.write(f"== {title} ==\n")
    out.write(
        f"{'cls':<4}{'row':>4} | {'SMM0':>8} {'(paper)':>9} | "
        f"{'SMM1':>8} {'Δ':>7} {'%':>7} {'(p%)':>7} | "
        f"{'SMM2':>8} {'Δ':>7} {'%':>7} {'(p%)':>7}\n"
    )
    out.write("-" * 104 + "\n")
    last_cls = None
    for r in rows:
        if last_cls is not None and r.cls != last_cls:
            out.write("\n")
        last_cls = r.cls
        paper0 = f"({r.paper[0]:.2f})" if r.paper else "(-)"
        out.write(
            f"{r.cls:<4}{r.row:>4} | {_f(r.smm.get(0))} {paper0:>9} | "
            f"{_f(r.smm.get(1))} {_f(r.delta(1), 7)} {_f(r.pct(1), 7, 1)} "
            f"{_f(r.paper_pct(1), 7, 1)} | "
            f"{_f(r.smm.get(2))} {_f(r.delta(2), 7)} {_f(r.pct(2), 7, 1)} "
            f"{_f(r.paper_pct(2), 7, 1)}\n"
        )
    return out.getvalue()


@dataclass
class HttRow:
    """One Table 4/5 row: (ht0, ht1) per SMM class."""

    cls: str
    row: int
    cells: Dict[int, Tuple[Optional[float], Optional[float]]]
    paper: Optional[Dict[int, Tuple[float, float]]] = None


def render_htt_table(title: str, rows: List["HttRow"]) -> str:
    out = StringIO()
    out.write(f"== {title} ==\n")
    out.write(
        f"{'cls':<4}{'row':>4} |"
        + "".join(
            f" {'SMM' + str(k) + ' ht0':>9} {'ht1':>8} {'Δ%':>7} {'(pΔ%)':>7} |"
            for k in (0, 1, 2)
        )
        + "\n"
    )
    out.write("-" * 112 + "\n")
    last_cls = None
    for r in rows:
        if last_cls is not None and r.cls != last_cls:
            out.write("\n")
        last_cls = r.cls
        out.write(f"{r.cls:<4}{r.row:>4} |")
        for k in (0, 1, 2):
            h0, h1 = r.cells.get(k, (None, None))
            dpct = (
                100.0 * (h1 - h0) / h0 if h0 not in (None, 0) and h1 is not None else None
            )
            ppct = None
            if r.paper and k in r.paper and r.paper[k][0]:
                p0, p1 = r.paper[k]
                ppct = 100.0 * (p1 - p0) / p0
            out.write(
                f" {_f(h0, 9)} {_f(h1, 8)} {_f(dpct, 7, 1)} {_f(ppct, 7, 1)} |"
            )
        out.write("\n")
    return out.getvalue()


def rows_csv(rows: List[NasTableRow]) -> str:
    """Machine-readable form of a half-table."""
    out = StringIO()
    out.write("cls,row,smm0,smm1,smm2,pct1,pct2,paper0,paper1,paper2\n")
    for r in rows:
        p = r.paper or (None, None, None)

        def fmt(v):
            return f"{v:.4f}" if v is not None else ""

        out.write(
            ",".join(
                [r.cls, str(r.row), fmt(r.smm.get(0)), fmt(r.smm.get(1)),
                 fmt(r.smm.get(2)), fmt(r.pct(1)), fmt(r.pct(2)),
                 fmt(p[0]), fmt(p[1]), fmt(p[2])]
            )
            + "\n"
        )
    return out.getvalue()
