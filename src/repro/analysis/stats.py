"""Statistics helpers used across the harness.

Deliberately dependency-light (no scipy import at module load): the
t-quantiles for the 95 % CI are tabulated for the small repetition counts
the methodology uses (the paper averages 6 runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "mean",
    "geomean",
    "pct_change",
    "confidence_interval95",
    "summarize",
    "Summary",
]

#: two-sided 97.5 % Student-t quantiles by degrees of freedom (1..30).
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    g = math.exp(sum(math.log(v) for v in values) / len(values))
    # the exp/log round trip can drift a few ulp outside the mathematical
    # [min, max] envelope for near-identical large values; clamp it back
    return min(max(g, min(values)), max(values))


def pct_change(base: float, value: float) -> float:
    """Percent change from base (the tables' '%' columns)."""
    if base == 0:
        raise ValueError("zero base")
    return 100.0 * (value - base) / base


def _std(values: Sequence[float]) -> float:
    m = mean(values)
    n = len(values)
    if n < 2:
        return 0.0
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def confidence_interval95(values: Sequence[float]) -> float:
    """Half-width of the 95 % CI of the mean (0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    t = _T975[min(n - 1, len(_T975)) - 1]
    return t * _std(values) / math.sqrt(n)


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one measurement cell."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    ci95: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (relative run-to-run noise)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(values: Iterable[float]) -> Summary:
    vals: List[float] = list(values)
    if not vals:
        raise ValueError("summarize of empty sequence")
    return Summary(
        n=len(vals),
        mean=mean(vals),
        std=_std(vals),
        min=min(vals),
        max=max(vals),
        ci95=confidence_interval95(vals),
    )
