"""Trace export: ASCII Gantt charts and Chrome-trace JSON.

Two consumers:

* humans at a terminal — :func:`gantt` draws per-node lanes with SMM
  residency (█) and, optionally, a task's compute segments, making the
  freeze/stall structure of a run visible at a glance;
* ``chrome://tracing`` / Perfetto — :func:`chrome_trace` emits the
  standard ``traceEvents`` JSON with one row per node showing SMM windows
  and one row per recorded interrupt delivery, so full runs can be
  inspected interactively.
"""

from __future__ import annotations

import json
from io import StringIO
from typing import Dict, List, Optional, Sequence

from repro.simx.timeline import Timeline

__all__ = ["gantt", "chrome_trace"]


def gantt(
    timeline: Timeline,
    nodes: Sequence[str],
    t0: int,
    t1: int,
    width: int = 100,
    title: str = "SMM residency",
) -> str:
    """One lane per node; █ marks instants with the node in SMM."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    span = t1 - t0
    out = StringIO()
    out.write(f"{title}: [{t0 / 1e9:.3f}s .. {t1 / 1e9:.3f}s]\n")
    for node in nodes:
        cells = [" "] * width
        for a, b in timeline.intervals("smm.enter", "smm.exit", where=node):
            lo = max(a, t0)
            hi = min(b, t1)
            if hi <= lo:
                continue
            c0 = int((lo - t0) / span * width)
            c1 = max(c0 + 1, int((hi - t0) / span * width))
            for c in range(c0, min(c1, width)):
                cells[c] = "█"
        out.write(f"{node:>8} │{''.join(cells)}│\n")
    out.write(" " * 9 + "└" + "─" * width + "┘\n")
    return out.getvalue()


def chrome_trace(
    timeline: Timeline,
    nodes: Optional[Sequence[str]] = None,
) -> str:
    """Chrome-trace JSON: SMM windows as duration events (one pid lane
    per node), interrupt deliveries as instant events."""
    events: List[Dict] = []
    known_nodes = set(nodes) if nodes is not None else None
    for rec in timeline:
        if known_nodes is not None and rec.where not in known_nodes:
            continue
        ts_us = rec.time / 1e3
        if rec.kind == "smm.enter":
            events.append({
                "name": "SMM",
                "cat": "smm",
                "ph": "B",
                "ts": ts_us,
                "pid": rec.where,
                "tid": "smm",
                "args": dict(rec.data),
            })
        elif rec.kind == "smm.exit":
            events.append({
                "name": "SMM",
                "cat": "smm",
                "ph": "E",
                "ts": ts_us,
                "pid": rec.where,
                "tid": "smm",
            })
        elif rec.kind == "irq.deliver":
            events.append({
                "name": f"irq:{rec.data.get('irq_class', '?')}",
                "cat": "irq",
                "ph": "i",
                "s": "p",
                "ts": ts_us,
                "pid": rec.where,
                "tid": "irq",
                "args": dict(rec.data),
            })
        elif rec.kind == "sched.misplace":
            events.append({
                "name": "misplace",
                "cat": "sched",
                "ph": "i",
                "s": "p",
                "ts": ts_us,
                "pid": rec.where,
                "tid": "sched",
                "args": dict(rec.data),
            })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)
