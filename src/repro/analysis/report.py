"""Paper-vs-measured comparison records.

The reproduction standard (see the project brief) is *shape agreement*:
who wins, by roughly what factor, where the knees fall — not absolute
times from someone else's 2009 cluster.  :class:`Comparison` captures one
paper-vs-measured pair; :class:`ShapeCheck` evaluates a family of them
against a named shape claim and renders the verdict lines EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO
from typing import Callable, List, Optional, Sequence

__all__ = ["Comparison", "ShapeCheck"]


@dataclass(frozen=True)
class Comparison:
    """One measured quantity next to the paper's value."""

    label: str
    measured: float
    paper: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def line(self) -> str:
        if self.paper is None:
            return f"{self.label:<44} measured {self.measured:>9.3f}   paper      -"
        return (
            f"{self.label:<44} measured {self.measured:>9.3f}   "
            f"paper {self.paper:>9.3f}   ratio {self.ratio:>6.2f}"
        )


@dataclass
class ShapeCheck:
    """A named qualitative claim evaluated over comparisons.

    ``predicate`` receives the comparisons and returns True when the
    claimed shape holds in the measured data.
    """

    claim: str
    comparisons: List[Comparison] = field(default_factory=list)
    predicate: Optional[Callable[[Sequence[Comparison]], bool]] = None

    def add(self, label: str, measured: float, paper: Optional[float]) -> None:
        self.comparisons.append(Comparison(label, measured, paper))

    @property
    def holds(self) -> Optional[bool]:
        if self.predicate is None:
            return None
        return self.predicate(self.comparisons)

    def render(self) -> str:
        out = StringIO()
        verdict = {True: "HOLDS", False: "FAILS", None: "(informational)"}[self.holds]
        out.write(f"shape: {self.claim} — {verdict}\n")
        for c in self.comparisons:
            out.write("  " + c.line() + "\n")
        return out.getvalue()
