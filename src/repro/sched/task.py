"""The task model: what workloads are made of.

A :class:`Task` is the schedulable unit.  Workload code is a generator
function that receives the task and drives it through the cooperative
API::

    def body(task):
        yield from task.compute(2.0e9)     # 2 G work units
        yield from task.sleep(5_000_000)   # 5 ms
        v = yield from task.wait(some_event)
        return result

Compute segments are served by the CPU model at rates that reflect
processor sharing, HTT coupling, cache contention, and SMM freezes; the
task process itself is *gated* by its node, so even pure sleeps cannot
complete while the node is in SMM (timer interrupts are deferred).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional, TYPE_CHECKING

from repro.simx.engine import AnyOf, Delay, Event, Process
from repro.simx.rate import WorkItem
from repro.machine.profile import WorkloadProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node
    from repro.sched.scheduler import Scheduler

__all__ = ["Task", "TaskAccount", "TaskState"]


class TaskState(enum.Enum):
    NEW = "new"
    RUNNING = "running"     # a compute segment is placed on a CPU
    BLOCKED = "blocked"     # sleeping / waiting (consumes no CPU)
    DONE = "done"


@dataclass
class TaskAccount:
    """Per-task CPU time, three ways.

    ``kernel_ns`` is what ``/proc/<pid>/stat`` would report: it *includes*
    time stolen by SMM, because the kernel cannot see the freeze and
    charges the wall interval to the task that occupied the CPU (§II.A:
    "the time is incorrectly attributed to whatever was running at the
    time of the SMI").  ``true_ns`` is ground truth service time, and
    ``stolen_ns`` is the SMM-resident share — the discrepancy a
    measurement tool would silently mis-report.
    """

    kernel_ns: float = 0.0
    true_ns: float = 0.0
    stolen_ns: float = 0.0
    segments: int = 0
    work_done: float = 0.0

    def add_window(self, share_ns: float, frozen: bool) -> None:
        """Charge one homogeneous accounting window."""
        self.kernel_ns += share_ns
        if frozen:
            self.stolen_ns += share_ns
        else:
            self.true_ns += share_ns

    @property
    def inflation(self) -> float:
        """Fractional over-report of the kernel view vs ground truth."""
        if self.true_ns <= 0:
            return 0.0
        return self.stolen_ns / self.true_ns


class Task:
    """One schedulable task bound to a node."""

    _ids = 0

    def __init__(
        self,
        node: "Node",
        scheduler: "Scheduler",
        name: str,
        profile: WorkloadProfile,
        affinity: Optional[Iterable[int]] = None,
    ):
        Task._ids += 1
        self.tid = Task._ids
        self.node = node
        self.scheduler = scheduler
        self.name = name
        self.profile = profile
        self.affinity: Optional[frozenset[int]] = (
            frozenset(affinity) if affinity is not None else None
        )
        self.state = TaskState.NEW
        self.cpu = None  # LogicalCpu while RUNNING
        self.current_item: Optional[WorkItem] = None
        self.acct = TaskAccount()
        self.proc: Optional[Process] = None
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None

    # -- workload API ----------------------------------------------------------
    def compute(self, work_units: float, profile: Optional[WorkloadProfile] = None
                ) -> Generator[Any, Any, None]:
        """Execute ``work_units`` of computation (generator; yield from it).

        ``profile`` temporarily overrides the task's profile for this
        segment (used by phase-heterogeneous workloads like FT, whose
        FFT and transpose phases behave differently).
        """
        if work_units < 0:
            raise ValueError("negative work")
        if work_units == 0:
            return
        old_profile = self.profile
        if profile is not None:
            self.profile = profile
        try:
            item = WorkItem(
                self.node.engine, work_units, meta=self, name=f"{self.name}.seg"
            )
            self.current_item = item
            self.scheduler.start_segment(self, item)
            yield item.done
            self.acct.segments += 1
            self.acct.work_done += work_units
        finally:
            self.current_item = None
            self.profile = old_profile

    def sleep(self, ns: int) -> Generator[Any, Any, None]:
        """Block for ``ns`` of wall time (no CPU consumed).  The wake-up is
        routed through the node gate, so a sleep that expires during SMM
        completes only at SMM exit."""
        self.state = TaskState.BLOCKED
        yield Delay(int(ns))
        self.state = TaskState.BLOCKED  # stays blocked until next compute

    def wait(self, event: Event) -> Generator[Any, Any, Any]:
        """Block on an event; resumes with its value (gated by the node)."""
        self.state = TaskState.BLOCKED
        value = yield event
        return value

    def wait_any(self, events: Iterable[Event]) -> Generator[Any, Any, Any]:
        """Block until the first of ``events`` triggers; resumes with
        ``(index, value)`` (gated by the node).  Used by the MPI layer to
        race a receive completion against a timeout timer."""
        self.state = TaskState.BLOCKED
        result = yield AnyOf(events)
        return result

    def now_ns(self) -> int:
        """Node-local CLOCK_MONOTONIC (see :class:`repro.machine.clock.Clock`)."""
        return self.node.clock.monotonic_ns()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Task {self.name} tid={self.tid} {self.state.value}>"
