"""Aggregated views over the kernel's (SMM-blind) process accounting.

The per-window charging itself happens in the scheduler's executor hook
(`Scheduler._make_account_hook`); each :class:`repro.sched.task.TaskAccount`
accumulates the three time streams.  This module provides the node-level
summaries the attribution analysis (:mod:`repro.core.attribution`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.scheduler import Scheduler
    from repro.sched.task import Task

__all__ = ["AccountingReport", "TaskTimes"]


@dataclass(frozen=True)
class TaskTimes:
    """Snapshot of one task's accounted times (nanoseconds)."""

    name: str
    kernel_ns: float
    true_ns: float
    stolen_ns: float

    @property
    def inflation_pct(self) -> float:
        """How much the kernel over-reports this task's CPU time, %."""
        if self.true_ns <= 0:
            return 0.0
        return 100.0 * self.stolen_ns / self.true_ns


class AccountingReport:
    """Node-level accounting queries."""

    def __init__(self, scheduler: "Scheduler"):
        self.scheduler = scheduler

    def advance(self) -> None:
        """Kept for interface symmetry: accounting windows are integrated
        by the executors' pre_sync hooks, which every rate-changing path
        already triggers; there is nothing to do here."""

    def snapshot(self) -> List[TaskTimes]:
        return [
            TaskTimes(t.name, t.acct.kernel_ns, t.acct.true_ns, t.acct.stolen_ns)
            for t in self.scheduler.tasks
        ]

    def totals(self) -> Dict[str, float]:
        """Sums over tasks: what the kernel thinks was used vs reality."""
        kernel = true = stolen = 0.0
        for t in self.scheduler.tasks:
            kernel += t.acct.kernel_ns
            true += t.acct.true_ns
            stolen += t.acct.stolen_ns
        return {"kernel_ns": kernel, "true_ns": true, "stolen_ns": stolen}

    def conservation_error(self) -> float:
        """|kernel − (true + stolen)| — must be ~0 by construction; exposed
        so property tests can assert the invariant end-to-end."""
        tot = self.totals()
        return abs(tot["kernel_ns"] - (tot["true_ns"] + tot["stolen_ns"]))
