"""repro.sched — the operating-system substrate.

Provides the task model, a Linux-flavoured scheduler (greedy HTT-aware
placement, periodic load balancing, post-SMM wake-up perturbation), the
kernel's — deliberately SMM-blind — process time accounting, and the sysfs
hotplug front-end the paper's multithreaded methodology uses (§IV.A).
"""

from repro.sched.task import Task, TaskAccount, TaskState
from repro.sched.scheduler import Scheduler
from repro.sched.accounting import AccountingReport
from repro.sched.sysfs import Sysfs

__all__ = ["Task", "TaskAccount", "TaskState", "Scheduler", "AccountingReport", "Sysfs"]
