"""A Linux-flavoured scheduler over the fluid CPU model.

Placement policy (mirrors CFS + the Nehalem-era sched domains):

1. Prefer an online CPU on an *idle physical core* (spreads across cores
   before using HTT siblings — ``SD_SHARE_CPUCAPACITY`` behaviour).
2. Then an idle logical CPU whose sibling is busy.
3. Then the least-loaded CPU (processor sharing absorbs oversubscription,
   e.g. Convolve's 24 threads on 1–8 logical CPUs).

Load balancing:

* **Idle balancing** — whenever some CPU holds ≥ 2 segments while another
  online CPU is idle, a near-immediate (2 µs) rebalance pulls work over.
  Real kernels do this on idle entry; it is what makes *stacked*
  misplacements self-heal fast.
* **Periodic balancing** — a 250 ms tick re-derives the greedy placement.
  The tick is a *gated* process: during SMM it cannot run, exactly like
  the real softirq.

Post-SMM wake-up perturbation (the paper's HTT × long-SMI variance,
DESIGN.md §5.6): at SMM exit every runnable task wakes at once; with
probability proportional to the freeze length, one task is re-placed onto
the **busy sibling** of an occupied physical core (a waker-affinity
mistake).  Crucially this mis-placement leaves every logical CPU with at
most one task, so idle balancing does *not* correct it — only the
periodic balancer does, up to 250 ms later.  With HTT disabled there are
no siblings and the mechanism vanishes, reproducing the paper's
observation that the anomaly appears only with HTT and only for long
SMIs (Tables 4–5).
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, TYPE_CHECKING

from repro.simx.engine import Delay
from repro.simx.rate import WorkItem
from repro.machine.profile import WorkloadProfile
from repro.sched.task import Task, TaskState
from repro.sched.accounting import AccountingReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import LogicalCpu
    from repro.machine.node import Node

__all__ = ["Scheduler"]

#: Periodic load-balance interval (Linux rebalances every few hundred ms
#: at this machine size).
BALANCE_PERIOD_NS = 250_000_000

#: Latency of an idle-balance pull once a CPU goes idle next to a stacked one.
IDLE_BALANCE_NS = 2_000

#: Freeze length at which a post-SMM wake-up misplacement becomes
#: probability 1 (shorter freezes scale linearly: a 2 ms short SMI gives
#: p ≈ 0.7 %, a 105 ms long SMI p ≈ 35 %).
MISPLACE_SATURATION_NS = 300_000_000


class Scheduler:
    """Per-node scheduler.  Construct via :func:`repro.system.make_node`."""

    def __init__(self, node: "Node", seed: int = 0, enable_balancer: bool = True,
                 misplace_saturation_ns: int = MISPLACE_SATURATION_NS):
        self.node = node
        self.engine = node.engine
        self.rng = random.Random(seed)
        self.tasks: List[Task] = []
        self.accounting = AccountingReport(self)
        self.misplace_saturation_ns = misplace_saturation_ns
        self.misplacements = 0
        self.rebalances = 0
        self._rebalance_pending = False
        #: When set, each compute-segment placement/completion is written
        #: to the node timeline (task.place / task.done) so the trace
        #: exporter can build per-CPU tracks.  Off by default: table runs
        #: would otherwise accumulate one record per segment.
        self.trace_placements = False
        m = node.metrics
        if m is not None:
            self._m_placed = m.counter(
                "sched.segments_placed", "compute segments placed on a CPU")
            self._m_rebalances = m.counter("sched.rebalances")
            self._m_misplacements = m.counter(
                "sched.misplacements", "post-SMM waker-affinity mistakes")
            self._m_runnable = m.gauge(
                "sched.runnable", "segments resident across CPUs")
        else:
            self._m_placed = None
            self._m_rebalances = None
            self._m_misplacements = None
            self._m_runnable = None
        node.scheduler = self
        node.add_unfreeze_listener(self._on_smm_exit)
        for cpu in node.cpus:
            cpu.on_segment_done = self._segment_complete
            cpu.executor.pre_sync = self._make_account_hook(cpu)
        if enable_balancer:
            # Daemon: perpetual kernel work must not keep the engine alive.
            self._balancer_proc = self.engine.process(
                self._periodic_balancer(), name=f"{node.name}.balancer",
                gate=node, daemon=True,
            )

    # -- task lifecycle ----------------------------------------------------
    def create_task(
        self, name: str, profile: WorkloadProfile, affinity=None
    ) -> Task:
        """Create a task without starting it (two-phase startup lets the
        MPI launcher build a communicator over all rank tasks first)."""
        task = Task(self.node, self, name, profile, affinity)
        self.tasks.append(task)
        return task

    def start(self, task: Task, body) -> Task:
        """Start a created task.  ``body`` is the workload generator
        (already instantiated, e.g. ``app(rank_ctx)``)."""
        if task.proc is not None:
            raise RuntimeError(f"task {task.name} already started")
        task.started_ns = self.engine.now

        def wrapper():
            try:
                result = yield from body
            finally:
                task.state = TaskState.DONE
                task.finished_ns = self.engine.now
            return result

        task.proc = self.engine.process(wrapper(), name=task.name, gate=self.node)
        return task

    def spawn(
        self,
        body_factory,
        name: str,
        profile: WorkloadProfile,
        affinity=None,
    ) -> Task:
        """Create a task and start its process.  ``body_factory(task)``
        must return a generator (the workload body)."""
        task = self.create_task(name, profile, affinity)
        return self.start(task, body_factory(task))

    # -- placement ----------------------------------------------------------
    def start_segment(self, task: Task, item: WorkItem) -> None:
        """Place a new compute segment (called from Task.compute)."""
        cpu = self._pick_cpu(task)
        if cpu is None:
            raise RuntimeError(
                f"no online CPU satisfies affinity {task.affinity} on {self.node.name}"
            )
        node = self.node
        node.begin_rate_batch()
        try:
            node.sync()
            cpu.add_segment(item)
            task.cpu = cpu
            task.state = TaskState.RUNNING
            node.apply_rates()
        finally:
            node.end_rate_batch()
        if self._m_placed is not None:
            self._m_placed.value += 1
            self._m_runnable.inc()
        if self.trace_placements:
            self.node.timeline.record(
                self.engine.now, "task.place", self.node.name,
                task=task.name, cpu=cpu.index,
            )

    def _eligible_cpus(self, task: Task) -> List["LogicalCpu"]:
        return [
            c
            for c in self.node.cpus
            if c.state.online and (task.affinity is None or c.index in task.affinity)
        ]

    def _pick_cpu(self, task: Task) -> Optional["LogicalCpu"]:
        affinity = task.affinity
        cpus = self.node.cpus
        if affinity is None and not self.node._busy:
            # Whole node idle (the steady state of one-rank-per-node
            # sweeps, where this runs once per compute segment): every
            # candidate scores (0, 0, index) — the minimum is simply the
            # first online CPU, no 16-way key scan needed.
            for c in cpus:
                if c.state.online:
                    return c
            return None
        best = None
        best_key = None
        for c in cpus:
            state = c.state
            if not state.online:
                continue
            if affinity is not None and state.index not in affinity:
                continue
            sibling = state.sibling
            sib_busy = (
                sibling is not None
                and sibling.online
                and len(cpus[sibling.index].executor)
            )
            # (my load, sibling busy, index) — spread across physical
            # cores first, deterministic tie-break by cpu index.
            key = (len(c.executor), 1 if sib_busy else 0, state.index)
            if best_key is None or key < best_key:
                best, best_key = c, key
        return best

    def _segment_complete(self, item: WorkItem) -> None:
        task: Task = item.meta
        if self._m_runnable is not None:
            self._m_runnable.dec()
        if self.trace_placements:
            self.node.timeline.record(
                self.engine.now, "task.done", self.node.name, task=task.name,
            )
        task.cpu = None
        task.state = TaskState.BLOCKED
        # Survivors on this CPU (and HTT siblings) now deserve a larger
        # share — recompute rates.  Deferred to +0 ns because completion
        # fires from inside an executor sync; recomputing re-entrantly
        # would corrupt the integration in progress.  If the departure
        # left the whole node idle there is nothing to recompute: the
        # executor already evicted the item, so _busy is current, and a
        # no-op recompute would only burn an event slot.
        if self.node._busy:
            self.engine._post(0, self.node.recompute, (), False)
        # The departure may also have left an imbalance (this CPU idle
        # while a neighbour is stacked) — idle balance.
        self._maybe_idle_balance()

    # -- accounting hook -----------------------------------------------------
    def _make_account_hook(self, cpu: "LogicalCpu"):
        node = self.node

        def hook(dt_ns: int, cpu=cpu) -> None:
            k = len(cpu.executor)
            if k == 0:
                return
            share = dt_ns / k
            frozen = node.frozen
            for item in cpu.executor.items:
                item.meta.acct.add_window(share, frozen)

        return hook

    # -- balancing -------------------------------------------------------------
    def _periodic_balancer(self) -> Generator:
        while True:
            yield Delay(BALANCE_PERIOD_NS)
            self.rebalance()

    def _maybe_idle_balance(self) -> None:
        if self._rebalance_pending:
            return
        # A busy CPU is never offline (offlining with work resident
        # raises), so "some online CPU is idle" is a pure count check
        # and "some CPU is stacked" is a walk of the busy list only.
        node = self.node
        busy = node._busy
        stacked = False
        for c in busy:
            if len(c.executor) >= 2:
                stacked = True
                break
        if stacked and node.topology.n_online > len(busy):
            self._rebalance_pending = True
            self.engine.schedule(IDLE_BALANCE_NS, self._deferred_rebalance)

    def _deferred_rebalance(self) -> None:
        self._rebalance_pending = False
        if self.node.frozen:
            # Can't balance inside SMM; the exit path rebalances anyway.
            return
        self.rebalance()

    def rebalance(self) -> None:
        """Re-derive the greedy placement for all resident segments."""
        self.rebalances += 1
        if self._m_rebalances is not None:
            self._m_rebalances.value += 1
        items: List[WorkItem] = []
        for cpu in self.node._busy:
            items.extend(cpu.executor.items)
        if not items:
            return
        # Deterministic order: by task id.
        items.sort(key=lambda it: it.meta.tid)
        node = self.node
        node.begin_rate_batch()
        try:
            node.sync()
            for item in items:
                item.meta.cpu.remove_segment(item)
                item.meta.cpu = None
            for item in items:
                task = item.meta
                cpu = self._pick_cpu(task)
                cpu.add_segment(item)
                task.cpu = cpu
            node.apply_rates()
        finally:
            node.end_rate_batch()

    # -- post-SMM wake-up perturbation ---------------------------------------
    def _on_smm_exit(self) -> None:
        durations = self.node.smm.stats.durations_ns
        freeze_ns = durations[-1] if durations else 0
        p = min(1.0, freeze_ns / self.misplace_saturation_ns)
        if self.rng.random() < p:
            self._misplace_one()

    def _misplace_one(self) -> None:
        """Move one running task onto the idle HTT sibling of a busy core
        (a waker-affinity mistake during the post-SMM thundering herd)."""
        victims = [
            t for t in self.tasks if t.state is TaskState.RUNNING and t.cpu is not None
        ]
        if not victims:
            return
        # Candidate targets: online idle CPUs whose sibling is busy with a
        # task other than the victim.
        task = self.rng.choice(sorted(victims, key=lambda t: t.tid))
        targets = []
        for c in self.node.cpus:
            if not c.state.online or c.busy:
                continue
            sib = c.state.sibling
            if sib is None or not sib.online:
                continue
            sib_cpu = self.node.cpu(sib.index)
            if sib_cpu.busy and sib_cpu is not task.cpu:
                if task.affinity is not None and c.index not in task.affinity:
                    continue
                targets.append(c)
        if not targets:
            return  # HTT off (or no idle siblings): mechanism vanishes.
        target = self.rng.choice(targets)
        item = task.current_item
        if item is None:
            return
        node = self.node
        node.begin_rate_batch()
        try:
            node.sync()
            task.cpu.remove_segment(item)
            target.add_segment(item)
            task.cpu = target
            node.apply_rates()
        finally:
            node.end_rate_batch()
        self.misplacements += 1
        if self._m_misplacements is not None:
            self._m_misplacements.value += 1
        self.node.timeline.record(
            self.engine.now, "sched.misplace", self.node.name,
            task=task.name, cpu=target.index,
        )

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        """RNG stream, balance counters, and per-task placement plus the
        three accounting streams.  Tasks are captured by reference — the
        quiescent-window contract (no task created/destroyed in between)."""
        return {
            "rng_state": self.rng.getstate(),
            "misplacements": self.misplacements,
            "rebalances": self.rebalances,
            "rebalance_pending": self._rebalance_pending,
            "tasks": [
                [t.state.value, t.cpu.index if t.cpu is not None else None,
                 t.acct.kernel_ns, t.acct.true_ns, t.acct.stolen_ns,
                 t.acct.segments, t.acct.work_done]
                for t in self.tasks
            ],
            "_tasks": list(self.tasks),
        }

    def __restore__(self, state: dict) -> None:
        from repro.simx.errors import SnapshotError

        if state["_tasks"] != self.tasks:
            raise SnapshotError("task population changed since snapshot")
        self.rng.setstate(state["rng_state"])
        self.misplacements = state["misplacements"]
        self.rebalances = state["rebalances"]
        self._rebalance_pending = state["rebalance_pending"]
        for t, row in zip(self.tasks, state["tasks"]):
            t.state = TaskState(row[0])
            t.cpu = self.node.cpu(row[1]) if row[1] is not None else None
            t.acct.kernel_ns = row[2]
            t.acct.true_ns = row[3]
            t.acct.stolen_ns = row[4]
            t.acct.segments = row[5]
            t.acct.work_done = row[6]

    # -- queries -----------------------------------------------------------
    def running_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.state is TaskState.RUNNING]

    def evacuate(self, cpu_index: int) -> None:
        """Migrate all segments off a CPU (prelude to offlining it)."""
        cpu = self.node.cpu(cpu_index)
        items = list(cpu.executor.items)
        if not items:
            return
        node = self.node
        node.begin_rate_batch()
        try:
            node.sync()
            for item in items:
                cpu.remove_segment(item)
            for item in items:
                task = item.meta
                target = None
                for c in self._eligible_cpus(task):
                    if c.index == cpu_index:
                        continue
                    if target is None or c.n_tasks < target.n_tasks:
                        target = c
                if target is None:
                    raise RuntimeError("nowhere to evacuate task " + task.name)
                target.add_segment(item)
                task.cpu = target
            node.apply_rates()
        finally:
            node.end_rate_batch()
