"""The sysfs CPU-hotplug front-end used by the multithreaded methodology.

§IV.A: "we used the Linux *sysfs* interface to selectively offline
specific logical cores ...  (Offlining a core's HTT sibling while leaving
the physical core online causes the kernel to ignore the HTT sibling for
scheduling purposes.)"

This wrapper adds the safety step a real ``echo 0 > .../online`` implies:
tasks resident on the dying CPU are migrated away before it disappears.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["Sysfs"]


class Sysfs:
    """Hotplug control for one node."""

    def __init__(self, node: "Node"):
        self.node = node

    def set_online(self, cpu_index: int, online: bool) -> None:
        """Mirror of ``/sys/devices/system/cpu/cpuN/online``."""
        if not online and self.node.scheduler is not None:
            self.node.scheduler.evacuate(cpu_index)
        self.node.topology.set_online(cpu_index, online)

    def set_logical_cpus(self, k: int) -> None:
        """Bring the node to exactly ``k`` online logical CPUs using the
        paper's onlining order (primaries first, then HTT siblings)."""
        spec = self.node.spec
        ncores = spec.n_physical_cores
        desired = set(range(min(k, ncores)))
        desired |= set(range(ncores, ncores + max(0, k - ncores)))
        # Offline first (migrating work away), then online.
        for cpu in self.node.topology.cpus:
            if cpu.online and cpu.index not in desired:
                self.set_online(cpu.index, False)
        for cpu in self.node.topology.cpus:
            if not cpu.online and cpu.index in desired:
                self.set_online(cpu.index, True)

    def set_htt(self, enabled: bool) -> None:
        """BIOS-style HTT toggle (all slot-1 siblings)."""
        for cpu in self.node.topology.cpus:
            if cpu.thread_slot == 1:
                if cpu.online != enabled:
                    self.set_online(cpu.index, enabled)

    def online_count(self) -> int:
        return self.node.topology.n_online
