"""Typed failures of the simulated MPI layer.

These mirror the error taxonomy of fault-tolerant MPI proposals (ULFM):
an operation involving a dead peer raises :class:`RankFailedError`
rather than blocking forever, and a blocking operation bounded by a
timeout raises :class:`MpiTimeoutError` when the bound expires.  With no
fault plan loaded none of these can fire — the clean path never arms
timers and never marks ranks failed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.simx.errors import SimulationError

__all__ = [
    "MpiError",
    "RankFailedError",
    "MpiTimeoutError",
    "MpiCorruptionError",
    "JobAbortedError",
    "CorruptedPayload",
]


class MpiError(SimulationError):
    """Base class for failures surfacing through the MPI layer."""


class RankFailedError(MpiError):
    """An operation involved a peer rank that is known to have failed.

    Raised on a send to a dead rank, and thrown into pending receives
    (including ``ANY_SOURCE`` ones and those inside collective trees)
    when the failure is detected — so surviving ranks error out
    deterministically instead of deadlocking.
    """

    def __init__(self, rank: int, reason: str = ""):
        super().__init__(reason or f"rank {rank} failed")
        self.rank = rank


class MpiTimeoutError(MpiError):
    """A blocking operation exceeded its ``timeout_ns`` bound."""

    def __init__(self, op: str, timeout_ns: int):
        super().__init__(
            f"MPI {op} timed out after {timeout_ns / 1e9:g} simulated seconds")
        self.op = op
        self.timeout_ns = timeout_ns


class MpiCorruptionError(MpiError):
    """A received message carried a payload corrupted on the wire."""


class CorruptedPayload:
    """Wire-corruption marker wrapping the original payload.

    The link-fault injector substitutes this for a message's payload;
    :meth:`Rank.wait` detects it on receipt and raises
    :class:`MpiCorruptionError` — modeling an application-level checksum.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CorruptedPayload {self.original!r}>"


class JobAbortedError(MpiError):
    """An MPI job ended abnormally under injected faults.

    Carries the per-rank failure map (``failed``), the ranks that never
    finished because their node died (``hung``), and the injector's fault
    event log (``fault_events``) so harness layers can report *which*
    fault killed the job.
    """

    def __init__(
        self,
        name: str,
        failed: Optional[Dict[int, str]] = None,
        hung: Optional[List[int]] = None,
        fault_events: Optional[List[Dict[str, Any]]] = None,
    ):
        self.failed = dict(failed or {})
        self.hung = list(hung or [])
        self.fault_events = list(fault_events or [])
        parts = []
        if self.failed:
            shown = sorted(self.failed)[:8]
            parts.append(
                "failed ranks " + ", ".join(
                    f"{r}: {self.failed[r]}" for r in shown)
                + (" ..." if len(self.failed) > 8 else ""))
        if self.hung:
            parts.append(f"ranks never finished (dead node): {self.hung[:16]}")
        faults = sorted({e.get("fault", "?") for e in self.fault_events})
        if faults:
            parts.append("injected faults: " + ", ".join(faults))
        super().__init__(
            f"MPI job {name!r} aborted — " + ("; ".join(parts) or "unknown cause"))
