"""Cluster construction and the ``mpirun`` launcher.

Builds the paper's experimental platform: N Wyeast nodes (§III.A) on one
interconnect, each with its own scheduler, SMM controller, and —
critically — its own *independent* SMI source phase when noise is
enabled (DESIGN.md §5.3).

Rank placement follows mpirun's default block placement: with ``r`` ranks
per node, ranks ``0..r-1`` land on node 0, ``r..2r-1`` on node 1, and so
on — matching the paper's "1 or 4 MPI ranks per node" configurations
(where the tables' row index for the 4-per-node half counts *nodes*, so
row 16 means 64 total ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simx.engine import Engine
from repro.simx.timeline import Timeline
from repro.machine.node import Node
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import MachineSpec, WYEAST_SPEC
from repro.mpi.comm import Communicator, Rank
from repro.mpi.network import Network, NetworkSpec
from repro.core.smi import SmiDurations, SmiSource
from repro.system import make_node

__all__ = [
    "ClusterSpec",
    "Cluster",
    "JobResult",
    "PendingJob",
    "launch_mpi_job",
    "collect_mpi_job",
    "run_mpi_job",
]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the cluster."""

    n_nodes: int = 16
    machine: MachineSpec = WYEAST_SPEC
    network: NetworkSpec = field(default_factory=NetworkSpec)
    htt: bool = False  # the MPI study ran HTT "disabled or enabled ... on all nodes"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")


class Cluster:
    """A fresh engine + N wired nodes + interconnect."""

    def __init__(self, spec: ClusterSpec, seed: int = 0,
                 timeline: Optional[Timeline] = None, metrics=None):
        self.spec = spec
        self.engine = Engine(metrics=metrics)
        self.timeline = timeline if timeline is not None else Timeline()
        self.metrics = metrics
        self.network = Network(self.engine, spec.network, metrics=metrics)
        self.nodes: List[Node] = []
        self.smi_sources: List[SmiSource] = []
        #: a repro.faults.FaultInjector once attached; None on clean runs.
        self.faults = None
        #: a repro.obs.attr.AttrCapture once attached; None on clean runs.
        self.attr = None
        #: when True, communicators record ``mpi.wait`` timeline records
        #: (blocked receive spans) for the trace exporter.
        self.trace_waits = False
        for i in range(spec.n_nodes):
            node = make_node(
                self.engine,
                spec.machine,
                name=f"node{i}",
                timeline=self.timeline,
                seed=seed * 1009 + i,
                # A distinct boot offset per node so TSC values differ.
                boot_offset_ns=i * 37_000_000_000,
                metrics=metrics,
            )
            if not spec.htt:
                node.topology.set_htt(False)
            self.network.attach(node)
            self.nodes.append(node)

    def enable_smi(
        self,
        durations: Optional[SmiDurations],
        interval_jiffies: int = 1000,
        seed: int = 0,
        phase_spread_ns: Optional[int] = 400_000_000,
    ) -> None:
        """Attach one SMI source per node.  ``durations=None`` (SMM 0)
        attaches nothing.

        ``phase_spread_ns`` bounds the initial phase stagger across nodes.
        The paper loads the driver on every node at experiment start
        (a parallel-ssh-style rollout), so phases are *clustered*, not
        uniform over the whole interval: the default 400 ms spread is the
        value that reproduces the paper's amplification factors for
        tightly-synchronized codes (see EXPERIMENTS.md and the
        phase-alignment ablation in ``benchmarks/test_ablations.py``).
        Pass ``None`` for fully independent phases (uniform over the
        interval)."""
        if durations is None:
            return
        import random as _random

        rng = _random.Random(seed * 104729 + 17)
        interval_ns = interval_jiffies * 1_000_000
        for i, node in enumerate(self.nodes):
            if phase_spread_ns is None:
                phase = None  # SmiSource draws uniform over the interval
            else:
                phase = rng.randint(0, max(1, min(phase_spread_ns, interval_ns) - 1))
            self.smi_sources.append(
                SmiSource(
                    node, durations, interval_jiffies,
                    seed=seed * 7907 + i * 13, phase_ns=phase,
                )
            )

    def total_smm_time_s(self) -> float:
        return sum(n.smm.stats.total_ns for n in self.nodes) / 1e9


@dataclass
class JobResult:
    """Outcome of one MPI job."""

    nranks: int
    ranks_per_node: int
    #: value returned by each rank's body (NAS apps return their timed
    #: region in seconds).
    rank_results: List[object]
    #: job wall time: from launch to last rank exit (seconds).
    wall_s: float
    #: per-rank reported elapsed (populated when bodies return floats).
    elapsed_s: Optional[float] = None
    stats: Dict[str, float] = field(default_factory=dict)


@dataclass
class PendingJob:
    """A launched-but-not-collected clean-path MPI job: the state
    :func:`collect_mpi_job` needs to drive the engine to completion and
    assemble the :class:`JobResult`.  The launch/collect split is what
    lets the prefix-fork planner (:mod:`repro.runx.forkshare`) run the
    engine to a safe fork point *between* the two halves."""

    cluster: Cluster
    comm: Communicator
    tasks: List[object]
    done: object  # the job-complete Event
    t_launch: int
    nranks: int
    ranks_per_node: int
    name: str
    limit_s: float


def launch_mpi_job(
    cluster: Cluster,
    app: Callable[[Rank], object],
    nranks: int,
    ranks_per_node: int = 1,
    profile: Optional[WorkloadProfile] = None,
    name: str = "job",
    limit_s: float = 50_000.0,
) -> PendingJob:
    """The clean-path first half of :func:`run_mpi_job`: create the rank
    tasks and communicator, start every rank, and return without running
    the engine.  Clean path only — fault-armed clusters must go through
    :func:`run_mpi_job`."""
    from repro.machine.profile import COMPUTE_BOUND

    if cluster.faults is not None:
        raise ValueError("launch_mpi_job is the clean path; use run_mpi_job "
                         "for fault-armed clusters")
    if profile is None:
        profile = COMPUTE_BOUND
    needed_nodes = (nranks + ranks_per_node - 1) // ranks_per_node
    if needed_nodes > len(cluster.nodes):
        raise ValueError(
            f"{nranks} ranks at {ranks_per_node}/node need {needed_nodes} nodes; "
            f"cluster has {len(cluster.nodes)}"
        )
    engine = cluster.engine
    t_launch = engine.now
    tasks = []
    for r in range(nranks):
        node = cluster.nodes[r // ranks_per_node]
        tasks.append(node.scheduler.create_task(f"{name}.r{r}", profile))
    comm = Communicator(cluster, tasks)
    done = engine.event(name=f"{name}.done")
    remaining = {"n": nranks}

    def on_rank_done(_ev) -> None:
        remaining["n"] -= 1
        if remaining["n"] == 0 and not done.triggered:
            done.succeed()

    for r, task in enumerate(tasks):
        node = cluster.nodes[r // ranks_per_node]
        node.scheduler.start(task, app(comm.ranks[r]))
        task.proc.done_event.add_callback(on_rank_done)

    return PendingJob(
        cluster=cluster, comm=comm, tasks=tasks, done=done,
        t_launch=t_launch, nranks=nranks, ranks_per_node=ranks_per_node,
        name=name, limit_s=limit_s,
    )


def collect_mpi_job(job: PendingJob) -> JobResult:
    """The second half of the clean path: run the engine until every rank
    exits and assemble the :class:`JobResult`."""
    cluster = job.cluster
    engine = cluster.engine
    engine.run_until(job.done, limit_ns=int(job.limit_s * 1e9))
    if not job.done.triggered:
        raise RuntimeError(
            f"MPI job {job.name!r} did not finish within {job.limit_s} "
            "simulated seconds"
        )
    results = [t.proc.result for t in job.tasks]
    elapsed = None
    if results and all(isinstance(v, (int, float)) for v in results):
        elapsed = max(float(v) for v in results)
    elif results and all(isinstance(v, dict) and "elapsed_s" in v for v in results):
        elapsed = max(float(v["elapsed_s"]) for v in results)
    return JobResult(
        nranks=job.nranks,
        ranks_per_node=job.ranks_per_node,
        rank_results=results,
        wall_s=(engine.now - job.t_launch) / 1e9,
        elapsed_s=elapsed,
        stats={
            "messages": cluster.network.messages,
            "bytes": cluster.network.bytes_moved,
            "smm_time_s": cluster.total_smm_time_s(),
        },
    )


def run_mpi_job(
    cluster: Cluster,
    app: Callable[[Rank], object],
    nranks: int,
    ranks_per_node: int = 1,
    profile: Optional[WorkloadProfile] = None,
    name: str = "job",
    limit_s: float = 50_000.0,
    mpi_timeout_s: Optional[float] = None,
) -> JobResult:
    """Launch ``nranks`` instances of ``app`` and run the engine until all
    complete.  ``app(rank)`` must be a generator function (the rank body);
    whatever it returns lands in :attr:`JobResult.rank_results`.

    When the cluster has a :class:`repro.faults.FaultInjector` attached,
    blocking MPI waits are bounded by ``mpi_timeout_s`` (default: the
    injector's derived timeout), rank failures propagate through the
    communicator's detector, and an abnormal end raises
    :class:`repro.mpi.errors.JobAbortedError` instead of hanging or
    silently dropping dead ranks.  Without an injector this function is
    unchanged from the clean path (which is exactly
    :func:`launch_mpi_job` followed by :func:`collect_mpi_job`).
    """
    from repro.machine.profile import COMPUTE_BOUND

    if profile is None:
        profile = COMPUTE_BOUND
    faults = cluster.faults

    if faults is None:
        return collect_mpi_job(launch_mpi_job(
            cluster, app, nranks, ranks_per_node=ranks_per_node,
            profile=profile, name=name, limit_s=limit_s,
        ))

    needed_nodes = (nranks + ranks_per_node - 1) // ranks_per_node
    if needed_nodes > len(cluster.nodes):
        raise ValueError(
            f"{nranks} ranks at {ranks_per_node}/node need {needed_nodes} nodes; "
            f"cluster has {len(cluster.nodes)}"
        )
    engine = cluster.engine
    t_launch = engine.now
    tasks = []
    for r in range(nranks):
        node = cluster.nodes[r // ranks_per_node]
        tasks.append(node.scheduler.create_task(f"{name}.r{r}", profile))
    comm = Communicator(cluster, tasks)
    done = engine.event(name=f"{name}.done")
    remaining = {"n": nranks}

    from repro.mpi.errors import JobAbortedError

    if mpi_timeout_s is None:
        mpi_timeout_s = faults.mpi_timeout_s
    if mpi_timeout_s is not None:
        comm.timeout_ns = int(mpi_timeout_s * 1e9)
    failed: Dict[int, BaseException] = {}

    def check_done() -> None:
        # The job is over when every rank either finished or can never
        # finish: a rank whose node is dead (crashed or permanently
        # hung) is stuck forever, and waiting on it would run the
        # engine to its simulated-time limit for nothing.
        if done.triggered or remaining["n"] == 0:
            if not done.triggered:
                done.succeed()
            return
        for r, t in enumerate(tasks):
            p = t.proc
            if p is not None and p.alive and not t.node.dead:
                return
        done.succeed()

    def make_cb(r: int):
        def cb(ev) -> None:
            remaining["n"] -= 1
            if not ev.ok:
                failed[r] = ev.exception
                comm.mark_rank_failed(r, ev.exception)
            check_done()
        return cb

    for r, task in enumerate(tasks):
        node = cluster.nodes[r // ranks_per_node]
        node.scheduler.start(task, app(comm.ranks[r]))
        task.proc.done_event.add_callback(make_cb(r))

    # Daemon watchdog: catches the corner where *no* completion
    # callback can ever fire (every unfinished rank sits on a dead
    # node) without running the engine to its simulated-time limit.
    watchdog_ns = comm.timeout_ns or int(60e9)

    def watchdog() -> None:
        if done.triggered:
            return
        check_done()
        if not done.triggered:
            engine.schedule(watchdog_ns, watchdog, daemon=True)

    engine.schedule(watchdog_ns, watchdog, daemon=True)
    engine.run_until(done, limit_ns=int(limit_s * 1e9))
    stuck = [
        r for r, t in enumerate(tasks)
        if t.proc is not None and t.proc.alive
    ]
    if failed or stuck or not done.triggered:
        raise JobAbortedError(
            name,
            failed={r: f"{type(e).__name__}: {e}" for r, e in failed.items()},
            hung=stuck,
            fault_events=list(faults.events),
        )
    results = [t.proc.result for t in tasks]
    elapsed = None
    if results and all(isinstance(v, (int, float)) for v in results):
        elapsed = max(float(v) for v in results)
    elif results and all(isinstance(v, dict) and "elapsed_s" in v for v in results):
        elapsed = max(float(v["elapsed_s"]) for v in results)
    return JobResult(
        nranks=nranks,
        ranks_per_node=ranks_per_node,
        rank_results=results,
        wall_s=(engine.now - t_launch) / 1e9,
        elapsed_s=elapsed,
        stats={
            "messages": cluster.network.messages,
            "bytes": cluster.network.bytes_moved,
            "smm_time_s": cluster.total_smm_time_s(),
        },
    )
