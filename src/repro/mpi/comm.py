"""Message matching, ranks, and point-to-point communication.

Semantics (a faithful subset of MPI, shaped like mpi4py's lowercase API):

* **Eager buffered sends** — ``send`` returns once the local library work
  (overhead + copy) is done; the wire transfer proceeds asynchronously.
  This matches small/medium-message MPI behaviour; the rendezvous
  protocol for huge messages is not modeled (the paper's workloads
  exchange at most tens of MB, where eager + NIC serialization captures
  the timing).
* **Non-overtaking matching** — messages between a (source, dest) pair
  with equal tags are matched in send order (the per-rank
  :class:`repro.simx.resources.Store` scans oldest-first).
* ``ANY_SOURCE`` / ``ANY_TAG`` wildcards are supported.
* ``isend``/``irecv`` return :class:`Request` objects; ``wait`` blocks the
  calling rank's task.

Every CPU cost (library overhead, eager copy) is executed as *work* on
the rank's task, so it freezes with SMM, shares the CPU under
oversubscription, and shows up in the kernel's (mis-)accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.simx.engine import Event
from repro.simx.resources import Store
from repro.mpi.errors import (
    CorruptedPayload,
    MpiCorruptionError,
    MpiTimeoutError,
    RankFailedError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.cluster import Cluster
    from repro.sched.task import Task

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Request", "Rank", "Communicator"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Tag space reserved for collective algorithms (see collectives.py).
COLL_TAG_BASE = 1 << 20


@dataclass(frozen=True)
class Message:
    """One point-to-point message (envelope + optional payload)."""

    src: int
    dst: int
    tag: int
    nbytes: int
    payload: Any = None
    seq: int = 0


def _envelope_key(m: "Message"):
    """Mailbox index key: matching is by (source, tag) envelope."""
    return (m.src, m.tag)


class Request:
    """Handle for a non-blocking operation."""

    #: envelope + post time, stamped only under attribution capture or
    #: wait tracing (class-level defaults keep the clean path allocation-free).
    post_ns: Optional[int] = None
    post_src: int = ANY_SOURCE
    post_tag: int = ANY_TAG

    def __init__(self, event: Event, kind: str):
        self.event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        return self.event.triggered

    def test(self) -> Optional[Message]:
        """Non-blocking completion check: the message if done, else None."""
        if self.event.triggered and self.event.ok:
            return self.event.value
        return None


class Communicator:
    """A set of ranks with a private matching context."""

    _ids = itertools.count()

    def __init__(self, cluster: "Cluster", tasks: Sequence["Task"]):
        self.cluster = cluster
        self.engine = cluster.engine
        self.tasks = list(tasks)
        self.cid = next(Communicator._ids)
        self._mailboxes: List[Store] = [
            Store(
                self.engine,
                name=f"comm{self.cid}.rank{r}.mbox",
                key_fn=_envelope_key,
            )
            for r in range(len(tasks))
        ]
        self._send_seq = 0
        # Fault awareness: populated only when the owning cluster has a
        # FaultInjector attached (see repro.faults).  On the clean path
        # ``faults`` is None, ``_failed`` stays empty, ``timeout_ns`` stays
        # None, and no branch below changes behaviour.
        self.faults = getattr(cluster, "faults", None)
        # Attribution capture: a pure recorder (repro.obs.attr) that the
        # hooks below feed.  None on clean runs — every hook site guards
        # with ``is not None`` so the clean path pays one attribute test.
        self.attr = getattr(cluster, "attr", None)
        #: record ``mpi.wait`` timeline spans for the trace exporter.
        self.trace_waits = bool(getattr(cluster, "trace_waits", False))
        # Per-node rank ordinal (rank → position among its node's ranks),
        # used to assign per-rank wait tracks in trace exports.
        per_node: Dict[str, int] = {}
        self._lrank: List[int] = []
        for t in tasks:
            n = t.node.name
            self._lrank.append(per_node.get(n, 0))
            per_node[n] = per_node.get(n, 0) + 1
        #: default bound for blocking waits (per-call override wins); None
        #: disables timeouts entirely (no timer events are ever posted).
        self.timeout_ns: Optional[int] = None
        self._failed: Dict[int, BaseException] = {}
        #: untriggered receive events, tracked (only under faults) so a
        #: detected rank failure can error them out.
        self._pending_recvs: List[Tuple[int, int, Event]] = []
        self.ranks: List[Rank] = [Rank(self, r, t) for r, t in enumerate(tasks)]
        if self.attr is not None:
            self.attr.on_comm(self)

    @property
    def size(self) -> int:
        return len(self.tasks)

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        """Send-sequence counter plus every rank's mailbox (queued
        messages and matching waiters, by reference).  In-flight wire
        transfers need no capture of their own — they exist only as
        pending engine heap entries, which :meth:`Engine.snapshot`
        already owns."""
        return {
            "send_seq": self._send_seq,
            "n_pending_recvs": len(self._pending_recvs),
            "_mailboxes": [mbox.__snapshot__() for mbox in self._mailboxes],
            "_pending_recvs": list(self._pending_recvs),
        }

    def __restore__(self, state: dict) -> None:
        self._send_seq = state["send_seq"]
        for mbox, mstate in zip(self._mailboxes, state["_mailboxes"]):
            mbox.__restore__(mstate)
        self._pending_recvs[:] = state["_pending_recvs"]

    # -- wire interface ------------------------------------------------------
    def _inject(self, msg: Message) -> None:
        """Hand a message to the network; it lands in the destination's
        mailbox through the node gate."""
        src_node = self.tasks[msg.src].node
        dst_node = self.tasks[msg.dst].node
        mbox = self._mailboxes[msg.dst]
        faults = self.faults
        if faults is not None:
            # Link-fault hook: each message may be dropped (empty list),
            # duplicated, corrupted, or delayed.
            for m, extra_ns in faults.on_message(msg):
                self.cluster.network.transfer(
                    src_node, dst_node, m.nbytes,
                    (lambda mm=m: mbox.put(mm)),
                    extra_latency_ns=extra_ns,
                )
            return
        attr = self.attr
        if attr is not None:
            # Record when the message becomes *visible* (the callback runs
            # post node-gate, i.e. after any receiver-side SMM freeze).
            def deliver_observed(msg=msg, attr=attr, mbox=mbox) -> None:
                attr.on_arrival(msg.seq, self.engine.now)
                mbox.put(msg)

            self.cluster.network.transfer(
                src_node, dst_node, msg.nbytes, deliver_observed
            )
            return
        self.cluster.network.transfer(
            src_node, dst_node, msg.nbytes, lambda: mbox.put(msg)
        )

    def _match_async(self, dst: int, src: int, tag: int) -> Event:
        def pred(m: Message, src=src, tag=tag) -> bool:
            return (src == ANY_SOURCE or m.src == src) and (
                tag == ANY_TAG or m.tag == tag
            )

        # Fully-specified envelope (no wildcards): the predicate accepts
        # exactly the messages with this (src, tag), so the mailbox can
        # use its per-envelope index instead of scanning unexpected
        # messages posted by unrelated ranks/tags.
        key = (src, tag) if src != ANY_SOURCE and tag != ANY_TAG else None
        ev = self._mailboxes[dst].get_async(pred, key)
        if self._failed and not ev.triggered:
            # Receive posted *after* the source's failure was detected and
            # with no matching message already queued: fail it now (a
            # queued message from a since-dead rank is still delivered —
            # it made it onto the wire before the crash).
            if src == ANY_SOURCE:
                r = next(iter(self._failed))
                ev.fail(RankFailedError(
                    r, f"recv(ANY_SOURCE) on rank {dst}: peer rank {r} failed"))
            elif src in self._failed:
                ev.fail(RankFailedError(
                    src, f"recv on rank {dst}: peer rank {src} failed"))
        if self.faults is not None and not ev.triggered:
            self._pending_recvs.append((dst, src, ev))
        return ev

    # -- failure detection ----------------------------------------------------
    def mark_rank_failed(self, rank: int, exc: BaseException) -> None:
        """Record that ``rank`` died and propagate the failure into every
        pending receive that could be waiting on it (exact-source matches
        and ``ANY_SOURCE`` — the ULFM-style detector).  Collectives are
        built on these receives, so the failure cascades through their
        trees: every surviving rank's next wait on the dead peer errors
        out deterministically."""
        if rank in self._failed:
            return
        self._failed[rank] = exc
        pending, self._pending_recvs = self._pending_recvs, []
        for dst, src, ev in pending:
            if ev._ok is not None:
                continue  # completed (or already failed) — drop
            if src == rank or src == ANY_SOURCE:
                ev.fail(RankFailedError(
                    rank, f"recv on rank {dst}: peer rank {rank} failed"))
            else:
                self._pending_recvs.append((dst, src, ev))


class Rank:
    """Per-rank endpoint: the object an application body receives.

    All communication methods are generators — drive them with
    ``yield from`` inside the rank's task body.
    """

    def __init__(self, comm: Communicator, rank: int, task: "Task"):
        self.comm = comm
        self.rank = rank
        self.task = task
        self._coll_seq = 0
        self.sent_messages = 0
        self.sent_bytes = 0
        self.recv_messages = 0

    # -- convenience ------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    def now_ns(self) -> int:
        return self.task.now_ns()

    def compute(self, work_units: float, profile=None) -> Generator:
        """Application compute on this rank's task."""
        yield from self.task.compute(work_units, profile=profile)

    def _overhead(self, nbytes: int) -> float:
        spec = self.comm.cluster.network.spec
        return spec.sw_overhead_ops + spec.per_byte_ops * nbytes

    # -- point-to-point -----------------------------------------------------
    def send(self, dst: int, nbytes: int, payload: Any = None, tag: int = 0
             ) -> Generator:
        """Eager buffered send: local library cost, then fire and forget.

        Raises :class:`RankFailedError` when the destination is known dead
        (failure information is local — a rank learns of a peer's death
        through the communicator's detector, as under ULFM)."""
        if not (0 <= dst < self.size):
            raise ValueError(f"bad destination rank {dst}")
        failed = self.comm._failed
        if failed and dst in failed:
            raise RankFailedError(dst, f"send to failed rank {dst}")
        yield from self.task.compute(self._overhead(nbytes))
        self.comm._send_seq += 1
        msg = Message(self.rank, dst, tag, nbytes, payload, seq=self.comm._send_seq)
        attr = self.comm.attr
        if attr is not None:
            attr.on_send(msg, self.comm.engine.now)
        self.comm._inject(msg)
        self.sent_messages += 1
        self.sent_bytes += nbytes

    def isend(self, dst: int, nbytes: int, payload: Any = None, tag: int = 0
              ) -> Generator[Any, Any, Request]:
        """Non-blocking send.  With the eager protocol the local cost is
        still paid inline (as in real MPI, where the eager copy happens in
        the isend call); the returned request is already complete."""
        yield from self.send(dst, nbytes, payload, tag)
        ev = self.comm.engine.event(name="isend.done")
        ev.succeed(None)
        return Request(ev, "isend")

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a receive; returns immediately with a Request."""
        ev = self.comm._match_async(self.rank, src, tag)
        req = Request(ev, "irecv")
        if self.comm.attr is not None or self.comm.trace_waits:
            req.post_ns = self.comm.engine.now
            req.post_src = src
            req.post_tag = tag
        return req

    def wait(self, request: Request, timeout_ns: Optional[int] = None
             ) -> Generator[Any, Any, Message]:
        """Block until the request completes; for receives, pay the
        receive-side library cost and return the message.

        ``timeout_ns`` (default: the communicator's ``timeout_ns``) bounds
        the wait in simulated time; on expiry :class:`MpiTimeoutError` is
        raised instead of blocking forever.  With both None — the clean
        path — no timer is ever posted and the event sequence is
        unchanged."""
        comm = self.comm
        observing = comm.attr is not None or comm.trace_waits
        t_begin = comm.engine.now if observing else 0
        if timeout_ns is None:
            timeout_ns = comm.timeout_ns
        ev = request.event
        if timeout_ns is None or ev.triggered:
            msg = yield from self.task.wait(ev)
        else:
            engine = comm.engine
            timer = Event(engine, name="mpi.wait.timeout")
            # Daemon: an unexpired timer must not keep the engine alive.
            entry = engine._post(int(timeout_ns), timer.succeed, (None,), True)
            idx, msg = yield from self.task.wait_any([ev, timer])
            if idx == 1:
                raise MpiTimeoutError(request.kind, int(timeout_ns))
            engine._cancel_entry(entry)
        if observing and request.kind == "irecv":
            t_end = comm.engine.now
            if comm.attr is not None:
                comm.attr.on_wait(self.rank, t_begin, t_end, request, msg)
            if comm.trace_waits and t_end > t_begin:
                node = self.task.node
                node.timeline.record(
                    t_end, "mpi.wait", node.name,
                    rank=self.rank, lrank=comm._lrank[self.rank],
                    begin_ns=t_begin, dur_ns=t_end - t_begin,
                    cls=("coll" if request.post_tag >= COLL_TAG_BASE
                         else "p2p"),
                    src=(msg.src if msg is not None else request.post_src),
                )
        if request.kind == "irecv" and msg is not None:
            if type(msg.payload) is CorruptedPayload:
                raise MpiCorruptionError(
                    f"rank {self.rank} received corrupted message "
                    f"(src={msg.src}, tag={msg.tag}, {msg.nbytes} bytes)")
            yield from self.task.compute(self._overhead(msg.nbytes))
            self.recv_messages += 1
        return msg

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout_ns: Optional[int] = None) -> Generator[Any, Any, Message]:
        """Blocking receive (``timeout_ns`` as in :meth:`wait`)."""
        req = self.irecv(src, tag)
        msg = yield from self.wait(req, timeout_ns=timeout_ns)
        return msg

    def sendrecv(
        self,
        dst: int,
        nbytes: int,
        payload: Any = None,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> Generator[Any, Any, Message]:
        """Combined send+recv (deadlock-free: the send is eager)."""
        req = self.irecv(src, recv_tag)
        yield from self.send(dst, nbytes, payload, send_tag)
        msg = yield from self.wait(req)
        return msg

    # -- collectives (delegated; see collectives.py) -------------------------
    def _next_coll_tag(self) -> int:
        """Collective calls execute in program order on every rank (SPMD),
        so a per-rank sequence number yields matching tags cluster-wide."""
        self._coll_seq += 1
        return COLL_TAG_BASE + self._coll_seq

    def _coll(self, op: str, gen: Generator) -> Generator:
        """Drive one collective, marking the region for attribution so
        waits inside it carry the operation name.  Without a capture
        attached this is a plain ``yield from``."""
        attr = self.comm.attr
        if attr is None:
            result = yield from gen
            return result
        attr.on_coll_begin(self.rank, op)
        try:
            result = yield from gen
        finally:
            attr.on_coll_end(self.rank)
        return result

    def barrier(self) -> Generator:
        from repro.mpi.collectives import barrier

        yield from self._coll("barrier", barrier(self))

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 8) -> Generator:
        from repro.mpi.collectives import bcast

        result = yield from self._coll("bcast", bcast(self, value, root, nbytes))
        return result

    def reduce(self, value: Any, root: int = 0, nbytes: int = 8, op=None) -> Generator:
        from repro.mpi.collectives import reduce as _reduce

        result = yield from self._coll(
            "reduce", _reduce(self, value, root, nbytes, op))
        return result

    def allreduce(self, value: Any, nbytes: int = 8, op=None) -> Generator:
        from repro.mpi.collectives import allreduce

        result = yield from self._coll(
            "allreduce", allreduce(self, value, nbytes, op))
        return result

    def allgather(self, value: Any, nbytes: int = 8) -> Generator:
        from repro.mpi.collectives import allgather

        result = yield from self._coll(
            "allgather", allgather(self, value, nbytes))
        return result

    def alltoall(self, per_pair_nbytes: int, values: Optional[List[Any]] = None
                 ) -> Generator:
        from repro.mpi.collectives import alltoall

        result = yield from self._coll(
            "alltoall", alltoall(self, per_pair_nbytes, values))
        return result

    def scatter(self, values: Optional[List[Any]] = None, root: int = 0,
                nbytes: int = 8) -> Generator:
        from repro.mpi.collectives import scatter

        result = yield from self._coll(
            "scatter", scatter(self, values, root, nbytes))
        return result

    def gather(self, value: Any, root: int = 0, nbytes: int = 8) -> Generator:
        from repro.mpi.collectives import gather

        result = yield from self._coll(
            "gather", gather(self, value, root, nbytes))
        return result

    def reduce_scatter(self, values: List[Any], nbytes: int = 8, op=None
                       ) -> Generator:
        from repro.mpi.collectives import reduce_scatter

        result = yield from self._coll(
            "reduce_scatter", reduce_scatter(self, values, nbytes, op))
        return result

    def scan(self, value: Any, nbytes: int = 8, op=None) -> Generator:
        from repro.mpi.collectives import scan

        result = yield from self._coll("scan", scan(self, value, nbytes, op))
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Rank {self.rank}/{self.size} on {self.task.node.name}>"
