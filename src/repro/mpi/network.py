"""The cluster interconnect: an α–β model with NIC serialization.

Message cost between distinct nodes::

    t_deliver = rx_nic_end( tx_nic_end(now, n) + α , n )

where each NIC direction is a FIFO serializer of bandwidth β — all ranks
of a node share one NIC, which is what makes 4-ranks-per-node placements
"poor fits for the underlying platform" for communication-heavy codes
(the paper's observation about FT, §III.C): four ranks' worth of
all-to-all traffic funnels through a single link.

Intra-node messages bypass the NIC entirely (shared-memory transport at
``memcpy_bw``).

Delivery to the destination's MPI matching engine is routed through the
**node gate**: DMA lands the bytes during SMM, but the unexpected-message
queue and any blocked receiver only learn about them at SMM exit — one of
the paths by which a frozen node stalls its communication partners.

The default constants are calibrated against the paper's SMM-0 base times
(:mod:`repro.core.calibration`); they land near classic GbE + TCP figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.simx.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["NetworkSpec", "Nic", "Network"]


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect constants.

    ``latency_ns`` (α) — per-message one-way latency.
    ``bandwidth_bps`` (β) — NIC serialization bandwidth, bytes/second.
    ``memcpy_bps`` — intra-node shared-memory transport bandwidth.
    ``sw_overhead_ops`` — CPU work (work units) burned per send and per
    recv in the MPI library (affected by SMM like all compute).
    ``per_byte_ops`` — CPU copy cost per byte (eager-protocol memcpy).
    """

    latency_ns: int = 120_000
    bandwidth_bps: float = 110e6
    memcpy_bps: float = 3e9
    sw_overhead_ops: float = 30_000.0
    per_byte_ops: float = 0.4

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.bandwidth_bps <= 0 or self.memcpy_bps <= 0:
            raise ValueError("bad network constants")

    def wire_ns(self, nbytes: int) -> int:
        """Serialization time of ``nbytes`` on one NIC direction."""
        return int(nbytes * 1e9 / self.bandwidth_bps)

    def memcpy_ns(self, nbytes: int) -> int:
        return int(nbytes * 1e9 / self.memcpy_bps)


class Nic:
    """Per-node full-duplex NIC: two independent FIFO serializers."""

    def __init__(self, spec: NetworkSpec):
        self.spec = spec
        self._tx_free = 0
        self._rx_free = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    def occupy_tx(self, earliest: int, nbytes: int) -> int:
        """Serialize ``nbytes`` outbound starting no earlier than
        ``earliest``; returns the finish time."""
        start = max(earliest, self._tx_free)
        end = start + self.spec.wire_ns(nbytes)
        self._tx_free = end
        self.tx_bytes += nbytes
        return end

    def occupy_rx(self, earliest: int, nbytes: int) -> int:
        start = max(earliest, self._rx_free)
        end = start + self.spec.wire_ns(nbytes)
        self._rx_free = end
        self.rx_bytes += nbytes
        return end

    def busy_until(self) -> int:
        return max(self._tx_free, self._rx_free)

    def tx_queue_delay(self, now: int) -> int:
        """How long a message injected *now* would wait behind earlier
        traffic before its serialization starts."""
        return max(0, self._tx_free - now)

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        return {"tx_free": self._tx_free, "rx_free": self._rx_free,
                "tx_bytes": self.tx_bytes, "rx_bytes": self.rx_bytes}

    def __restore__(self, state: dict) -> None:
        self._tx_free = state["tx_free"]
        self._rx_free = state["rx_free"]
        self.tx_bytes = state["tx_bytes"]
        self.rx_bytes = state["rx_bytes"]


class Network:
    """The interconnect joining a cluster's nodes."""

    def __init__(self, engine: Engine, spec: NetworkSpec, metrics=None):
        self.engine = engine
        self.spec = spec
        self.messages = 0
        self.bytes_moved = 0
        #: When set, every transfer writes ``net.send``/``net.deliver``
        #: records to the endpoint nodes' timeline (the trace exporter
        #: turns these into flow arrows).  Off by default — large MPI
        #: runs move 10^5+ messages.
        self.trace = False
        self.metrics = metrics
        #: a repro.obs.attr.AttrCapture once attached (pure recording:
        #: it observes queueing delays and arrival times, never schedules).
        self.attr = None
        if metrics is not None:
            self._m_messages = metrics.counter("net.messages")
            self._m_bytes = metrics.counter("net.bytes")
            self._m_queue = metrics.histogram(
                "net.queue_delay_ns", "NIC tx serialization queue wait")
        else:
            self._m_messages = None
            self._m_bytes = None
            self._m_queue = None

    def attach(self, node: "Node") -> None:
        """Give a node its NIC."""
        node.nic = Nic(self.spec)

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        return {"messages": self.messages, "bytes_moved": self.bytes_moved}

    def __restore__(self, state: dict) -> None:
        self.messages = state["messages"]
        self.bytes_moved = state["bytes_moved"]

    def transfer(
        self,
        src: "Node",
        dst: "Node",
        nbytes: int,
        on_deliver: Callable[[], None],
        extra_latency_ns: int = 0,
    ) -> int:
        """Move ``nbytes`` from src to dst; ``on_deliver`` runs on the
        destination *through its gate* when the data is visible to host
        software.  Returns the scheduled physical arrival time.

        ``extra_latency_ns`` adds one-shot wire latency to this message
        only (an injected link-latency spike); the default 0 changes no
        arithmetic."""
        if nbytes < 0:
            raise ValueError("negative message size")
        self.messages += 1
        self.bytes_moved += nbytes
        now = self.engine.now
        if src is dst:
            t_done = now + 2_000 + self.spec.memcpy_ns(nbytes) + extra_latency_ns
            queue_ns = 0
        else:
            if src.nic is None or dst.nic is None:
                raise RuntimeError("node has no NIC; was it attached to the network?")
            queue_ns = src.nic.tx_queue_delay(now)
            t_tx = src.nic.occupy_tx(now, nbytes)
            t_arrive = t_tx + self.spec.latency_ns + extra_latency_ns
            t_done = dst.nic.occupy_rx(t_arrive, nbytes)
        if self._m_messages is not None:
            self._m_messages.value += 1
            self._m_bytes.value += nbytes
            self._m_queue.observe(queue_ns)
        if self.attr is not None:
            self.attr.on_transfer(queue_ns, t_done)
        if self.trace:
            msg_id = self.messages
            src.timeline.record(
                now, "net.send", src.name,
                id=msg_id, nbytes=nbytes, dst_node=dst.name,
            )

            def deliver_traced(sent_ns=now, src_name=src.name) -> None:
                dst.timeline.record(
                    self.engine.now, "net.deliver", dst.name,
                    id=msg_id, nbytes=nbytes, src_node=src_name,
                    sent_ns=sent_ns,
                )
                dst.deliver(on_deliver)

            self.engine.schedule_at(t_done, deliver_traced)
        else:
            self.engine.schedule_at(t_done, lambda: dst.deliver(on_deliver))
        return t_done
