"""Collective algorithms over simulated point-to-point messages.

Implementing the standard algorithms — rather than charging an analytic
collective cost — is what gives SMM noise its real propagation paths: a
frozen node delays exactly the tree edges / exchange rounds that touch
it, later rounds absorb or amplify the delay, and the collective's
completion becomes the max over staggered per-node noise (the mechanism
behind the paper's growth-with-scale results, Tables 1–3).

Algorithms (the classic MPICH choices for these sizes):

============  =========================================== ==============
collective    algorithm                                    rounds
============  =========================================== ==============
barrier       dissemination                                ⌈log₂ p⌉
bcast         binomial tree                                ⌈log₂ p⌉
reduce        binomial tree (leaves→root)                  ⌈log₂ p⌉
allreduce     recursive doubling (p = 2ᵏ), else
              reduce + bcast                               log₂ p
allgather     ring                                         p − 1
alltoall      pairwise exchange (XOR when p = 2ᵏ)          p − 1
============  =========================================== ==============

All functions are generators taking the calling :class:`Rank`; SPMD code
must invoke the same collectives in the same order on every rank (tags
are derived from a per-rank call counter, as noted in comm.py).

Payload semantics are *real*: ``reduce``/``allreduce`` apply ``op``
(default: ``+``) to the actual values, ``bcast`` returns the root's
value, ``alltoall``/``allgather`` return the gathered lists — so the unit
tests can verify algorithmic correctness, not just timing.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.mpi.comm import Rank

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "allgather",
    "alltoall",
    "scatter",
    "gather",
    "reduce_scatter",
    "scan",
]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def barrier(rk: Rank) -> Generator:
    """Dissemination barrier: in round k, send to (rank + 2^k) mod p and
    wait for (rank − 2^k) mod p.  ⌈log₂ p⌉ rounds; no root."""
    p = rk.size
    if p == 1:
        return
    tag = rk._next_coll_tag()
    k = 1
    while k < p:
        dst = (rk.rank + k) % p
        src = (rk.rank - k) % p
        yield from rk.send(dst, 4, None, tag)
        yield from rk.recv(src, tag)
        k <<= 1


def bcast(rk: Rank, value: Any = None, root: int = 0, nbytes: int = 8) -> Generator:
    """Binomial-tree broadcast; every rank returns the root's value."""
    p = rk.size
    if p == 1:
        return value
    tag = rk._next_coll_tag()
    vrank = (rk.rank - root) % p  # virtual rank with root at 0
    # Find the round in which this rank receives (highest set bit of vrank).
    if vrank != 0:
        recv_mask = 1
        while recv_mask * 2 <= vrank:
            recv_mask *= 2
        src = ((vrank - recv_mask) + root) % p
        msg = yield from rk.recv(src, tag)
        value = msg.payload
        mask = recv_mask * 2
    else:
        mask = 1
    while mask < p:
        if vrank + mask < p:
            dst = ((vrank + mask) + root) % p
            yield from rk.send(dst, nbytes, value, tag)
        mask *= 2
    return value


def reduce(
    rk: Rank,
    value: Any,
    root: int = 0,
    nbytes: int = 8,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Binomial-tree reduction; the root returns the combined value,
    other ranks return None."""
    p = rk.size
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    if p == 1:
        return value
    tag = rk._next_coll_tag()
    vrank = (rk.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            dst = ((vrank & ~mask) + root) % p
            yield from rk.send(dst, nbytes, acc, tag)
            break
        partner = vrank | mask
        if partner < p:
            msg = yield from rk.recv(((partner) + root) % p, tag)
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc if rk.rank == root else None


def allreduce(
    rk: Rank,
    value: Any,
    nbytes: int = 8,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Recursive doubling when p is a power of two; reduce+bcast otherwise."""
    p = rk.size
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    if p == 1:
        return value
    if _is_pow2(p):
        tag = rk._next_coll_tag()
        acc = value
        mask = 1
        while mask < p:
            partner = rk.rank ^ mask
            msg = yield from rk.sendrecv(
                partner, nbytes, acc, src=partner, send_tag=tag, recv_tag=tag
            )
            # Deterministic combine order: lower rank's value first.
            if partner < rk.rank:
                acc = op(msg.payload, acc)
            else:
                acc = op(acc, msg.payload)
            mask <<= 1
        return acc
    acc = yield from reduce(rk, value, 0, nbytes, op)
    acc = yield from bcast(rk, acc, 0, nbytes)
    return acc


def allgather(rk: Rank, value: Any, nbytes: int = 8) -> Generator:
    """Ring allgather: p−1 rounds, passing blocks around the ring.
    Returns the list of all ranks' values, index = rank."""
    p = rk.size
    out: List[Any] = [None] * p
    out[rk.rank] = value
    if p == 1:
        return out
    tag = rk._next_coll_tag()
    right = (rk.rank + 1) % p
    left = (rk.rank - 1) % p
    carry_idx = rk.rank
    carry_val = value
    for _ in range(p - 1):
        yield from rk.send(right, nbytes, (carry_idx, carry_val), tag)
        msg = yield from rk.recv(left, tag)
        carry_idx, carry_val = msg.payload
        out[carry_idx] = carry_val
    return out


def scatter(
    rk: Rank, values: Optional[List[Any]] = None, root: int = 0, nbytes: int = 8
) -> Generator:
    """Linear scatter from the root (MPI_Scatter: root sends block i to
    rank i).  Returns this rank's block."""
    p = rk.size
    tag = rk._next_coll_tag()
    if rk.rank == root:
        if values is None or len(values) != p:
            raise ValueError("root must supply one value per rank")
        for dst in range(p):
            if dst == root:
                continue
            yield from rk.send(dst, nbytes, values[dst], tag)
        return values[root]
    msg = yield from rk.recv(root, tag)
    return msg.payload


def gather(rk: Rank, value: Any, root: int = 0, nbytes: int = 8) -> Generator:
    """Linear gather to the root.  Root returns the list (index = rank);
    others return None."""
    p = rk.size
    tag = rk._next_coll_tag()
    if rk.rank == root:
        out: List[Any] = [None] * p
        out[root] = value
        for _ in range(p - 1):
            msg = yield from rk.recv(tag=tag)
            out[msg.src] = msg.payload
        return out
    yield from rk.send(root, nbytes, value, tag)
    return None


def reduce_scatter(
    rk: Rank,
    values: List[Any],
    nbytes: int = 8,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Reduce-scatter: element i of the combined vector lands on rank i.

    Implemented as reduce-to-root + scatter (the simple MPICH fallback);
    ``values`` must have one entry per rank.
    """
    p = rk.size
    if len(values) != p:
        raise ValueError("values must have one entry per rank")
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    if p == 1:
        return values[0]
    vecop = lambda a, b: [op(x, y) for x, y in zip(a, b)]  # noqa: E731
    combined = yield from reduce(rk, values, 0, nbytes * p, vecop)
    mine = yield from scatter(rk, combined, root=0, nbytes=nbytes)
    return mine


def scan(
    rk: Rank,
    value: Any,
    nbytes: int = 8,
    op: Optional[Callable[[Any, Any], Any]] = None,
) -> Generator:
    """Inclusive prefix scan (MPI_Scan) via the linear pipeline: rank i
    receives the prefix of 0..i−1, combines, forwards to i+1."""
    p = rk.size
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    tag = rk._next_coll_tag()
    acc = value
    if rk.rank > 0:
        msg = yield from rk.recv(rk.rank - 1, tag)
        acc = op(msg.payload, value)
    if rk.rank < p - 1:
        yield from rk.send(rk.rank + 1, nbytes, acc, tag)
    return acc


def alltoall(
    rk: Rank, per_pair_nbytes: int, values: Optional[List[Any]] = None
) -> Generator:
    """Pairwise-exchange all-to-all.

    ``per_pair_nbytes`` is the block each rank sends to each other rank
    (FT's transpose sends ``total_bytes / p²`` per pair).  With p a power
    of two, round r exchanges with ``rank XOR r`` (perfectly matched
    pairs); otherwise a shifted ring send/recv schedule is used.
    Returns the list of received payloads (index = source rank).
    """
    p = rk.size
    if values is not None and len(values) != p:
        raise ValueError("values must have one entry per rank")
    out: List[Any] = [None] * p
    out[rk.rank] = values[rk.rank] if values is not None else None
    if p == 1:
        return out
    tag = rk._next_coll_tag()
    if _is_pow2(p):
        for r in range(1, p):
            partner = rk.rank ^ r
            payload = values[partner] if values is not None else None
            msg = yield from rk.sendrecv(
                partner, per_pair_nbytes, payload,
                src=partner, send_tag=tag, recv_tag=tag,
            )
            out[partner] = msg.payload
    else:
        for r in range(1, p):
            dst = (rk.rank + r) % p
            src = (rk.rank - r) % p
            payload = values[dst] if values is not None else None
            req = rk.irecv(src, tag)
            yield from rk.send(dst, per_pair_nbytes, payload, tag)
            msg = yield from rk.wait(req)
            out[src] = msg.payload
    return out
