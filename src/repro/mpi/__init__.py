"""repro.mpi — a simulated MPI over the discrete-event cluster.

The API deliberately mirrors mpi4py's lowercase, object-passing layer
(``send/recv/isend/irecv``, ``bcast/reduce/allreduce/alltoall/barrier``) —
the idiomatic Python MPI surface — but executes on simulated nodes and a
simulated interconnect, with collectives implemented *algorithmically*
(binomial trees, recursive doubling, pairwise exchange, dissemination)
over simulated point-to-point messages.  That structural fidelity is what
lets SMM freezes propagate through synchronization chains the way they do
on the paper's cluster (DESIGN.md §2).

* :mod:`network` — α–β interconnect with per-node NIC serialization.
* :mod:`comm` — message matching, ranks, point-to-point, requests.
* :mod:`collectives` — the collective algorithms.
* :mod:`cluster` — node farm construction and the ``mpirun`` launcher.
"""

from repro.mpi.network import Network, NetworkSpec, Nic
from repro.mpi.comm import Communicator, Message, Rank, Request, ANY_SOURCE, ANY_TAG
from repro.mpi.cluster import Cluster, ClusterSpec, JobResult, run_mpi_job

__all__ = [
    "Network",
    "NetworkSpec",
    "Nic",
    "Communicator",
    "Message",
    "Rank",
    "Request",
    "ANY_SOURCE",
    "ANY_TAG",
    "Cluster",
    "ClusterSpec",
    "JobResult",
    "run_mpi_job",
]
