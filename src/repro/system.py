"""Composition helpers: build fully-wired simulated machines.

``machine`` (hardware) and ``sched`` (OS) are kept import-independent;
this module is the one place that assembles a bootable node — topology,
caches, clocks, SMM, interrupts, scheduler, sysfs — the way examples,
experiments, and the MPI cluster builder consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simx.engine import Engine
from repro.simx.timeline import Timeline
from repro.machine.node import Node
from repro.machine.topology import MachineSpec, R410_SPEC, WYEAST_SPEC
from repro.sched.scheduler import Scheduler
from repro.sched.sysfs import Sysfs

__all__ = ["SimulatedMachine", "make_node", "make_machine"]


@dataclass
class SimulatedMachine:
    """A bootable node bundle: hardware + OS + control interfaces."""

    engine: Engine
    node: Node
    scheduler: Scheduler
    sysfs: Sysfs
    timeline: Timeline


def make_node(
    engine: Engine,
    spec: MachineSpec,
    name: str = "node0",
    timeline: Optional[Timeline] = None,
    seed: int = 0,
    enable_balancer: bool = True,
    boot_offset_ns: int = 0,
    metrics=None,
) -> Node:
    """Build one node with its scheduler attached."""
    node = Node(engine, spec, name=name, timeline=timeline,
                boot_offset_ns=boot_offset_ns, metrics=metrics)
    Scheduler(node, seed=seed, enable_balancer=enable_balancer)
    return node


def make_machine(
    spec: MachineSpec = R410_SPEC,
    seed: int = 0,
    enable_balancer: bool = True,
    timeline: Optional[Timeline] = None,
    metrics=None,
) -> SimulatedMachine:
    """Fresh engine + one node: the standalone-machine setup used by the
    multithreaded experiments (§IV).  Pass a
    :class:`repro.obs.metrics.MetricsRegistry` as ``metrics`` to collect
    engine/SMM/scheduler counters for the run."""
    engine = Engine(metrics=metrics)
    tl = timeline if timeline is not None else Timeline()
    node = make_node(engine, spec, name="node0", timeline=tl, seed=seed,
                     enable_balancer=enable_balancer, metrics=metrics)
    return SimulatedMachine(engine, node, node.scheduler, Sysfs(node), tl)
