"""Advisory single-writer locks for on-disk run state.

Two sweep runners (or a runner and the serve daemon) pointed at the same
output path would interleave journal records — each one individually
well-formed, collectively garbage.  The failure is silent: both runs
"succeed" and the resulting journal resumes into a chimera.  The guard
here makes that failure loud and immediate instead: the second writer
gets a typed :class:`LockHeldError` naming who holds the lock, and
nothing has been written.

The lock is ``flock(2)`` on a sidecar file, which gives the two
properties a crash-safe system needs:

* **Released by death.**  A SIGKILL'd holder releases the lock the
  instant its file descriptors close; no stale-pidfile heuristics, no
  manual cleanup step before a restart can proceed.
* **Advisory.**  Readers (``--resume``, status probes) never touch it.

The lock file itself is never unlinked: removing it would let a third
process create a *new* inode and lock that while a second process still
holds ``flock`` on the old one — two "exclusive" holders.  A leftover
``.lock`` file is inert and a few bytes.
"""

from __future__ import annotations

import errno
import json
import os
import socket
from typing import Optional

__all__ = ["LockHeldError", "SingleWriterLock"]

try:  # pragma: no cover — always available on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX fallback: no locking
    fcntl = None  # type: ignore[assignment]


class LockHeldError(RuntimeError):
    """Another live process holds the single-writer lock."""

    def __init__(self, path: str, holder: Optional[dict] = None):
        self.path = path
        self.holder = holder or {}
        who = ""
        if self.holder.get("pid"):
            who = (f" (held by pid {self.holder['pid']}"
                   f" on {self.holder.get('host', '?')})")
        super().__init__(
            f"{path} is locked by another writer{who}; two concurrent "
            "writers on the same output would interleave records")


class SingleWriterLock:
    """``flock``-based mutual exclusion on ``path`` (non-blocking).

    Usable as a context manager; :meth:`acquire` is idempotent while
    held and raises :class:`LockHeldError` if any other process (or any
    other open descriptor) holds the lock.
    """

    def __init__(self, path: str):
        self.path = path
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "SingleWriterLock":
        if self._fd is not None:
            return self
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError as exc:
                    if exc.errno in (errno.EACCES, errno.EAGAIN):
                        raise LockHeldError(
                            self.path, self._read_holder(fd)) from None
                    raise
            # Best-effort breadcrumb for the error message the *next*
            # contender sees; correctness never depends on it.
            os.ftruncate(fd, 0)
            os.write(fd, json.dumps(
                {"pid": os.getpid(), "host": socket.gethostname()},
                separators=(",", ":")).encode())
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        return self

    @staticmethod
    def _read_holder(fd: int) -> Optional[dict]:
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            blob = os.read(fd, 4096)
            rec = json.loads(blob.decode() or "{}")
            return rec if isinstance(rec, dict) else None
        except (OSError, ValueError):
            return None

    def release(self) -> None:
        """Drop the lock (idempotent).  Closing the fd releases the
        ``flock``; the sidecar file stays behind on purpose (see the
        module docstring)."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "SingleWriterLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
