"""repro.runx — resilient sweep execution.

The paper's protocol is a large cell matrix (five tables × three SMI
classes × repetitions; two figures sweeping 30+ intervals per CPU
configuration).  This package runs such a matrix as isolated,
serializable units of work so that one crashing, hanging, or diverging
cell costs one cell — not the sweep:

* :mod:`repro.runx.spec` — JSON-able :class:`CellSpec`/:class:`CellResult`
  with position-derived seeds (parallel == serial, bit for bit);
* :mod:`repro.runx.cells` — the executor registry worker subprocesses use;
* :mod:`repro.runx.runner` — :class:`SweepRunner`: subprocess crash
  isolation, watchdog timeouts, bounded deterministic retries, ``jobs``-way
  parallelism;
* :mod:`repro.runx.journal` — fsync'd per-cell checkpoints and the atomic
  finalize/resume protocol behind ``repro-smm <cmd> --resume``;
* :mod:`repro.runx.lock` — the advisory single-writer lock that makes two
  concurrent writers on one output path fail fast instead of interleave;
* :mod:`repro.runx.chaos` — the fault-injection harness (kill / hang /
  corrupt / flake plans) CI uses to prove all of the above.
"""

from repro.runx.journal import (
    Journal,
    iter_records,
    load_resume,
    part_path,
    repair_torn_tail,
)
from repro.runx.lock import LockHeldError, SingleWriterLock
from repro.runx.runner import SweepRunner
from repro.runx.spec import (
    FAILED,
    FAILED_IN_SIM,
    OK,
    CellResult,
    CellSpec,
    attempt_seed,
)

__all__ = [
    "CellSpec",
    "CellResult",
    "SweepRunner",
    "Journal",
    "LockHeldError",
    "SingleWriterLock",
    "load_resume",
    "part_path",
    "repair_torn_tail",
    "iter_records",
    "attempt_seed",
    "OK",
    "FAILED",
    "FAILED_IN_SIM",
]
