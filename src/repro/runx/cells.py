"""Cell executors: the functions a :class:`~repro.runx.spec.CellSpec` names.

Each executor takes ``(params, seed, metrics=None)`` and returns a
JSON-able payload dict.  Executors are looked up by short registry name
or by ``"module:function"`` dotted path (the escape hatch tests and
extensions use), so a worker subprocess can reconstruct the call from
nothing but the spec JSON.

The executors here wrap the same application runners the legacy serial
builders call, with the same seed derivations — which is what makes runx
output bit-identical to the in-process path.
"""

from __future__ import annotations

import importlib
import time
from typing import Any, Callable, Dict, Optional

from repro.core.experiment import SMM_SEED_STRIDE, rep_seed, run_repeated

__all__ = ["resolve", "run_cell", "REGISTRY"]

CellFn = Callable[..., Dict[str, Any]]


# -- executors ----------------------------------------------------------------

def nas_cell(params: Dict, seed: int, metrics=None) -> Dict:
    """One (config, smm) cell of Tables 1–5: ``reps`` repetitions, averaged
    downstream.  ``{"values": null}`` marks an infeasible configuration
    (the tables' "-"), which is a legitimate result, not a failure.

    When the spec carries ``params["faults"]`` (rule dicts injected by the
    harness's ``--fault-plan`` rewrite) the repetitions run with a fresh
    seeded :class:`~repro.faults.FaultInjector` each, and a run killed by
    its faults raises :class:`~repro.faults.FaultedRunError` so the runner
    records the cell ``failed-in-sim``.  Without faults this is exactly
    the legacy path.

    When the spec carries ``params["attr"]`` (the harness's ``--attr``
    rewrite) each noisy cell additionally runs the attribution engine and
    attaches the resulting ``attribution`` report to the payload —
    omitted for infeasible and zero-SMI cells.  The capture layer is
    passive, so the averaged ``values`` stay bit-identical to a sweep
    without ``--attr``; see :func:`_nas_cell_attr` for how an attributed
    sweep shares its zero-SMI work across cells.
    """
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    cfg = NasConfig(
        params["bench"], NasClass(params["cls"]), nodes=params["nodes"],
        ranks_per_node=params["rpn"], htt=params.get("htt", False),
    )
    interval = int(params.get("interval", 1000))
    fault_rules = params.get("faults")
    if fault_rules:
        return _nas_cell_faulted(cfg, params, seed, metrics, fault_rules)
    if params.get("attr"):
        return _nas_cell_attr(cfg, params, seed, metrics)
    if metrics is None:
        # Warmup-prefix sharing (repro.runx.forkshare): interval-sweep
        # cells fork a shared warm prefix instead of replaying it.  Any
        # ineligibility falls through to the cold loop below, which the
        # forked values are byte-identical to (the fork-identity tests).
        from repro.runx.forkshare import forked_nas_values

        fv = forked_nas_values(params, seed)
        if fv is not None:
            return {"values": fv}
    m = run_repeated(
        lambda s: run_nas_config(cfg, smm=params["smm"], seed=s,
                                 interval_jiffies=interval,
                                 metrics=metrics),
        reps=params["reps"],
        base_seed=seed,
    )
    return {"values": m.values if m is not None else None}


def _nas_cell_attr(cfg, params: Dict, seed: int, metrics) -> Dict:
    """The attributed twin of :func:`nas_cell`'s repetition loop, built
    around the shared-baseline store (:mod:`repro.obs.attr.baseline`).

    The table harnesses derive cell seeds as ``smm_cell_seed(sweep_seed,
    smm)`` — a fixed stride per SMI class — so subtracting the stride
    recovers the sweep's SMM-0 column seed.  That seed is the canonical
    baseline key every SMI class of one configuration shares: the
    zero-SMI simulation is seed-deterministic (pinned by
    ``tests/obs/test_attr_baseline.py``), so the shared run is
    byte-identical to the per-cell replays it replaces.  Concretely:

    * an ``smm == 0`` cell runs its (identical) repetitions once, with
      capture attached, and publishes the profile to the store;
    * a noisy cell reuses its *first repetition* as the attribution
      capture (the capture layer is passive) and differences against the
      stored baseline — on a hit it runs zero extra simulations.

    A quick attributed table sweep thus runs 3 simulations per
    (class, row, rpn) group where it used to run 7.
    """
    from repro.apps.nas.study import run_nas_config
    from repro.obs.attr import attribute_cell
    from repro.obs.attr.baseline import (
        BaselineProfile, baseline_digest, global_store)
    from repro.obs.attr.capture import AttrCapture
    from repro.obs.attr.profile import build_profile
    from repro.simx.timeline import Timeline

    smm = params["smm"]
    reps = params["reps"]
    if not smm:
        # The SMM-0 column *is* the baseline: one capture-enabled run
        # serves this cell's repetitions (identical by determinism) and
        # seeds the store for every noisy class of this configuration.
        store = global_store()
        digest = baseline_digest(
            cfg.bench, cfg.cls.value, cfg.nodes, cfg.ranks_per_node,
            cfg.htt, seed)
        prof = store.get(digest)
        v = prof.elapsed_app_s if prof is not None else None
        if v is None:
            cap = AttrCapture(metrics=metrics)
            v = run_nas_config(cfg, smm=0, seed=rep_seed(seed, 0),
                               timeline=Timeline(), metrics=metrics,
                               attr=cap)
            if v is None:
                return {"values": None}
            store.put(digest, BaselineProfile.from_profile(
                build_profile(cap)))
            if metrics is not None:
                metrics.counter(
                    "attr.baseline.misses", "baseline runs simulated").inc()
        elif metrics is not None:
            metrics.counter(
                "attr.baseline.hits",
                "baseline runs satisfied from the shared store").inc()
        return {"values": [v] * reps}

    cap = AttrCapture(metrics=metrics)
    timeline = Timeline()

    def _rep(s: int) -> Optional[float]:
        if s == rep_seed(seed, 0):
            return run_nas_config(cfg, smm=smm, seed=s, metrics=metrics,
                                  timeline=timeline, attr=cap)
        return run_nas_config(cfg, smm=smm, seed=s, metrics=metrics)

    m = run_repeated(_rep, reps=reps, base_seed=seed)
    payload: Dict[str, Any] = {"values": m.values if m is not None else None}
    if m is not None:
        a = attribute_cell(
            params["bench"], cls=params["cls"], nodes=params["nodes"],
            rpn=params["rpn"], smm=smm,
            seed=rep_seed(seed, 0), htt=params.get("htt", False),
            metrics=metrics,
            baseline_seed=seed - SMM_SEED_STRIDE * smm,
            noisy_capture=cap, noisy_timeline=timeline,
        )
        if a is not None:
            payload["attribution"] = a.report
    return payload


def _nas_cell_faulted(cfg, params: Dict, seed: int, metrics, fault_rules) -> Dict:
    """The faulted twin of :func:`nas_cell`'s repetition loop: same rep
    seeds, one injector per repetition (so every rep replays the same plan
    deterministically), typed escalation to ``failed-in-sim``."""
    from repro.apps.nas.study import run_nas_config
    from repro.faults import FaultedRunError, FaultInjector
    from repro.mpi.errors import MpiError

    values = []
    events: list = []
    suppressed = 0
    for r in range(params["reps"]):
        s = rep_seed(seed, r)
        inj = FaultInjector.from_rules(fault_rules, seed=s, metrics=metrics)
        try:
            v = run_nas_config(cfg, smm=params["smm"], seed=s,
                               metrics=metrics, faults=inj)
        except (MpiError, AssertionError, RuntimeError) as exc:
            events.extend(inj.events)
            suppressed += inj.suppressed
            if events:
                raise FaultedRunError(
                    f"{cfg.label} rep {r + 1}/{params['reps']}: "
                    f"{type(exc).__name__}: {exc}",
                    events=events,
                ) from exc
            raise  # a real bug, not an injected fault: let retries happen
        events.extend(inj.events)
        suppressed += inj.suppressed
        if inj.fatal:
            # A crash/hang fired yet the run returned — e.g. every rank
            # finished before the fault landed.  Treat it as faulted
            # anyway: the cell's value is not comparable to clean cells.
            raise FaultedRunError(
                f"{cfg.label} rep {r + 1}/{params['reps']}: fatal fault "
                "fired during run", events=events)
        if v is None:
            return {"values": None}
        values.append(v)
    payload: Dict[str, Any] = {"values": values}
    if events:
        payload["fault_events"] = events
        if suppressed:
            payload["fault_suppressed"] = suppressed
    return payload


def _faulted_machine_runner(fault_rules, seed: int, metrics):
    """Single-machine fault shim for the figure cells: returns
    ``(call, events)`` where ``call(run)`` executes ``run(machine)`` on a
    fresh fault-armed machine and escalates fault-killed runs to
    :class:`~repro.faults.FaultedRunError`.  A fresh machine/injector pair
    per call keeps each sub-run's fault timing identical to a standalone
    run with the same seed."""
    from repro.faults import FaultedRunError, FaultInjector
    from repro.machine.topology import R410_SPEC
    from repro.system import make_machine

    events: list = []

    def call(run):
        inj = FaultInjector.from_rules(fault_rules, seed=seed, metrics=metrics)
        machine = make_machine(R410_SPEC, seed=seed, metrics=metrics)
        inj.attach_node(machine.node)
        try:
            result = run(machine)
        except Exception as exc:
            events.extend(inj.events)
            if inj.events:
                raise FaultedRunError(
                    f"{type(exc).__name__}: {exc}", events=events) from exc
            raise
        events.extend(inj.events)
        if inj.fatal:
            # Crashed workers still fire their done callbacks, so a dead
            # node can look "finished" — the injector's log is the truth.
            raise FaultedRunError(
                "fatal fault (node crash/hang) fired during run",
                events=events)
        return result

    return call, events


def convolve_line_cell(params: Dict, seed: int, metrics=None) -> Dict:
    """One Figure-1 left-panel line: the no-SMI baseline plus the long-SMI
    interval sweep for one (config, cpu-count)."""
    from repro.apps.convolve import run_convolve
    from repro.core.smi import SmiProfile

    config = _convolve_config(params["config"])
    k = params["cpus"]
    fault_rules = params.get("faults")
    if fault_rules:
        call, events = _faulted_machine_runner(fault_rules, seed, metrics)
        baseline = call(lambda m: run_convolve(
            config, k, seed=seed, metrics=metrics, machine=m)).elapsed_s
        points = []
        for iv in params["intervals_ms"]:
            r = call(lambda m, iv=iv: run_convolve(
                config, k, smi_durations=SmiProfile.LONG,
                smi_interval_jiffies=iv, seed=seed, metrics=metrics,
                machine=m))
            points.append([iv, r.elapsed_s])
        out: Dict[str, Any] = {"baseline": baseline, "points": points}
        if events:
            out["fault_events"] = events
        return out
    baseline = run_convolve(config, k, seed=seed, metrics=metrics).elapsed_s
    points = []
    for iv in params["intervals_ms"]:
        r = run_convolve(
            config, k, smi_durations=SmiProfile.LONG,
            smi_interval_jiffies=iv, seed=seed, metrics=metrics,
        )
        points.append([iv, r.elapsed_s])
    return {"baseline": baseline, "points": points}


def convolve_run_cell(params: Dict, seed: int, metrics=None) -> Dict:
    """One Figure-1 right-panel repetition: time vs CPUs at 50 ms."""
    from repro.apps.convolve import run_convolve
    from repro.core.smi import SmiProfile

    config = _convolve_config(params["config"])
    fault_rules = params.get("faults")
    if fault_rules:
        call, events = _faulted_machine_runner(fault_rules, seed, metrics)
        points = []
        for k in params["cpus"]:
            r = call(lambda m, k=k: run_convolve(
                config, k, smi_durations=SmiProfile.LONG,
                smi_interval_jiffies=params.get("interval_ms", 50),
                seed=seed, metrics=metrics, machine=m))
            points.append([k, r.elapsed_s])
        out: Dict[str, Any] = {"points": points}
        if events:
            out["fault_events"] = events
        return out
    points = []
    for k in params["cpus"]:
        r = run_convolve(
            config, k, smi_durations=SmiProfile.LONG,
            smi_interval_jiffies=params.get("interval_ms", 50),
            seed=seed, metrics=metrics,
        )
        points.append([k, r.elapsed_s])
    return {"points": points}


def unixbench_cell(params: Dict, seed: int, metrics=None) -> Dict:
    """One Figure-2 CPU configuration: baseline index, the short-SMI
    sanity point, and the long-SMI interval sweep."""
    from repro.apps.unixbench import run_unixbench
    from repro.core.smi import SmiProfile

    k = params["cpus"]
    fault_rules = params.get("faults")
    if fault_rules:
        call, events = _faulted_machine_runner(fault_rules, seed, metrics)
        baseline = call(lambda m: run_unixbench(
            k, seed=seed, metrics=metrics, machine=m)).total_index
        short = call(lambda m: run_unixbench(
            k, SmiProfile.SHORT, 100, seed=seed, metrics=metrics,
            machine=m)).total_index
        points = []
        for iv in params["intervals_ms"]:
            r = call(lambda m, iv=iv: run_unixbench(
                k, SmiProfile.LONG, iv, seed=seed, metrics=metrics,
                machine=m))
            points.append([iv, r.total_index])
        out: Dict[str, Any] = {
            "baseline": baseline, "short_at_100ms": short, "points": points}
        if events:
            out["fault_events"] = events
        return out
    baseline = run_unixbench(k, seed=seed, metrics=metrics).total_index
    short = run_unixbench(
        k, SmiProfile.SHORT, 100, seed=seed, metrics=metrics).total_index
    points = []
    for iv in params["intervals_ms"]:
        r = run_unixbench(k, SmiProfile.LONG, iv, seed=seed, metrics=metrics)
        points.append([iv, r.total_index])
    return {"baseline": baseline, "short_at_100ms": short, "points": points}


def synthetic_cell(params: Dict, seed: int, metrics=None) -> Dict:
    """A deterministic no-simulation cell for tests, chaos drills, and CI
    smoke sweeps: value depends only on (params, seed).  ``sleep_s``
    exercises timeouts; ``raise`` exercises in-cell failures."""
    if params.get("sleep_s"):
        time.sleep(float(params["sleep_s"]))
    if params.get("raise"):
        raise RuntimeError(str(params["raise"]))
    reps = int(params.get("reps", 1))
    base = float(params.get("value", 1.0))
    values = [base + 1e-9 * rep_seed(seed, r) for r in range(reps)]
    return {"values": values}


def _convolve_config(name: str):
    from repro.apps.convolve import CACHE_FRIENDLY, CACHE_UNFRIENDLY

    configs = {c.name: c for c in (CACHE_UNFRIENDLY, CACHE_FRIENDLY)}
    try:
        return configs[name]
    except KeyError:
        raise ValueError(f"unknown Convolve config {name!r}") from None


#: Short names a spec's ``fn`` may use.
REGISTRY: Dict[str, CellFn] = {
    "nas": nas_cell,
    "convolve_line": convolve_line_cell,
    "convolve_run": convolve_run_cell,
    "unixbench": unixbench_cell,
    "synthetic": synthetic_cell,
}


def resolve(fn: str) -> CellFn:
    """Registry name or ``"package.module:function"`` → callable."""
    if fn in REGISTRY:
        return REGISTRY[fn]
    if ":" in fn:
        mod_name, _, attr = fn.partition(":")
        mod = importlib.import_module(mod_name)
        target = getattr(mod, attr, None)
        if callable(target):
            return target
    raise ValueError(
        f"unknown cell executor {fn!r} (registry: {sorted(REGISTRY)})"
    )


def run_cell(fn: str, params: Dict, seed: int,
             metrics: Optional[object] = None) -> Dict[str, Any]:
    """Execute one cell attempt in the current process."""
    return resolve(fn)(params, seed, metrics=metrics)
