"""The resilient sweep engine: crash-isolated, parallel, resumable.

``SweepRunner.run(specs)`` executes every :class:`CellSpec` as an
isolated unit of work and returns ``{cell_id: CellResult}`` — *always*,
no matter what individual cells do.  The failure model:

* **Crash isolation** — with ``isolation="process"`` (the default) each
  attempt runs in a fresh ``repro.runx.worker`` subprocess; a segfault,
  OOM kill, or corrupted reply becomes ``CellResult(status=FAILED)``.
* **Watchdog timeouts** — ``timeout_s`` bounds each attempt's wall
  clock; the subprocess machinery kills overrunning workers.
* **Bounded retries** — a failed attempt is retried up to ``retries``
  times after a deterministic exponential backoff
  (``backoff_s * 2**(attempt-1)``), each attempt re-seeded with
  :func:`~repro.runx.spec.attempt_seed` so a genuinely diverging seed is
  not replayed verbatim.  Attempt 0 always uses the spec's own seed, so
  clean sweeps stay bit-identical to the legacy serial path.
* **Checkpointing** — every terminal result is appended to the
  :class:`~repro.runx.journal.Journal` (fsync per line) and mirrored to
  the v2 manifest; ``completed=`` feeds previously journaled results
  back in, and the runner skips them (counted as resumed).
* **Parallelism** — ``jobs`` worker subprocesses run concurrently; cell
  seeds are position-derived, so results are independent of scheduling
  order and ``--jobs N`` output is bit-identical to ``--jobs 1``.
* **Graceful drain** — :meth:`SweepRunner.request_drain` (the CLI wires
  it to SIGINT/SIGTERM) stops *launching* cells while in-flight cells
  finish and are journaled normally; ``run()`` then returns only the
  completed results, so the journal is never torn and ``--resume``
  picks up exactly where the drain stopped.

``isolation="inline"`` executes cells in-process (no subprocess, no
timeout enforcement, no chaos) — the fast path for unit tests and for
callers that already trust their cells.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runx.spec import (
    FAILED,
    FAILED_IN_SIM,
    OK,
    CellResult,
    CellSpec,
    attempt_seed,
)
from repro.runx.worker import RESULT_SENTINEL

__all__ = ["SweepRunner", "worker_env"]

log = logging.getLogger(__name__)

_STDERR_TAIL = 400  # chars of worker stderr preserved in error messages


def _worker_env() -> Dict[str, str]:
    """Child environment with the repro package importable.

    Measured at ~64 µs per call (``dict(os.environ)`` + the repro import
    dance); the runner computes it once and reuses it for every attempt —
    attempts never legitimately see different environments within one
    runner's lifetime.
    """
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else ""))
    return env


#: Public alias: the serve daemon's worker pool spawns the same kind of
#: subprocess and needs the same importable-repro environment.
worker_env = _worker_env


class SweepRunner:
    """Execute cell specs with crash isolation, retries, and checkpoints."""

    def __init__(
        self,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        isolation: str = "process",
        metrics=None,
        manifest=None,
        journal=None,
        progress: Optional[Callable[[str], None]] = None,
        baselines=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.isolation = isolation
        self.metrics = metrics
        self.manifest = manifest
        self.journal = journal
        self.progress = progress
        #: Shared-baseline store for ``--attr`` sweeps: worker requests
        #: carry every record the sweep has produced so far, and worker
        #: replies feed new records back, so one zero-SMI baseline run
        #: serves every SMI class of its configuration across the whole
        #: sweep (and across process boundaries).  Lazily created on
        #: first use; pass one in to share it across runners.
        self.baselines = baselines
        #: Aggregated warm-prefix cache accounting from fork-group
        #: batches (repro.runx.forkshare): workers report their store's
        #: stats per batch and the runner sums them here.
        self.snapshot_stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0, "forks": 0}
        self._lock = threading.Lock()
        self._drain = threading.Event()
        self._done = 0
        self._total = 0
        self._env: Optional[Dict[str, str]] = None  # built on first attempt
        self._pool: Optional[ThreadPoolExecutor] = None  # reused across runs
        if metrics is not None:
            self._c_started = metrics.counter(
                "runx.cells.started", "cells whose first attempt launched")
            self._c_ok = metrics.counter("runx.cells.ok", "cells that succeeded")
            self._c_failed = metrics.counter(
                "runx.cells.failed", "cells that exhausted all attempts")
            self._c_retried = metrics.counter(
                "runx.cells.retried", "retry attempts launched")
            self._c_resumed = metrics.counter(
                "runx.cells.resumed", "cells satisfied from a prior journal")
            self._c_timeout = metrics.counter(
                "runx.cells.timeouts", "attempts killed by the watchdog")
            self._c_failed_in_sim = metrics.counter(
                "runx.cells.failed_in_sim",
                "cells killed deterministically by injected model faults")
        else:
            self._c_started = self._c_ok = self._c_failed = None
            self._c_retried = self._c_resumed = self._c_timeout = None
            self._c_failed_in_sim = None

    # -- public entry ---------------------------------------------------------
    def run(
        self,
        specs: Sequence[CellSpec],
        completed: Optional[Dict[str, CellResult]] = None,
    ) -> Dict[str, CellResult]:
        ids = [s.id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate cell ids in sweep: {dupes[:5]}")
        results: Dict[str, CellResult] = {}
        todo: List[CellSpec] = []
        self._total = len(specs)
        self._done = 0
        # Digest fast path: a journaled OK result whose content digest
        # matches a spec satisfies it even under a different id (renamed
        # cells, re-labelled sweeps) — no worker is spawned.
        by_digest: Dict[str, CellResult] = {}
        if completed:
            for res in completed.values():
                if res.ok and res.digest:
                    by_digest.setdefault(res.digest, res)
        for spec in specs:
            prior = completed.get(spec.id) if completed else None
            if prior is None and by_digest:
                match = by_digest.get(spec.digest())
                if match is not None:
                    prior = CellResult.from_record(
                        dict(match.to_record(), id=spec.id))
            if prior is not None and prior.ok:
                prior.resumed = True
                results[spec.id] = prior
                if self._c_resumed is not None:
                    self._c_resumed.inc()
                self._record(prior, journal=False)
            else:
                todo.append(spec)
        units = self._plan_units(todo)
        if self.jobs == 1 or len(units) <= 1:
            for unit in units:
                for cid, res in self._run_unit(unit):
                    results[cid] = res
        else:
            pool = self._pool
            if pool is None:
                # One executor for the runner's lifetime: retries and
                # repeated run() calls (resume loops) reuse its threads
                # instead of paying pool teardown/spin-up per pass.
                self._pool = pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="sweep")
            for pairs in pool.map(self._run_unit, units):
                for cid, res in pairs:
                    results[cid] = res
        return results

    # -- fork-group planning --------------------------------------------------
    def _plan_units(self, todo: List[CellSpec]) -> List:
        """Partition the work list into schedulable units: single specs,
        plus *fork groups* — runs of cells that differ only in
        ``params["interval"]`` and therefore share a warm prefix
        (:mod:`repro.runx.forkshare`).  A group runs in one worker
        subprocess, sorted by ascending interval, so the first cell
        warms the prefix every later cell forks from.  Inline isolation
        needs no grouping: cells already share the in-process store."""
        if self.isolation != "process" or self.metrics is not None:
            return list(todo)
        from repro.runx.forkshare import fork_supported, snapshot_mode

        if snapshot_mode() == "off" or not fork_supported():
            return list(todo)
        groups: Dict[str, List[CellSpec]] = {}
        keys: Dict[str, str] = {}
        for spec in todo:
            key = self._fork_group_key(spec)
            if key is not None:
                groups.setdefault(key, []).append(spec)
                keys[spec.id] = key
        units: List = []
        emitted = set()
        for spec in todo:
            key = keys.get(spec.id)
            if key is None or len(groups[key]) < 2:
                units.append(spec)
            elif key not in emitted:
                emitted.add(key)
                units.append(sorted(
                    groups[key], key=lambda s: int(s.params["interval"])))
        return units

    @staticmethod
    def _fork_group_key(spec: CellSpec) -> Optional[str]:
        p = spec.params
        if (spec.fn != "nas" or "interval" not in p or not p.get("smm")
                or p.get("faults") or p.get("attr")):
            return None
        rest = {k: v for k, v in p.items() if k != "interval"}
        return json.dumps([rest, spec.base_seed], sort_keys=True,
                          default=str)

    def _run_unit(self, unit) -> List[Tuple[str, CellResult]]:
        if isinstance(unit, CellSpec):
            res = self._run_cell(unit)
            return [(unit.id, res)] if res is not None else []
        return self._run_group(unit)

    def _run_group(self, specs: List[CellSpec]) -> List[Tuple[str, CellResult]]:
        """One fork group: a single batch worker, with per-cell fallback
        to the ordinary retry path for anything the batch could not
        deliver (batch worker crashed, one cell raised, drain)."""
        replies = (self._attempt_group(specs)
                   if not self._drain.is_set() else [None] * len(specs))
        out: List[Tuple[str, CellResult]] = []
        for spec, reply in zip(specs, replies):
            if reply is not None and reply.get("ok"):
                if self._c_started is not None or self._c_ok is not None:
                    with self._lock:
                        if self._c_started is not None:
                            self._c_started.inc()
                        if self._c_ok is not None:
                            self._c_ok.inc()
                result = CellResult(
                    id=spec.id, status=OK, value=reply.get("value"),
                    attempts=1,
                    duration_s=round(float(reply.get("duration_s", 0.0)), 6),
                    seed=spec.base_seed, digest=spec.digest(),
                )
                self._record(result, journal=True)
                out.append((spec.id, result))
            else:
                res = self._run_cell(spec)
                if res is not None:
                    out.append((spec.id, res))
        return out

    def _attempt_group(self, specs: List[CellSpec]) -> List[Optional[Dict]]:
        """Run a fork group in one worker subprocess.  Returns the
        per-cell replies (padded with ``None`` on any batch-level
        failure, which sends every cell down the individual path)."""
        nothing: List[Optional[Dict]] = [None] * len(specs)
        req = {"cells": [
            {"spec": s.to_record(), "attempt": 0, "seed": s.base_seed}
            for s in specs
        ]}
        env = self._env
        if env is None:
            with self._lock:
                if self._env is None:
                    self._env = _worker_env()
                env = self._env
        timeout = (self.timeout_s * len(specs)
                   if self.timeout_s is not None else None)
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.runx.worker"],
                input=json.dumps(req), capture_output=True, text=True,
                timeout=timeout, env=env,
            )
        except subprocess.TimeoutExpired:
            if self._c_timeout is not None:
                with self._lock:
                    self._c_timeout.inc()
            return nothing
        except OSError:  # pragma: no cover — spawn failure
            return nothing
        reply = None
        for line in reversed(proc.stdout.splitlines()):
            if line.startswith(RESULT_SENTINEL):
                try:
                    reply = json.loads(line[len(RESULT_SENTINEL):])
                except ValueError:
                    return nothing
                break
        if reply is None or not reply.get("ok"):
            log.warning("fork-group batch of %d cells failed; running "
                        "cells individually", len(specs))
            return nothing
        if reply.get("snapshot_stats"):
            with self._lock:
                for k, v in reply["snapshot_stats"].items():
                    if k in self.snapshot_stats:
                        self.snapshot_stats[k] += int(v)
        results = reply.get("results")
        if not isinstance(results, list) or len(results) != len(specs):
            return nothing
        return results

    # -- graceful drain -------------------------------------------------------
    def request_drain(self) -> None:
        """Stop launching new cells; in-flight cells finish and are
        journaled.  Thread- and signal-safe (sets an Event)."""
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def close(self) -> None:
        """Release the worker thread pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one cell, all attempts -----------------------------------------------
    def _run_cell(self, spec: CellSpec) -> Optional[CellResult]:
        if self._drain.is_set():
            # Draining: the cell is neither run nor journaled, so a later
            # --resume sees it as missing work and re-runs it.
            return None
        if self._c_started is not None:
            with self._lock:
                self._c_started.inc()
        t0 = time.monotonic()
        errors: List[str] = []
        value = None
        fault = None
        seed = spec.base_seed
        attempt = 0
        while True:
            seed = attempt_seed(spec.base_seed, attempt)
            if attempt > 0:
                delay = self.backoff_s * (2 ** (attempt - 1))
                if delay > 0:
                    time.sleep(delay)
                if self._c_retried is not None:
                    with self._lock:
                        self._c_retried.inc()
            value, err, fault = self._attempt(spec, attempt, seed)
            if err is None:
                break
            errors.append(f"attempt {attempt} (seed {seed}): {err}")
            log.warning("cell %s %s", spec.id, errors[-1])
            if fault is not None:
                # Killed by injected model-level faults: deterministic —
                # the same seed and plan would die the same way, so
                # retrying would only replay the failure.  Terminal.
                break
            if attempt >= self.retries:
                break
            attempt += 1
        duration = time.monotonic() - t0
        if value is not None:
            result = CellResult(
                id=spec.id, status=OK, value=value, attempts=attempt + 1,
                duration_s=round(duration, 6), seed=seed,
                attempt_errors=errors, digest=spec.digest(),
            )
        elif fault is not None:
            result = CellResult(
                id=spec.id, status=FAILED_IN_SIM, attempts=attempt + 1,
                duration_s=round(duration, 6), seed=seed,
                error=errors[-1] if errors else "failed in simulation",
                attempt_errors=errors, digest=spec.digest(), fault=fault,
            )
        else:
            result = CellResult(
                id=spec.id, status=FAILED, attempts=attempt + 1,
                duration_s=round(duration, 6), seed=seed,
                error=errors[-1] if errors else "unknown failure",
                attempt_errors=errors, digest=spec.digest(),
            )
        with self._lock:
            if result.ok:
                if self._c_ok is not None:
                    self._c_ok.inc()
            elif result.status == FAILED_IN_SIM:
                if self._c_failed_in_sim is not None:
                    self._c_failed_in_sim.inc()
            elif self._c_failed is not None:
                self._c_failed.inc()
        self._record(result, journal=True)
        return result

    # -- one attempt ----------------------------------------------------------
    def _attempt(
        self, spec: CellSpec, attempt: int, seed: int,
    ) -> Tuple[Optional[Dict], Optional[str], Optional[Dict]]:
        """Returns ``(value, error, fault)``: ``(value, None, None)`` on
        success, ``(None, error, None)`` on a retryable failure, and
        ``(None, error, fault)`` when injected model-level faults killed
        the simulation (terminal — never retried)."""
        if self.isolation == "inline":
            from repro.faults import FaultedRunError
            from repro.runx.cells import run_cell

            try:
                return run_cell(spec.fn, spec.params, seed,
                                metrics=self.metrics), None, None
            except FaultedRunError as exc:
                return None, str(exc), {"events": exc.events}
            except Exception:
                return (None,
                        "cell raised:\n" + traceback.format_exc(limit=8),
                        None)
        return self._attempt_process(spec, attempt, seed)

    def _baseline_store(self):
        store = self.baselines
        if store is None:
            with self._lock:
                if self.baselines is None:
                    from repro.obs.attr.baseline import BaselineStore

                    self.baselines = BaselineStore()
                store = self.baselines
        return store

    def _attempt_process(
        self, spec: CellSpec, attempt: int, seed: int,
    ) -> Tuple[Optional[Dict], Optional[str], Optional[Dict]]:
        req: Dict = {
            "spec": spec.to_record(),
            "attempt": attempt,
            "seed": seed,
            "metrics": self.metrics is not None,
        }
        wants_baselines = bool(spec.params.get("attr"))
        if wants_baselines:
            known = self._baseline_store().export_all()
            if known:
                req["baselines"] = known
        request = json.dumps(req)
        env = self._env
        if env is None:
            with self._lock:
                if self._env is None:
                    self._env = _worker_env()
                env = self._env
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.runx.worker"],
                input=request, capture_output=True, text=True,
                timeout=self.timeout_s, env=env,
            )
        except subprocess.TimeoutExpired:
            if self._c_timeout is not None:
                with self._lock:
                    self._c_timeout.inc()
            return None, f"watchdog timeout after {self.timeout_s:g}s", None
        except OSError as exc:  # pragma: no cover — spawn failure
            return None, f"could not spawn worker: {exc}", None
        reply = None
        for line in reversed(proc.stdout.splitlines()):
            if line.startswith(RESULT_SENTINEL):
                try:
                    reply = json.loads(line[len(RESULT_SENTINEL):])
                except ValueError:
                    return None, "corrupt result record from worker", None
                break
        if reply is None:
            tail = proc.stderr[-_STDERR_TAIL:].strip()
            if proc.returncode < 0:
                err = f"worker killed by signal {-proc.returncode}"
            elif proc.returncode != 0:
                err = f"worker exited with status {proc.returncode}"
            else:
                err = "worker produced no result record"
            return None, err + (f"; stderr: {tail}" if tail else ""), None
        if reply.get("baselines"):
            self._baseline_store().absorb(reply["baselines"])
        if reply.get("snapshot_stats"):
            with self._lock:
                for k, v in reply["snapshot_stats"].items():
                    if k in self.snapshot_stats:
                        self.snapshot_stats[k] += int(v)
        if self.metrics is not None and reply.get("metrics"):
            with self._lock:
                self.metrics.merge_snapshot(reply["metrics"])
        if not reply.get("ok"):
            if reply.get("failed_in_sim"):
                return (None, str(reply.get("error", "failed in simulation")),
                        reply.get("fault") or {"events": []})
            return None, "cell raised:\n" + str(reply.get("error", "?")), None
        return reply.get("value"), None, None

    # -- bookkeeping ----------------------------------------------------------
    def _record(self, result: CellResult, journal: bool) -> None:
        with self._lock:
            self._done += 1
            if journal and self.journal is not None:
                self.journal.append(result)
            if self.manifest is not None:
                rec = result.to_record()
                rec.pop("kind", None)  # "id" stays: it is the resume key
                self.manifest.add_cell(result.id, **rec)
            if self.progress is not None:
                if result.ok:
                    flag = ""
                elif result.status == FAILED_IN_SIM:
                    flag = " FAILED-IN-SIM"
                else:
                    flag = " FAILED"
                src = " (resumed)" if result.resumed else ""
                self.progress(
                    f"[{self._done}/{self._total}] {result.id}{flag}{src}")
