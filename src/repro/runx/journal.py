"""The checkpoint journal: durable per-cell progress, atomic finalize.

While a sweep runs, every completed cell is appended to
``<manifest>.part.jsonl`` — one fsync'd JSON line per cell, preceded by a
header line recording the run's identity (command, seed, reps, matrix
shape).  A SIGKILL at any instant therefore loses at most the cell in
flight; ``--resume <manifest>`` reads the journal back and re-runs only
what is missing or failed, with the header's recorded parameters (not
the resuming command line) defining the matrix and seeds.

On success the complete v2 manifest is written via
:func:`repro.obs.atomic.atomic_write_text` (temp file + fsync + rename)
and the ``.part.jsonl`` is removed: the pair of names is a two-state
commit protocol — a ``.part.jsonl`` on disk means "interrupted,
resumable", a bare manifest means "finished, trustworthy".

The journal is guarded by an advisory single-writer lock
(:mod:`repro.runx.lock`): two concurrent runners — or a runner and the
serve daemon — pointed at the same manifest path fail fast with a typed
:class:`~repro.runx.lock.LockHeldError` instead of silently interleaving
their records.  Readers (``--resume`` loading a journal left by a dead
run) never take the lock.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.atomic import fsync_append
from repro.runx.lock import SingleWriterLock
from repro.runx.spec import CellResult

__all__ = [
    "Journal",
    "JournalWriteError",
    "append_record",
    "part_path",
    "load_resume",
    "repair_torn_tail",
    "iter_records",
]

log = logging.getLogger(__name__)


class JournalWriteError(OSError):
    """A journal append could not reach stable storage (``ENOSPC``, I/O
    error, permissions).  Subclasses :class:`OSError` so existing
    broad handlers still catch it, while callers that care — the serve
    daemon's accept loop — can map it to a typed retryable reply
    instead of crashing: durability failing is backpressure, not death.
    """

    def __init__(self, path: str, cause: OSError):
        super().__init__(
            cause.errno if cause.errno is not None else 0,
            f"journal {path}: append failed ({cause})")
        self.path = path
        self.cause = cause


def append_record(path: str, rec: Dict) -> None:
    """Fsync-append one JSON record, raising the typed
    :class:`JournalWriteError` on any storage failure (a full disk must
    surface as a *refusal to accept work*, never a torn accept)."""
    try:
        fsync_append(path, json.dumps(rec, separators=(",", ":")))
    except OSError as exc:
        raise JournalWriteError(path, exc) from exc


def part_path(manifest_path: str) -> str:
    return manifest_path + ".part.jsonl"


def repair_torn_tail(path: str) -> bool:
    """Terminate a torn final line left by a crash mid-append.

    Without this, appending to a journal whose last line lacks its
    newline would *merge* the next record into the torn line — losing
    both the torn record and the first record of the resumed run.
    Returns whether a repair was needed.  Shared by the sweep journal
    and the serve daemon's durable job queue, which reuses its format.
    """
    try:
        with open(path, "rb") as fp:
            fp.seek(0, os.SEEK_END)
            if fp.tell() == 0:
                return False
            fp.seek(-1, os.SEEK_END)
            torn = fp.read(1) != b"\n"
    except FileNotFoundError:
        return False
    if torn:
        log.warning("journal %s: repairing torn final line", path)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write("\n")
    return torn


def iter_records(path: str) -> Iterator[Dict]:
    """Yield the parseable JSON-object records of a journal-format file.

    Unparsable or non-object lines (a torn tail, bit rot) are skipped
    with a warning — corruption costs the affected records, never the
    file.
    """
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                log.warning("journal %s: skipping unparsable line %d",
                            path, lineno)
                continue
            if isinstance(rec, dict):
                yield rec
            else:
                log.warning("journal %s: skipping non-record line %d",
                            path, lineno)


class Journal:
    """Append-only crash log for one sweep (thread-safe, single-writer).

    The first write acquires an exclusive advisory lock on
    ``<path>.lock``; a second live writer on the same path raises
    :class:`~repro.runx.lock.LockHeldError` before touching the journal.
    :meth:`finalize` and :meth:`close` release it (as does process
    death — the lock is ``flock``-based).
    """

    def __init__(self, manifest_path: str):
        self.manifest_path = manifest_path
        self.path = part_path(manifest_path)
        self._lock = threading.Lock()
        self._tail_checked = False
        self._writer_lock = SingleWriterLock(self.path + ".lock")

    def write_header(self, meta: Dict) -> None:
        """Start a fresh journal (truncating any stale one)."""
        rec = {"kind": "header", **meta}
        with self._lock:
            self._writer_lock.acquire()
            if os.path.exists(self.path):
                os.unlink(self.path)
            self._tail_checked = True  # fresh file: nothing to repair
            append_record(self.path, rec)

    def append(self, result: CellResult) -> None:
        with self._lock:
            self._writer_lock.acquire()
            if not self._tail_checked:
                # First append of a resumed run (no write_header): the
                # prior process may have died mid-append.
                repair_torn_tail(self.path)
                self._tail_checked = True
            append_record(self.path, result.to_record())

    def finalize(self) -> None:
        """Drop the journal once the finished manifest is safely on disk."""
        with self._lock:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
            self._writer_lock.release()

    def close(self) -> None:
        """Release the single-writer lock without touching the journal
        (the interrupted-run path: the ``.part.jsonl`` must stay behind
        for ``--resume``, but the lock must not outlive the run)."""
        with self._lock:
            self._writer_lock.release()


def _read_jsonl(path: str) -> Tuple[Optional[Dict], Dict[str, CellResult]]:
    header: Optional[Dict] = None
    cells: Dict[str, CellResult] = {}
    for rec in iter_records(path):
        if rec.get("kind") == "header":
            header = rec
        elif rec.get("kind") == "cell":
            try:
                cells[rec["id"]] = CellResult.from_record(rec)
            except (KeyError, TypeError, ValueError):
                # Parses as JSON but is not a well-formed cell record
                # (e.g. a torn line that happened to stay valid JSON).
                log.warning("journal %s: skipping malformed cell record",
                            path)
    return header, cells


def load_resume(
    manifest_path: str,
) -> Tuple[Optional[Dict], Dict[str, CellResult]]:
    """Previously completed work for ``--resume <manifest_path>``.

    Prefers the in-progress journal; falls back to a finalized v2
    manifest (resuming a *finished* run is legal — it simply re-runs any
    cells that had FAILED).  Returns ``(header_meta, {id: CellResult})``.
    """
    part = part_path(manifest_path)
    if os.path.exists(part):
        return _read_jsonl(part)
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as fp:
            doc = json.load(fp)
        header = {"kind": "header", "command": doc.get("command"),
                  **doc.get("params", {})}
        cells: Dict[str, CellResult] = {}
        for rec in doc.get("cells", []):
            if "id" in rec and "status" in rec:
                cells[rec["id"]] = CellResult.from_record(rec)
        return header, cells
    raise FileNotFoundError(
        f"nothing to resume: neither {part} nor {manifest_path} exists"
    )
