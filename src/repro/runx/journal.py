"""The checkpoint journal: durable per-cell progress, atomic finalize.

While a sweep runs, every completed cell is appended to
``<manifest>.part.jsonl`` — one fsync'd JSON line per cell, preceded by a
header line recording the run's identity (command, seed, reps, matrix
shape).  A SIGKILL at any instant therefore loses at most the cell in
flight; ``--resume <manifest>`` reads the journal back and re-runs only
what is missing or failed, with the header's recorded parameters (not
the resuming command line) defining the matrix and seeds.

On success the complete v2 manifest is written via
:func:`repro.obs.atomic.atomic_write_text` (temp file + fsync + rename)
and the ``.part.jsonl`` is removed: the pair of names is a two-state
commit protocol — a ``.part.jsonl`` on disk means "interrupted,
resumable", a bare manifest means "finished, trustworthy".
"""

from __future__ import annotations

import json
import logging
import os
import threading
from typing import Dict, Optional, Tuple

from repro.obs.atomic import fsync_append
from repro.runx.spec import CellResult

__all__ = ["Journal", "part_path", "load_resume"]

log = logging.getLogger(__name__)


def part_path(manifest_path: str) -> str:
    return manifest_path + ".part.jsonl"


class Journal:
    """Append-only crash log for one sweep (thread-safe)."""

    def __init__(self, manifest_path: str):
        self.manifest_path = manifest_path
        self.path = part_path(manifest_path)
        self._lock = threading.Lock()
        self._tail_checked = False

    def write_header(self, meta: Dict) -> None:
        """Start a fresh journal (truncating any stale one)."""
        rec = {"kind": "header", **meta}
        with self._lock:
            if os.path.exists(self.path):
                os.unlink(self.path)
            self._tail_checked = True  # fresh file: nothing to repair
            fsync_append(self.path, json.dumps(rec, separators=(",", ":")))

    def _repair_tail(self) -> None:
        """Terminate a torn final line left by a crash mid-append.

        Without this, resuming into a journal whose last line lacks its
        newline would *merge* the next record into the torn line — losing
        both the torn cell and the first cell of the resumed run.
        """
        try:
            with open(self.path, "rb") as fp:
                fp.seek(0, os.SEEK_END)
                if fp.tell() == 0:
                    return
                fp.seek(-1, os.SEEK_END)
                torn = fp.read(1) != b"\n"
        except FileNotFoundError:
            return
        if torn:
            log.warning("journal %s: repairing torn final line", self.path)
            with open(self.path, "a", encoding="utf-8") as fp:
                fp.write("\n")

    def append(self, result: CellResult) -> None:
        with self._lock:
            if not self._tail_checked:
                # First append of a resumed run (no write_header): the
                # prior process may have died mid-append.
                self._repair_tail()
                self._tail_checked = True
            fsync_append(
                self.path,
                json.dumps(result.to_record(), separators=(",", ":")),
            )

    def finalize(self) -> None:
        """Drop the journal once the finished manifest is safely on disk."""
        with self._lock:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass


def _read_jsonl(path: str) -> Tuple[Optional[Dict], Dict[str, CellResult]]:
    header: Optional[Dict] = None
    cells: Dict[str, CellResult] = {}
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                # A crash mid-append can leave one torn final line; any
                # other corruption also only costs the affected cells.
                log.warning("journal %s: skipping unparsable line %d",
                            path, lineno)
                continue
            if rec.get("kind") == "header":
                header = rec
            elif rec.get("kind") == "cell":
                try:
                    cells[rec["id"]] = CellResult.from_record(rec)
                except (KeyError, TypeError, ValueError):
                    # Parses as JSON but is not a well-formed cell record
                    # (e.g. a torn line that happened to stay valid JSON).
                    log.warning("journal %s: skipping malformed cell "
                                "record at line %d", path, lineno)
    return header, cells


def load_resume(
    manifest_path: str,
) -> Tuple[Optional[Dict], Dict[str, CellResult]]:
    """Previously completed work for ``--resume <manifest_path>``.

    Prefers the in-progress journal; falls back to a finalized v2
    manifest (resuming a *finished* run is legal — it simply re-runs any
    cells that had FAILED).  Returns ``(header_meta, {id: CellResult})``.
    """
    part = part_path(manifest_path)
    if os.path.exists(part):
        return _read_jsonl(part)
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as fp:
            doc = json.load(fp)
        header = {"kind": "header", "command": doc.get("command"),
                  **doc.get("params", {})}
        cells: Dict[str, CellResult] = {}
        for rec in doc.get("cells", []):
            if "id" in rec and "status" in rec:
                cells[rec["id"]] = CellResult.from_record(rec)
        return header, cells
    raise FileNotFoundError(
        f"nothing to resume: neither {part} nor {manifest_path} exists"
    )
