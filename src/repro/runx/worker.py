"""The crash-isolation boundary: ``python -m repro.runx.worker``.

The runner starts one worker subprocess per cell *attempt*.  The worker
reads a single JSON request from stdin::

    {"spec": {...CellSpec...}, "attempt": 0, "seed": 42, "metrics": false}

executes the cell in-process, and replies on stdout with one line::

    RUNX-RESULT {"ok": true, "value": {...}, "metrics": {...}?}

The ``RUNX-RESULT`` sentinel lets the parent find the reply even if the
cell (or a logging handler) wrote to stdout first; anything after it is
ignored.  A missing or unparsable sentinel line — worker segfaulted, was
OOM-killed, timed out, or chaos corrupted its output — is a failed
attempt, never a crashed sweep.

Exit codes: 0 ok (including infeasible cells and cell exceptions, which
are reported in-band), 12 bad request, chaos faults use their own.
"""

from __future__ import annotations

import json
import sys
import traceback

RESULT_SENTINEL = "RUNX-RESULT "


def _attach_baselines(reply: dict) -> None:
    """Ship freshly computed baseline records (and the hit/miss tally)
    back to the runner.  Checked via ``sys.modules`` so cells that never
    touched the attribution engine pay no import."""
    mod = sys.modules.get("repro.obs.attr.baseline")
    if mod is None:
        return
    store = mod.global_store()
    new = store.drain_new()
    if new:
        reply["baselines"] = new
    if store.hits or store.misses:
        reply["baseline_stats"] = {"hits": store.hits,
                                   "misses": store.misses}


def _attach_snapshot_stats(reply: dict) -> None:
    """Ship the warm-prefix cache tally (repro.runx.forkshare) back to
    the dispatcher.  Same ``sys.modules`` discipline as baselines: cells
    that never touched the fork path pay no import."""
    mod = sys.modules.get("repro.runx.forkshare")
    if mod is None:
        return
    stats = mod.global_store().stats()
    if stats["hits"] or stats["misses"]:
        reply["snapshot_stats"] = stats


def _run_batch(req: dict) -> dict:
    """A fork-group batch: every cell of one interval sweep group runs
    in this process, in request order, so later cells fork the warm
    prefix the first cell paid for.  Per-cell failures are in-band; the
    runner re-runs those cells through its ordinary retry path."""
    import time

    from repro.runx.cells import run_cell

    results = []
    for cell in req["cells"]:
        t0 = time.monotonic()
        try:
            value = run_cell(cell["spec"]["fn"],
                             cell["spec"].get("params", {}),
                             int(cell["seed"]), metrics=None)
            results.append({"ok": True, "value": value,
                            "duration_s": time.monotonic() - t0})
        except Exception:
            results.append({"ok": False,
                            "error": traceback.format_exc(limit=8)})
    reply = {"ok": True, "results": results}
    _attach_snapshot_stats(reply)
    return reply


def main() -> int:
    try:
        req = json.load(sys.stdin)
        if "cells" in req:
            reply = _run_batch(req)
            sys.stdout.write(RESULT_SENTINEL
                             + json.dumps(reply, separators=(",", ":"))
                             + "\n")
            sys.stdout.flush()
            return 0
        spec = req["spec"]
        attempt = int(req.get("attempt", 0))
        seed = int(req["seed"])
    except (ValueError, KeyError, TypeError) as exc:
        print(f"runx worker: bad request: {exc}", file=sys.stderr)
        return 12

    from repro.runx.chaos import FaultPlan, apply_fault

    plan = FaultPlan.from_env()
    if plan is not None:
        rule = plan.fault_for(spec.get("id", ""), attempt)
        if rule is not None:
            apply_fault(rule)  # kill never returns; others raise SystemExit

    from repro.faults import FaultedRunError
    from repro.obs.metrics import MetricsRegistry
    from repro.runx.cells import run_cell

    # Shared-baseline seeding: the runner attaches the baseline records
    # its sweep has already produced; attr cells then skip the zero-SMI
    # run entirely (repro.obs.attr.baseline).
    if req.get("baselines"):
        from repro.obs.attr.baseline import global_store

        global_store().absorb(req["baselines"])

    registry = MetricsRegistry() if req.get("metrics") else None
    reply: dict
    try:
        value = run_cell(spec["fn"], spec.get("params", {}), seed,
                         metrics=registry)
        reply = {"ok": True, "value": value}
        _attach_baselines(reply)
        _attach_snapshot_stats(reply)
        if registry is not None:
            reply["metrics"] = registry.snapshot()
    except FaultedRunError as exc:
        # Deterministic in-sim death: report the fault evidence in-band so
        # the runner can mark the cell failed-in-sim and skip retries.
        reply = {"ok": False, "failed_in_sim": True, "error": str(exc),
                 "fault": {"events": exc.events}}
        if registry is not None:
            reply["metrics"] = registry.snapshot()
    except Exception:
        reply = {"ok": False, "error": traceback.format_exc(limit=8)}
    sys.stdout.write(
        RESULT_SENTINEL + json.dumps(reply, separators=(",", ":")) + "\n")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    sys.exit(main())
