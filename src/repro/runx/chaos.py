"""Fault injection: prove the resilient runner actually is.

A chaos *plan* is a JSON list of rules keyed by cell id; the worker
subprocess consults the plan (named by ``$REPRO_CHAOS_PLAN``) right
before executing its cell and injects the matching fault.  Faults model
the real-world failure classes the runner claims to survive:

* ``kill``    — SIGKILL the worker mid-cell (segfault / OOM-killer).
* ``hang``    — sleep past any sane deadline (diverging simulation);
  only the runner's watchdog can end it.
* ``corrupt`` — exit "successfully" with garbage instead of a result
  (truncated pipe, partial write).
* ``flake``   — exit nonzero (transient infrastructure error).

Rules may be scoped to specific attempt numbers, so ``"attempts": [0]``
gives the canonical transient fault: first try dies, the retry — with
its deterministically derived seed — succeeds.  CI's chaos smoke job and
the runx test-suite are the consumers.
"""

from __future__ import annotations

import fnmatch
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["PLAN_ENV", "FaultRule", "FaultPlan", "apply_fault"]

#: Environment variable naming the active chaos plan file (workers only
#: look at this; a production sweep never loads chaos code).
PLAN_ENV = "REPRO_CHAOS_PLAN"

_FAULTS = ("kill", "hang", "corrupt", "flake")


@dataclass(frozen=True)
class FaultRule:
    """Inject ``fault`` into cells whose id matches ``match``.

    ``match`` is an ``fnmatch`` glob tested against the cell id (so a
    bare substring needs ``*`` around it).  ``attempts`` limits injection
    to the listed 0-based attempt numbers; empty means every attempt.
    """

    match: str
    fault: str
    attempts: Sequence[int] = field(default_factory=tuple)
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.fault not in _FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r} (one of {_FAULTS})")

    def applies(self, cell_id: str, attempt: int) -> bool:
        if self.attempts and attempt not in self.attempts:
            return False
        return fnmatch.fnmatchcase(cell_id, self.match)


@dataclass
class FaultPlan:
    rules: List[FaultRule] = field(default_factory=list)

    def fault_for(self, cell_id: str, attempt: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.applies(cell_id, attempt):
                return rule
        return None

    # -- (de)serialization ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            [{"match": r.match, "fault": r.fault,
              "attempts": list(r.attempts), "hang_s": r.hang_s}
             for r in self.rules],
            indent=1,
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json() + "\n")

    @classmethod
    def from_rules(cls, rules: Sequence[Dict]) -> "FaultPlan":
        return cls([
            FaultRule(
                match=r["match"], fault=r["fault"],
                attempts=tuple(r.get("attempts", ())),
                hang_s=float(r.get("hang_s", 3600.0)),
            )
            for r in rules
        ])

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fp:
            return cls.from_rules(json.load(fp))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        path = os.environ.get(PLAN_ENV)
        return cls.load(path) if path else None


def apply_fault(rule: FaultRule) -> None:
    """Executed *inside the worker*: make this attempt fail like the
    real failure the rule models.  ``corrupt`` and ``flake`` return the
    worker's exit to the caller via SystemExit; ``kill`` never returns."""
    if rule.fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover — unreachable
    elif rule.fault == "hang":
        time.sleep(rule.hang_s)
        raise SystemExit(16)  # hang "finished": still a failure
    elif rule.fault == "corrupt":
        sys.stdout.write("{ this is not a result record\n")
        sys.stdout.flush()
        raise SystemExit(0)  # exits clean — only output validation catches it
    elif rule.fault == "flake":
        print("chaos: injected transient failure", file=sys.stderr)
        raise SystemExit(17)
