"""Warmup-prefix sharing for interval sweeps (DESIGN.md §11).

An interval sweep runs the *same* simulation many times: cells sharing
``(bench, class, nodes, rpn, htt, smm, seed)`` and differing only in the
SMI trigger interval are byte-identical until the schedule first depends
on the interval.  That happens strictly after the first trigger of the
earliest-phased source: the phase draws are interval-independent (when
the interval is at least the rollout phase spread — see
:meth:`repro.mpi.cluster.Cluster.enable_smi`), the per-SMI duration
stream depends only on trigger count, and the interval first enters the
schedule when the tick *after* a source's first trigger is armed
(:meth:`repro.core.smi.SmiSource.retarget_interval`).

So the sweep can run one common prefix per repetition seed and fork per
interval:

* **warm** — :func:`repro.apps.nas.study.launch_nas_config` builds the
  cluster and starts the ranks; the engine then runs to the safe fork
  point ``T_safe = min(phase) + base_interval - 1`` (one tick before the
  earliest source's second trigger).  The warmed ``(cluster, job)`` pair
  is held live in this process, keyed by :func:`prefix_digest` in a
  :class:`SnapshotStore` (LRU, ``REPRO_SNAPSHOT_CACHE_MAX``).
* **fork** — each interval request ``os.fork``s a child.  The child owns
  a copy-on-write clone of the warmed state: it retargets every SMI
  source to the requested interval, re-heapifies the event queue, runs
  :func:`~repro.apps.nas.study.finish_nas_run` to completion, and writes
  the resulting value back over a pipe as one JSON line (floats survive
  the round-trip bit-for-bit).  The parent's copy is never consumed, so
  one prefix serves the whole sweep.

The forked value is **byte-identical** to a cold
:func:`~repro.apps.nas.study.run_nas_config` replay — pinned by
``tests/integration/test_fork_identity.py`` — because the child's event
sequence *is* the cold run's event sequence: same heap, same generators,
same RNG streams, with only the not-yet-fired pending tick moved.

Any ineligibility (interval below the keeper's base, a swallowed tick,
``os.fork`` unavailable, a child that dies) degrades to the cold path —
the fork layer is a pure cache, never a correctness dependency.
``REPRO_SNAPSHOT=off`` disables it outright.

The complementary in-memory route — :meth:`Engine.snapshot` plus the
``__snapshot__``/``__restore__`` layer protocol in
:mod:`repro.simx.snapshot` — serves single-process restore (tests,
digests, state audits); this module is the cross-run perf path, where
generator frames make pickling impossible and COW ``fork`` is exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import traceback
from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = [
    "snapshot_mode",
    "fork_supported",
    "prefix_digest",
    "WarmPrefix",
    "SnapshotStore",
    "forked_nas_values",
    "global_store",
    "reset_global_store",
]

#: Default LRU capacity of the warm-prefix store.  Each entry holds one
#: fully-launched simulation live in memory, so the cap is deliberately
#: small; interval sweeps touch one entry per repetition seed at a time.
DEFAULT_CACHE_MAX = 8


def snapshot_mode() -> str:
    """``REPRO_SNAPSHOT`` escape hatch: ``auto`` (default) forks where
    eligible, ``off`` forces every cell down the cold path."""
    v = os.environ.get("REPRO_SNAPSHOT", "auto").strip().lower()
    return "off" if v in ("off", "0", "no", "false") else "auto"


def fork_supported() -> bool:
    return hasattr(os, "fork") and sys.platform != "win32"


def prefix_digest(
    bench: str,
    cls: str,
    nodes: int,
    rpn: int,
    htt: bool,
    smm: int,
    seed: int,
) -> str:
    """Content digest of one warm prefix: everything that determines the
    simulation up to the fork point *except* the interval (which is what
    the fork retargets).  Same style as
    :func:`repro.obs.attr.baseline.baseline_digest`."""
    blob = json.dumps(
        ["prefix-fork", bench, cls, int(nodes), int(rpn), bool(htt),
         int(smm), int(seed)],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class WarmPrefix:
    """One warmed simulation, parked at its safe fork point.

    Hold it in the parent; call :meth:`value` once per interval.  The
    parent's state is never advanced past ``T_safe`` — each request runs
    to completion inside a forked child and reports back over a pipe.
    """

    def __init__(self, cluster, job, base_interval_jiffies: int,
                 cached_value: Optional[float] = None,
                 done_early: bool = False):
        self.cluster = cluster
        self.job = job
        self.base_interval = int(base_interval_jiffies)
        #: Job completed before the fork point: the value is
        #: interval-independent (no pending tick ever fires), computed
        #: once and served to every request without forking.
        self.done_early = done_early
        self.cached_value = cached_value

    @classmethod
    def warm(cls, cfg, smm: int, seed: int,
             interval_jiffies: int) -> Optional["WarmPrefix"]:
        """Launch and run to the fork point.  Returns ``None`` when the
        configuration cannot take a warm prefix (infeasible, no SMI
        sources, or the fork-safety preconditions failed to hold)."""
        from repro.apps.nas.study import finish_nas_run, launch_nas_config
        from repro.machine.clock import JIFFY_NS

        launched = launch_nas_config(cfg, smm=smm, seed=seed,
                                     interval_jiffies=interval_jiffies)
        if launched is None:
            return None
        cluster, job = launched
        sources = cluster.smi_sources
        if not sources:
            return None
        t_safe = (min(src.phase_ns for src in sources)
                  + int(interval_jiffies) * JIFFY_NS - 1)
        cluster.engine.run_until(job.done, limit_ns=t_safe)
        if job.done.triggered:
            return cls(cluster, job, interval_jiffies,
                       cached_value=finish_nas_run(cluster, job),
                       done_early=True)
        # The retarget preconditions must hold for every source at the
        # fork point; if the topology/profile combination violated them
        # (e.g. a swallowed tick), this prefix cannot serve any interval.
        if any(src.swallowed_ticks > 0 or src.triggered > 1
               for src in sources):
            return None
        return cls(cluster, job, interval_jiffies)

    def value(self, interval_jiffies: int) -> tuple:
        """Run this prefix to completion at ``interval_jiffies``.

        Returns ``(True, value)`` on success, ``(False, reason)`` when
        the request is ineligible or the child failed — the caller falls
        back to the cold path, which reproduces any real error in the
        calling process."""
        if int(interval_jiffies) < self.base_interval:
            return False, "interval below prefix base"
        if self.done_early:
            return True, self.cached_value
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: retarget, finish, report, vanish
            code = 1
            try:
                os.close(r)
                payload = self._finish_in_child(interval_jiffies)
                os.write(w, (json.dumps(payload) + "\n").encode())
                code = 0
            except BaseException:
                try:
                    os.write(w, (json.dumps(
                        {"ok": False,
                         "error": traceback.format_exc(limit=4)}
                    ) + "\n").encode())
                    code = 0
                except OSError:
                    pass
            finally:
                os._exit(code)
        os.close(w)
        chunks = []
        while True:
            b = os.read(r, 65536)
            if not b:
                break
            chunks.append(b)
        os.close(r)
        _, status = os.waitpid(pid, 0)
        if status != 0 or not chunks:
            return False, f"fork child died (status {status})"
        try:
            msg = json.loads(b"".join(chunks).decode())
        except ValueError as exc:
            return False, f"bad fork reply: {exc}"
        if not msg.get("ok"):
            return False, msg.get("error", "fork child error")
        return True, msg["value"]

    def _finish_in_child(self, interval_jiffies: int) -> Dict[str, Any]:
        from repro.apps.nas.study import finish_nas_run

        if not all(src.retarget_interval(interval_jiffies)
                   for src in self.cluster.smi_sources):
            return {"ok": False, "error": "retarget ineligible"}
        self.cluster.engine.reheapify()
        return {"ok": True,
                "value": finish_nas_run(self.cluster, self.job)}


class SnapshotStore:
    """Digest-keyed LRU of live :class:`WarmPrefix` entries, with the
    same accounting surface as
    :class:`repro.obs.attr.baseline.BaselineStore` plus ``evictions``
    and ``forks`` (every serviced request is one ``os.fork``).

    Thread-safe for the counters and the LRU map; warming itself runs
    outside the lock (it is a real simulation run).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is None:
            max_entries = int(os.environ.get(
                "REPRO_SNAPSHOT_CACHE_MAX", DEFAULT_CACHE_MAX))
        self.max_entries = max(1, max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, WarmPrefix]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.forks = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[WarmPrefix]:
        """Cached warm prefix, or ``None`` (counted as a miss — the
        caller is about to warm one for real)."""
        with self._lock:
            wp = self._entries.get(digest)
            if wp is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return wp

    def put(self, digest: str, prefix: WarmPrefix) -> None:
        with self._lock:
            self._entries[digest] = prefix
            self._entries.move_to_end(digest)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def record_fork(self) -> None:
        with self._lock:
            self.forks += 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "forks": self.forks,
                    "entries": len(self._entries)}


def _eligible(params: Dict[str, Any]) -> bool:
    if snapshot_mode() == "off" or not fork_supported():
        return False
    if params.get("faults") or params.get("attr"):
        return False
    if not int(params.get("smm", 0)):
        return False  # SMM 0 has no interval to share across
    if "interval" not in params:
        # Only interval sweeps carry the key; a plain table sweep runs
        # each (family, smm) cell once, so warming a prefix there is a
        # guaranteed miss that pays fork overhead for nothing.
        return False
    return True


def forked_nas_values(params: Dict[str, Any],
                      seed: int) -> Optional[List[Optional[float]]]:
    """The fork-path twin of ``nas_cell``'s cold repetition loop.

    Returns the per-repetition values list, or ``None`` when any
    repetition is ineligible — the caller then runs the whole cell cold.
    Must only be called for metrics-free cells (observability hooks are
    deliberately not part of the warmed state)."""
    if not _eligible(params):
        return None
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import (
        DEFAULT_PHASE_SPREAD_NS,
        NasConfig,
        nas_config_feasible,
    )
    from repro.core.experiment import rep_seed
    from repro.machine.clock import JIFFY_NS

    interval = int(params.get("interval", 1000))
    # Phase draws are interval-independent only once the interval covers
    # the rollout spread (Cluster.enable_smi clamps the draw range to
    # min(spread, interval)): shorter intervals change the phases
    # themselves and no prefix can be shared.
    if interval * JIFFY_NS < DEFAULT_PHASE_SPREAD_NS:
        return None
    cfg = NasConfig(
        bench=params["bench"],
        cls=NasClass(params["cls"]),
        nodes=int(params["nodes"]),
        ranks_per_node=int(params.get("rpn", 1)),
        htt=bool(params.get("htt", False)),
    )
    if not nas_config_feasible(cfg):
        return None  # cold path reports infeasibility (values=None)
    store = global_store()
    smm = int(params["smm"])
    values: List[Optional[float]] = []
    for r in range(int(params.get("reps", 1))):
        s = rep_seed(seed, r)
        digest = prefix_digest(cfg.bench, cfg.cls.value, cfg.nodes,
                               cfg.ranks_per_node, cfg.htt, smm, s)
        wp = store.get(digest)
        if wp is None:
            wp = WarmPrefix.warm(cfg, smm, s, interval)
            if wp is None:
                return None
            store.put(digest, wp)
        ok, v = wp.value(interval)
        if not ok:
            return None
        if not wp.done_early:
            store.record_fork()
        values.append(v)
    return values


_global: Optional[SnapshotStore] = None
_global_lock = threading.Lock()


def global_store() -> SnapshotStore:
    """The process-wide store the sweep cells default to."""
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                _global = SnapshotStore()
    return _global


def reset_global_store() -> SnapshotStore:
    """Replace the process-wide store (tests; isolation checks)."""
    global _global
    with _global_lock:
        _global = SnapshotStore()
    return _global
