"""Serializable units of work: cell specs and cell results.

A sweep is a list of :class:`CellSpec` — each one small, JSON-able, and
self-contained, so it can cross a process boundary (the crash-isolation
worker), land in a journal line (checkpoint/resume), or be re-run years
later from a manifest.  A :class:`CellResult` is the matching record of
what happened: status, payload, attempts, duration, and the seed that
actually produced the payload.

Seeds are **position-derived, never order-derived**: a spec carries its
``base_seed`` computed from where the cell sits in the matrix (see
:func:`repro.core.experiment.smm_cell_seed`), and retries derive
per-attempt seeds from it with :func:`attempt_seed`.  Running cells in
any order — serially, under ``--jobs 8``, or resumed after a crash —
therefore yields bit-identical payloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "OK",
    "FAILED",
    "FAILED_IN_SIM",
    "CellSpec",
    "CellResult",
    "attempt_seed",
]

#: Terminal cell statuses.  Timeouts, crashes, corrupt output, and cell
#: exceptions all end as FAILED (with ``error`` saying which); a FAILED
#: cell renders as the tables' "-" and makes the CLI exit nonzero, but
#: never kills the sweep.  FAILED_IN_SIM is the *deterministic* failure of
#: a cell whose simulation was killed by injected model-level faults
#: (``--fault-plan``): same rendering and exit code, but never retried —
#: the same seed and plan would fail the same way.
OK = "ok"
FAILED = "failed"
FAILED_IN_SIM = "failed-in-sim"

#: Stride between retry attempts of the same cell (a large prime far from
#: the rep/smm strides, so attempt seeds never collide with neighbouring
#: cells' seeds).  Attempt 0 uses ``base_seed`` unchanged — a sweep where
#: every cell succeeds first try is seed-for-seed identical to the legacy
#: serial path.
ATTEMPT_SEED_STRIDE = 15485863


def attempt_seed(base_seed: int, attempt: int) -> int:
    """Deterministic seed for retry ``attempt`` (0-based) of a cell."""
    return base_seed + ATTEMPT_SEED_STRIDE * attempt


@dataclass(frozen=True)
class CellSpec:
    """One isolated unit of a sweep.

    ``fn`` names an executor in the :mod:`repro.runx.cells` registry;
    ``params`` is its entire JSON-able configuration; ``base_seed`` is
    the attempt-0 seed.  ``id`` must be unique within the sweep and
    stable across runs — it is the checkpoint/resume key.
    """

    id: str
    fn: str
    params: Dict[str, Any] = field(default_factory=dict)
    base_seed: int = 1

    def to_record(self) -> Dict[str, Any]:
        return {"id": self.id, "fn": self.fn, "params": dict(self.params),
                "base_seed": self.base_seed}

    def digest(self) -> str:
        """Content digest of the *work* (executor, params, seed) — the
        ``id`` is deliberately excluded.  Two specs with equal digests
        produce identical payloads (cells are seed-deterministic), so a
        journaled result can satisfy a renamed or re-labelled cell
        without spawning a worker."""
        blob = json.dumps(
            [self.fn, self.params, self.base_seed],
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "CellSpec":
        return cls(id=rec["id"], fn=rec["fn"],
                   params=dict(rec.get("params", {})),
                   base_seed=rec.get("base_seed", 1))


@dataclass
class CellResult:
    """What happened to one cell, across all its attempts."""

    id: str
    status: str
    value: Optional[Dict[str, Any]] = None
    attempts: int = 1
    duration_s: float = 0.0
    seed: Optional[int] = None
    error: Optional[str] = None
    resumed: bool = False
    #: per-attempt failure notes (empty on a clean first-try success).
    attempt_errors: List[str] = field(default_factory=list)
    #: content digest of the producing spec (see :meth:`CellSpec.digest`);
    #: None on records written before the field existed.
    digest: Optional[str] = None
    #: injected-fault evidence for FAILED_IN_SIM cells: the injector's
    #: event log (``{"events": [...], "suppressed": n?}``); None otherwise.
    fault: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    def to_record(self) -> Dict[str, Any]:
        rec = asdict(self)
        if rec.get("fault") is None:
            del rec["fault"]  # keep clean-run manifests byte-stable
        rec["kind"] = "cell"
        return rec

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "CellResult":
        return cls(
            id=rec["id"],
            status=rec.get("status", FAILED),
            value=rec.get("value"),
            attempts=rec.get("attempts", 1),
            duration_s=rec.get("duration_s", 0.0),
            seed=rec.get("seed"),
            error=rec.get("error"),
            resumed=rec.get("resumed", False),
            attempt_errors=list(rec.get("attempt_errors", [])),
            digest=rec.get("digest"),
            fault=rec.get("fault"),
        )
