"""repro-smm — command-line front end.

Subcommands regenerate the paper's artifacts or run the tools:

* ``table1|table2|table3`` — the MPI study tables (BT/EP/FT).
* ``table4|table5`` — the HTT × SMI tables (EP/FT at 4 ranks/node).
* ``figure1`` — Convolve sweeps; ``figure2`` — UnixBench sweeps.
* ``trace`` — run one scenario and export a Chrome-trace/Perfetto JSON.
* ``explain`` — attribute one cell's slowdown: run it at SMM 0 and under
  the requested SMI class with the wait-state capture attached, then
  print the decomposition (direct theft / induced wait / contention /
  residual), the wait-state census, and the critical path next to the
  paper's numbers.  Exits 3 if the conservation check fails.
* ``detect`` — run the hwlat-style gap detector on the *host*.
* ``calibrate`` — print the calibration derivation.
* ``serve`` — run the sweep-serving daemon (`repro.serve`): durable job
  queue, supervised worker pool, content-addressed result cache, and
  a lease/fencing scheduler admitting remote workers over TCP.
  ``serve clear-quarantine`` is the operator action that forgets every
  circuit-broken cell (live via the socket, or offline).
* ``worker`` — run a remote worker agent (``--connect HOST:PORT``) that
  pulls leased cells from a daemon and survives daemon restarts.
* ``submit`` — send a table/figure sweep to a running daemon and render
  the result (repeat submissions are served from cache).
* ``status`` — query a running daemon (queue depth, workers, fleet
  leases, cache).

Use ``--quick`` everywhere for a reduced matrix (class A, 1 repetition);
output is the paper-layout text table (add ``--csv`` for CSV).

Observability flags:

* ``-v/-vv`` (global) — INFO/DEBUG logging to stderr.
* ``--metrics`` — collect and print the run's metrics registry
  (engine/SMM/scheduler/network counters and histograms);
  ``--metrics-format {text,json,prom}`` picks the rendering (``prom``
  is Prometheus textfile-collector exposition format).
* ``--manifest [PATH]`` — write a JSON run manifest (seed, matrix,
  calibration constants, per-cell timings); defaults to
  ``<subcommand>.manifest.json``.

Resilient-sweep flags (any of them routes the table/figure subcommands
through `repro.runx`: crash-isolated worker subprocesses, a fsync'd
checkpoint journal, and graceful degradation — failed cells render as
"-" and the command exits 1 with a failure summary, never a traceback):

* ``--jobs N`` — run up to N cells concurrently (bit-identical output
  to ``--jobs 1``; cell seeds are position-derived).
* ``--timeout S`` — per-cell wall-clock watchdog.
* ``--retries K`` — re-run failed cells up to K times (deterministic
  exponential backoff, per-attempt derived seeds).
* ``--resume MANIFEST`` — skip the cells a previous (possibly killed)
  run already completed, using its recorded parameters and seeds.
* ``--fault-plan FILE`` (or ``REPRO_FAULT_PLAN=FILE``) — inject
  model-level faults (node crashes/hangs, degraded CPUs, clock skew,
  lossy links) *into the simulation* of matching cells; a cell killed by
  its faults is recorded ``failed-in-sim`` (rendered "-", never
  retried) while the rest of the sweep completes normally.
* ``--attr`` — attach the noise-attribution engine to every noisy NAS
  cell: each cell's manifest record gains an ``attribution`` block
  (slowdown decomposition, wait-state census, critical-path summary)
  computed from a capture-enabled replay of the cell's first repetition.

SIGINT/SIGTERM during a resilient sweep drains gracefully: in-flight
cells finish and are journaled, then the command exits 130 with the
``--resume`` hint — never a torn sweep.  A second signal aborts hard.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

__all__ = ["main"]


def _positive_int(text: str) -> int:
    n = int(text)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def _positive_float(text: str) -> float:
    try:
        v = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if v <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return v


def _nonneg_int(text: str) -> int:
    n = int(text)
    if n < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return n


def _nas_class(text: str) -> str:
    from repro.apps.nas.params import NasClass

    try:
        return NasClass(text.upper()).value
    except ValueError:
        valid = ", ".join(c.value for c in NasClass)
        raise argparse.ArgumentTypeError(
            f"unknown NPB class {text!r} (one of {valid})") from None


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--quick", action="store_true", help="reduced matrix, 1 rep")
    p.add_argument("--reps", type=_positive_int, default=None,
                   help="repetitions per cell (>= 1)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", action="store_true", help="emit CSV instead of text")
    p.add_argument("--metrics", action="store_true",
                   help="collect and print run metrics")
    p.add_argument("--metrics-format", choices=("text", "json", "prom"),
                   default="text", help="metrics rendering: human text, "
                   "JSON snapshot, or Prometheus exposition format")
    p.add_argument("--manifest", nargs="?", const="auto", default=None,
                   metavar="PATH", help="write a JSON run manifest "
                   "(default <subcommand>.manifest.json)")
    resilient = p.add_argument_group(
        "resilient sweep (repro.runx)",
        "any of these runs the sweep crash-isolated and checkpointed",
    )
    resilient.add_argument("--jobs", type=_positive_int, default=None,
                           metavar="N", help="cells to run in parallel")
    resilient.add_argument("--timeout", type=_positive_float, default=None,
                           metavar="S",
                           help="per-cell wall-clock watchdog (seconds, > 0)")
    resilient.add_argument("--retries", type=_nonneg_int, default=None,
                           metavar="K", help="retry failed cells up to K times")
    resilient.add_argument("--resume", default=None, metavar="MANIFEST",
                           help="resume an interrupted sweep from its "
                           "manifest/journal")
    resilient.add_argument("--fault-plan", default=None, metavar="FILE",
                           help="inject model-level faults from this JSON "
                           "plan into matching cells' simulations "
                           "(env: REPRO_FAULT_PLAN)")
    resilient.add_argument("--attr", action="store_true", default=None,
                           help="attach an 'attribution' block (slowdown "
                           "decomposition, wait states, critical path) to "
                           "every noisy NAS cell in the manifest")


def _setup_logging(verbosity: int) -> None:
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    logging.basicConfig(
        stream=sys.stderr,
        level=level,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
    )


def _obs_kwargs(args: argparse.Namespace, params: dict):
    """(manifest, registry) per the common flags, plus handler kwargs."""
    from repro.obs import MetricsRegistry, RunManifest

    manifest = None
    if getattr(args, "manifest", None) is not None:
        manifest = RunManifest(command=args.cmd, params=params)
    registry = MetricsRegistry() if getattr(args, "metrics", False) else None
    return manifest, registry


def _print_metrics(args: argparse.Namespace, registry) -> None:
    fmt = getattr(args, "metrics_format", "text")
    if fmt == "json":
        import json

        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    elif fmt == "prom":
        print(registry.render_prom(), end="")
    else:
        print("\n-- metrics " + "-" * 49)
        print(registry.render())


def _finish_obs(args: argparse.Namespace, manifest, registry) -> None:
    if registry is not None:
        _print_metrics(args, registry)
    if manifest is not None:
        path = args.manifest
        if path == "auto":
            path = f"{args.cmd}.manifest.json"
        manifest.write(path)
        print(f"manifest written to {path}", file=sys.stderr)


def _resilient_requested(args: argparse.Namespace) -> bool:
    import os

    if any(
        getattr(args, flag, None) is not None
        for flag in ("jobs", "timeout", "retries", "resume", "fault_plan",
                     "attr")
    ):
        return True
    # A fault plan in the environment also opts in: model-level faults
    # only make sense under the runner that understands failed-in-sim.
    if hasattr(args, "fault_plan"):
        from repro.faults import PLAN_ENV

        return bool(os.environ.get(PLAN_ENV))
    return False


def _load_fault_plan(path: Optional[str]):
    """``(plan, resolved_path, error)`` for a ``--fault-plan``/env path —
    all ``None`` when no plan is configured, ``error`` set on a bad one."""
    from repro.faults import PLAN_ENV, FaultPlan

    if path is None:
        import os

        path = os.environ.get(PLAN_ENV) or None
    if not path:
        return None, None, None
    try:
        return FaultPlan.load(path), path, None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        return None, path, f"bad fault plan {path}: {exc}"


def _with_faults(specs, plan):
    """Rewrite every spec a plan rule matches so its params carry the
    matching rule records — the executor arms them in-simulation.  The
    rewrite changes those specs' digests, which is correct: a faulted
    cell's payload is not interchangeable with a clean one."""
    from repro.runx import CellSpec

    out, hit = [], 0
    for spec in specs:
        rules = plan.rules_for(spec.id)
        if rules:
            hit += 1
            out.append(CellSpec(
                id=spec.id, fn=spec.fn, base_seed=spec.base_seed,
                params={**spec.params,
                        "faults": [r.to_record() for r in rules]},
            ))
        else:
            out.append(spec)
    return out, hit


def _with_attr(specs):
    """Rewrite every NAS spec so its executor runs the attribution engine
    alongside the cell.  Like ``--fault-plan``, the rewrite changes the
    specs' digests — an attributed cell's payload carries an extra block,
    so it must not be interchangeable with a plain one on resume."""
    from repro.runx import CellSpec

    out = []
    for spec in specs:
        if spec.fn == "nas":
            out.append(CellSpec(
                id=spec.id, fn=spec.fn, base_seed=spec.base_seed,
                params={**spec.params, "attr": True},
            ))
        else:
            out.append(spec)
    return out


def _resilient_run(args: argparse.Namespace, specs_fn, render_fn,
                   extra_params: Optional[dict] = None) -> int:
    """Shared driver for all table/figure subcommands in runx mode.

    ``specs_fn(quick, reps, seed)`` builds the cell specs;
    ``render_fn(quick, results)`` reduces ``{id: CellResult}`` to the
    printable artifact.  Every completed cell is checkpointed to
    ``<manifest>.part.jsonl``; on full success the v2 manifest is
    finalized atomically and the journal removed, otherwise the journal
    stays behind for ``--resume`` and the exit code is 1.
    """
    import os
    import signal

    from repro.obs import MetricsRegistry, RunManifest
    from repro.runx import (
        FAILED_IN_SIM,
        Journal,
        LockHeldError,
        SweepRunner,
        load_resume,
        part_path,
    )

    quick, seed = args.quick, args.seed
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    attr = bool(getattr(args, "attr", None))
    fault_plan_path = getattr(args, "fault_plan", None)
    if fault_plan_path is None:
        from repro.faults import PLAN_ENV

        fault_plan_path = os.environ.get(PLAN_ENV) or None
    completed = {}
    if args.resume:
        try:
            header, completed = load_resume(args.resume)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if header:
            if header.get("command") and header["command"] != args.cmd:
                print(
                    f"error: {args.resume} records a "
                    f"{header['command']!r} run, not {args.cmd!r}",
                    file=sys.stderr,
                )
                return 2
            # The recorded run parameters win: resume must re-create the
            # original matrix and seeds, not whatever the new command
            # line happens to say.
            recorded = {k: header[k]
                        for k in ("quick", "reps", "seed", "fault_plan",
                                  "attr")
                        if k in header and header[k] is not None}
            if recorded:
                current = {"quick": quick, "reps": reps, "seed": seed,
                           "fault_plan": fault_plan_path, "attr": attr}
                drift = {k: (current[k], v) for k, v in recorded.items()
                         if current[k] != v}
                if drift:
                    print(f"resume: using recorded parameters {recorded} "
                          f"(command line differs: {sorted(drift)})",
                          file=sys.stderr)
                quick = recorded.get("quick", quick)
                reps = recorded.get("reps", reps)
                seed = recorded.get("seed", seed)
                fault_plan_path = recorded.get("fault_plan", fault_plan_path)
                attr = recorded.get("attr", attr)
        print(f"resume: {len(completed)} cells already complete",
              file=sys.stderr)

    plan, fault_plan_path, plan_err = _load_fault_plan(fault_plan_path)
    if plan_err is not None:
        print(f"error: {plan_err}", file=sys.stderr)
        return 2

    jobs = args.jobs or 1
    retries = args.retries or 0
    manifest_path = args.resume or args.manifest
    if manifest_path in (None, "auto"):
        manifest_path = f"{args.cmd}.manifest.json"
    params = {"quick": quick, "reps": reps, "seed": seed, "jobs": jobs,
              "timeout_s": args.timeout, "retries": retries,
              **(extra_params or {})}
    if fault_plan_path:
        params["fault_plan"] = fault_plan_path
    if attr:
        params["attr"] = True
    specs = specs_fn(quick, reps, seed)
    if attr:
        specs = _with_attr(specs)
    if plan is not None:
        specs, hit = _with_faults(specs, plan)
        print(f"fault plan {fault_plan_path}: {len(plan.rules)} rules, "
              f"{hit}/{len(specs)} cells armed", file=sys.stderr)
    manifest = RunManifest(command=args.cmd, params=params, mode="journal")
    for spec in specs:
        manifest.plan_cell(id=spec.id, fn=spec.fn,
                           base_seed=spec.base_seed, **spec.params)
    journal = Journal(manifest_path)
    registry = MetricsRegistry() if args.metrics else None
    progress = (
        (lambda msg: print(msg, file=sys.stderr)) if args.verbose else None)
    runner = SweepRunner(
        jobs=jobs, timeout_s=args.timeout, retries=retries,
        metrics=registry, manifest=manifest, journal=journal,
        progress=progress,
    )

    resume_hint = f"repro-smm {args.cmd} --resume {manifest_path}"

    def _on_signal(signum, frame):
        if runner.draining:
            raise KeyboardInterrupt  # second signal: abort hard
        runner.request_drain()
        name = signal.Signals(signum).name
        print(f"{name}: draining — in-flight cells will finish and be "
              f"journaled (send again to abort)", file=sys.stderr)

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover — not the main thread
            pass
    try:
        if not os.path.exists(part_path(manifest_path)):
            header = {"command": args.cmd, "quick": quick, "reps": reps,
                      "seed": seed}
            if fault_plan_path:
                header["fault_plan"] = fault_plan_path
            if attr:
                header["attr"] = True
            journal.write_header(header)
            for prior in completed.values():
                journal.append(prior)
        results = runner.run(specs, completed=completed)
    except LockHeldError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        journal.close()  # the flock must not outlive the run
    if runner.draining:
        print(f"sweep drained: {len(results)}/{len(specs)} cells complete "
              f"and journaled\nresume with: {resume_hint}", file=sys.stderr)
        return 130
    print(render_fn(quick, results))
    if registry is not None:
        _print_metrics(args, registry)
    manifest.write(manifest_path)
    failed = sorted(r.id for r in results.values() if not r.ok)
    if failed:
        insim = sorted(r.id for r in results.values()
                       if r.status == FAILED_IN_SIM)
        shown = ", ".join(failed[:8]) + (" …" if len(failed) > 8 else "")
        note = ""
        if insim:
            note = (f" ({len(insim)} failed in simulation under the fault "
                    f"plan — deterministic, not retried)")
        print(
            f"{len(failed)}/{len(results)} cells failed: {shown}{note}\n"
            f"(failed cells render as '-'; retry them with: "
            f"repro-smm {args.cmd} --resume {manifest_path})",
            file=sys.stderr,
        )
        return 1
    journal.finalize()
    print(f"manifest written to {manifest_path}", file=sys.stderr)
    return 0


def _mpi_table(bench: str, args: argparse.Namespace) -> int:
    from repro.harness.mpi_tables import build_table, render

    if _resilient_requested(args):
        from repro.harness.mpi_tables import assemble_table, table_cell_specs

        return _resilient_run(
            args,
            lambda quick, reps, seed: table_cell_specs(bench, quick, reps, seed),
            lambda quick, results: render(
                bench, assemble_table(bench, quick, results), csv=args.csv),
            extra_params={"bench": bench},
        )
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    manifest, registry = _obs_kwargs(
        args, {"bench": bench, "quick": args.quick, "reps": reps,
               "seed": args.seed})
    halves = build_table(bench, quick=args.quick, reps=reps, seed=args.seed,
                         manifest=manifest, metrics=registry)
    print(render(bench, halves, csv=args.csv))
    _finish_obs(args, manifest, registry)
    return 0


def _htt_table(bench: str, args: argparse.Namespace) -> int:
    from repro.harness.htt_tables import build_htt_table, render_htt

    if _resilient_requested(args):
        from repro.harness.htt_tables import assemble_htt_table, htt_cell_specs

        return _resilient_run(
            args,
            lambda quick, reps, seed: htt_cell_specs(bench, quick, reps, seed),
            lambda quick, results: render_htt(
                bench, assemble_htt_table(bench, quick, results)),
            extra_params={"bench": bench, "ranks_per_node": 4},
        )
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    manifest, registry = _obs_kwargs(
        args, {"bench": bench, "quick": args.quick, "reps": reps,
               "seed": args.seed, "ranks_per_node": 4})
    rows = build_htt_table(bench, quick=args.quick, reps=reps, seed=args.seed,
                           manifest=manifest, metrics=registry)
    print(render_htt(bench, rows))
    _finish_obs(args, manifest, registry)
    return 0


def _figure1(args: argparse.Namespace) -> int:
    from repro.harness.figure1 import build_figure1, render_figure1

    if _resilient_requested(args):
        from repro.harness.figure1 import assemble_figure1, figure1_cell_specs

        return _resilient_run(
            args,
            lambda quick, reps, seed: figure1_cell_specs(quick, seed),
            lambda quick, results: render_figure1(
                assemble_figure1(quick, results), csv=args.csv),
        )
    manifest, registry = _obs_kwargs(
        args, {"quick": args.quick, "seed": args.seed})
    data = build_figure1(quick=args.quick, seed=args.seed,
                         manifest=manifest, metrics=registry)
    print(render_figure1(data, csv=args.csv))
    _finish_obs(args, manifest, registry)
    return 0


def _figure2(args: argparse.Namespace) -> int:
    from repro.harness.figure2 import build_figure2, render_figure2

    if _resilient_requested(args):
        from repro.harness.figure2 import assemble_figure2, figure2_cell_specs

        return _resilient_run(
            args,
            lambda quick, reps, seed: figure2_cell_specs(quick, seed),
            lambda quick, results: render_figure2(
                assemble_figure2(quick, results), csv=args.csv),
        )
    manifest, registry = _obs_kwargs(
        args, {"quick": args.quick, "seed": args.seed})
    data = build_figure2(quick=args.quick, seed=args.seed,
                         manifest=manifest, metrics=registry)
    print(render_figure2(data, csv=args.csv))
    _finish_obs(args, manifest, registry)
    return 0


def _trace(args: argparse.Namespace) -> int:
    """Run one MPI scenario with full tracing and export the artifacts."""
    import repro
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config
    from repro.obs import MetricsRegistry, write_chrome_trace, write_jsonl
    from repro.simx.timeline import Timeline

    if args.quick:
        bench, cls, nodes, rpn = "EP", NasClass.A, 2, 1
    else:
        bench, cls, nodes, rpn = (
            args.bench, NasClass(args.cls), args.nodes, args.rpn,
        )
    cfg = NasConfig(bench, cls, nodes=nodes, ranks_per_node=rpn)
    timeline = Timeline()
    registry = MetricsRegistry() if args.metrics else None
    elapsed = run_nas_config(
        cfg, smm=args.smm, seed=args.seed,
        interval_jiffies=args.interval,
        timeline=timeline, metrics=registry, trace=True,
    )
    if elapsed is None:
        print(f"configuration {cfg.label} is infeasible", file=sys.stderr)
        return 2
    out = args.out or (
        f"{bench.lower()}-{cls.value.lower()}-n{nodes}-smm{args.smm}.trace.json"
    )
    n = write_chrome_trace(
        timeline, out,
        nodes=[f"node{i}" for i in range(nodes)],
        extra={
            "bench": bench, "class": cls.value, "nodes": nodes,
            "ranks_per_node": rpn, "smm": args.smm,
            "interval_jiffies": args.interval, "seed": args.seed,
            "elapsed_s": elapsed, "version": repro.__version__,
        },
    )
    print(f"{cfg.label} smm={args.smm}: {elapsed:.2f}s simulated")
    print(f"wrote {out} ({n} events) — open in https://ui.perfetto.dev "
          "or chrome://tracing")
    if args.jsonl:
        lines = write_jsonl(timeline, args.jsonl)
        print(f"wrote {args.jsonl} ({lines} records)")
    if registry is not None:
        _print_metrics(args, registry)
    return 0


def _explain(args: argparse.Namespace) -> int:
    """Attribute one cell's slowdown and print the breakdown.

    Exit codes: 0 ok, 2 infeasible configuration or unusable arguments,
    3 conservation violation (the decomposition's residual exceeded the
    tolerance — the attribution model is missing something, and CI
    treats that as a failure).
    """
    import json

    import repro
    from repro.obs import MetricsRegistry, write_chrome_trace
    from repro.obs.attr import attribute_cell, render_explain
    from repro.paperdata import paper_cell

    if args.quick:
        bench, cls, nodes, rpn = "EP", "A", 2, 1
    else:
        bench, cls, nodes, rpn = args.bench, args.cls, args.nodes, args.rpn
    if args.smm == 0:
        print("error: --smm 0 has nothing to attribute (pick 1 or 2)",
              file=sys.stderr)
        return 2
    registry = MetricsRegistry() if args.metrics else None
    a = attribute_cell(
        bench, cls=cls, nodes=nodes, rpn=rpn, smm=args.smm,
        seed=args.seed, interval_jiffies=args.interval,
        metrics=registry, trace=args.trace is not None,
        tolerance=args.tolerance,
    )
    if a is None:
        print(f"configuration {bench}.{cls} n={nodes}×{rpn} is infeasible",
              file=sys.stderr)
        return 2
    from repro.apps.nas.params import NasClass

    try:
        paper = paper_cell(bench, rpn, NasClass(cls), nodes)
    except KeyError:
        paper = None
    print(render_explain(a.report, paper=paper))
    if args.report:
        with open(args.report, "w") as fp:
            json.dump(a.report, fp, indent=2)
        print(f"report written to {args.report}", file=sys.stderr)
    if args.trace:
        n = write_chrome_trace(
            a.noisy_timeline, args.trace,
            nodes=[f"node{i}" for i in range(nodes)],
            extra={
                "bench": bench, "class": cls, "nodes": nodes,
                "ranks_per_node": rpn, "smm": args.smm,
                "interval_jiffies": args.interval, "seed": args.seed,
                "version": repro.__version__,
            },
        )
        print(f"trace written to {args.trace} ({n} events)", file=sys.stderr)
    if registry is not None:
        _print_metrics(args, registry)
    if not a.decomposition.conserved:
        print(
            f"conservation VIOLATED: |residual| = "
            f"{100.0 * a.decomposition.residual_frac:.2f}% of slowdown "
            f"(tolerance {100.0 * a.decomposition.tolerance:.1f}%)",
            file=sys.stderr,
        )
        return 3
    return 0


def _sweep_builders(what: str, csv: bool):
    """``(specs_fn, render_fn)`` for a submittable sweep name — the same
    builders the table/figure subcommands use, so a served sweep renders
    byte-identically to a local one."""
    mpi = {"table1": "BT", "table2": "EP", "table3": "FT"}
    htt = {"table4": "EP", "table5": "FT"}
    if what in mpi:
        from repro.harness.mpi_tables import (
            assemble_table, render, table_cell_specs)

        bench = mpi[what]
        return (
            lambda quick, reps, seed: table_cell_specs(
                bench, quick, reps, seed),
            lambda quick, results: render(
                bench, assemble_table(bench, quick, results), csv=csv),
        )
    if what in htt:
        from repro.harness.htt_tables import (
            assemble_htt_table, htt_cell_specs, render_htt)

        bench = htt[what]
        return (
            lambda quick, reps, seed: htt_cell_specs(
                bench, quick, reps, seed),
            lambda quick, results: render_htt(
                bench, assemble_htt_table(bench, quick, results)),
        )
    if what == "figure1":
        from repro.harness.figure1 import assemble_figure1, figure1_cell_specs

        return (
            lambda quick, reps, seed: figure1_cell_specs(quick, seed),
            lambda quick, results: __import__(
                "repro.harness.figure1", fromlist=["render_figure1"],
            ).render_figure1(assemble_figure1(quick, results), csv=csv),
        )
    if what == "figure2":
        from repro.harness.figure2 import assemble_figure2, figure2_cell_specs

        return (
            lambda quick, reps, seed: figure2_cell_specs(quick, seed),
            lambda quick, results: __import__(
                "repro.harness.figure2", fromlist=["render_figure2"],
            ).render_figure2(assemble_figure2(quick, results), csv=csv),
        )
    raise ValueError(f"unknown sweep {what!r}")


def _parse_hostport(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _client_from_args(args: argparse.Namespace):
    from repro.serve import ServeClient

    if getattr(args, "tcp", None):
        return ServeClient(tcp=args.tcp, timeout_s=args.wait_timeout)
    return ServeClient(socket_path=args.socket, timeout_s=args.wait_timeout)


def _serve(args: argparse.Namespace) -> int:
    """Run the sweep-serving daemon in the foreground, or dispatch an
    operator action (``repro-smm serve clear-quarantine``) to it."""
    from repro.runx import LockHeldError
    from repro.serve import ServeConfig
    from repro.serve.daemon import run

    if args.action == "clear-quarantine":
        return _clear_quarantine(args)
    if args.workers < 0:
        print("error: --workers must be >= 0 (0 runs a pure-fleet daemon)",
              file=sys.stderr)
        return 2
    config = ServeConfig(
        state_dir=args.state_dir,
        socket_path=args.socket,
        tcp=args.tcp,
        workers=args.workers,
        timeout_s=args.timeout,
        hb_timeout_s=args.hb_timeout,
        max_attempts=args.max_attempts,
        max_pending=args.max_pending,
        lease_s=args.lease_s,
    )
    try:
        return run(config)
    except LockHeldError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _clear_quarantine(args: argparse.Namespace) -> int:
    """Forget circuit-broken cells: via the live daemon's socket when one
    is up, else offline against the state directory (taking the daemon
    lock so we can never race a live process)."""
    from repro.runx import LockHeldError, SingleWriterLock
    from repro.serve import DurableQueue, ServeClient, ServeError

    sock = args.socket or os.path.join(args.state_dir, "serve.sock")
    if os.path.exists(sock):
        try:
            rep = ServeClient(socket_path=sock).clear_quarantine()
            print(f"cleared {rep.get('cleared', 0)} quarantined cell(s)")
            return 0
        except ServeError as exc:
            if exc.code != "unreachable":
                print(f"error: {exc}", file=sys.stderr)
                return 2
            # Stale socket from a dead daemon: fall through to offline.
    lock = SingleWriterLock(os.path.join(args.state_dir, "daemon.lock"))
    try:
        lock.acquire()
    except LockHeldError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        queue = DurableQueue(os.path.join(args.state_dir, "queue.jsonl"))
        state = queue.replay()
        cleared = len(state.quarantined)
        state.quarantined = {}
        queue.compact(state)
        print(f"cleared {cleared} quarantined cell(s) (offline)")
        return 0
    finally:
        lock.release()


def _worker(args: argparse.Namespace) -> int:
    """Run one remote worker agent against a daemon's TCP listener."""
    from repro.serve.agent import AgentConfig, run

    return run(AgentConfig(
        connect=args.connect,
        name=args.name or "",
        hb_s=args.hb,
        child_hb_timeout_s=args.child_hb_timeout,
        backoff_s=args.backoff,
        max_backoff_s=args.max_backoff,
    ))


def _submit(args: argparse.Namespace) -> int:
    """Send one sweep to a running daemon; render the served results."""
    import json

    from repro.obs import RunManifest
    from repro.runx import FAILED, FAILED_IN_SIM, OK, CellResult
    from repro.serve import ServeError

    quick, seed = args.quick, args.seed
    reps = args.reps if args.reps is not None else (1 if quick else 3)
    specs_fn, render_fn = _sweep_builders(args.what, args.csv)
    specs = specs_fn(quick, reps, seed)
    if args.attr:
        specs = _with_attr(specs)
    plan, fault_plan_path, plan_err = _load_fault_plan(args.fault_plan)
    if plan_err is not None:
        print(f"error: {plan_err}", file=sys.stderr)
        return 2
    if plan is not None:
        specs, hit = _with_faults(specs, plan)
        print(f"fault plan {fault_plan_path}: {len(plan.rules)} rules, "
              f"{hit}/{len(specs)} cells armed", file=sys.stderr)
    client = _client_from_args(args)
    try:
        rep = client.submit([s.to_record() for s in specs], wait=True,
                            retries=args.retries)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return (3 if exc.code in ("saturated", "unavailable", "draining")
                else 2)
    by_id = {e["id"]: e for e in rep.get("cells", [])}
    results = {}
    for spec in specs:
        e = by_id.get(spec.id)
        if e is None:
            continue
        status = e.get("status")
        if status == "ok":
            results[spec.id] = CellResult(
                id=spec.id, status=OK, value=e.get("value"),
                attempts=e.get("attempts", 1), seed=spec.base_seed,
                digest=e.get("digest"))
        else:
            results[spec.id] = CellResult(
                id=spec.id,
                status=FAILED_IN_SIM if status == "failed-in-sim" else FAILED,
                attempts=e.get("attempts", 1), seed=spec.base_seed,
                error=e.get("error"), digest=e.get("digest"),
                fault=e.get("fault"))
    print(render_fn(quick, results))
    stats = rep.get("stats", {})
    print("served: "
          f"{stats.get('cached', 0)} cached, "
          f"{stats.get('coalesced', 0)} coalesced, "
          f"{stats.get('submitted', 0)} computed, "
          f"{stats.get('quarantined', 0)} quarantined", file=sys.stderr)
    if args.out:
        # Deterministic results document: digests + payloads only, no
        # timestamps — two byte-identical files mean two identical runs.
        doc = {
            "schema": 1,
            "what": args.what,
            "params": {"quick": quick, "reps": reps, "seed": seed},
            "cells": {
                r.id: {"digest": r.digest, "status": r.status,
                       "value": r.value}
                for r in results.values()
            },
        }
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(doc, fp, indent=1, sort_keys=True)
            fp.write("\n")
        print(f"results written to {args.out}", file=sys.stderr)
    if args.manifest:
        manifest = RunManifest(
            command=args.what, mode="served",
            params={"quick": quick, "reps": reps, "seed": seed,
                    "endpoint": args.socket or f"{args.tcp[0]}:{args.tcp[1]}",
                    **({"fault_plan": fault_plan_path}
                       if fault_plan_path else {}),
                    **({"attr": True} if args.attr else {})})
        for spec in specs:
            manifest.plan_cell(id=spec.id, fn=spec.fn,
                               base_seed=spec.base_seed, **spec.params)
        for r in results.values():
            e = by_id.get(r.id, {})
            manifest.add_cell(
                r.id, **{**{k: v for k, v in r.to_record().items()
                            if k != "kind"},
                         "cached": bool(e.get("cached")),
                         "coalesced": bool(e.get("coalesced"))})
        path = args.manifest
        if path == "auto":
            path = f"{args.what}.served.manifest.json"
        manifest.write(path)
        print(f"manifest written to {path}", file=sys.stderr)
    failed = sorted(r.id for r in results.values() if not r.ok)
    if failed or len(results) != len(specs):
        shown = ", ".join(failed[:8]) + (" …" if len(failed) > 8 else "")
        print(f"{len(failed)}/{len(specs)} cells failed: {shown}",
              file=sys.stderr)
        return 1
    return 0


def _serve_status(args: argparse.Namespace) -> int:
    """Query a running daemon."""
    import json

    from repro.serve import ServeError

    client = _client_from_args(args)
    try:
        if args.prom:
            print(client.metrics(), end="")
            return 0
        st = client.status()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(st, indent=2, sort_keys=True))
        return 0
    workers = st.get("workers", [])
    busy = sum(1 for w in workers if w.get("state") == "busy")
    print(f"serve: up {st.get('uptime_s', 0):.1f}s, "
          f"{len(workers)} workers ({busy} busy), "
          f"{st.get('inflight', 0)} in flight, "
          f"{st.get('queued', 0)} queued, "
          f"{st.get('quarantined', 0)} quarantined"
          + (", DRAINING" if st.get("draining") else ""))
    cache = st.get("cache", {})
    print(f"cache: {cache.get('entries', 0)} entries at "
          f"{cache.get('root', '?')}")
    engine = st.get("engine", {})
    if engine:
        bl = engine.get("baseline_cache", {})
        print(f"engine: {engine.get('name', '?')}, baseline cache "
              f"{bl.get('entries', 0)} entries "
              f"({bl.get('hits', 0)} hits, {bl.get('misses', 0)} misses, "
              f"{bl.get('evictions', 0)} evictions)")
        sc = engine.get("snapshot_cache", {})
        if sc:
            print(f"        snapshot cache: {sc.get('hits', 0)} hits, "
                  f"{sc.get('misses', 0)} misses, "
                  f"{sc.get('evictions', 0)} evictions, "
                  f"{sc.get('forks', 0)} forks")
    for w in workers:
        print(f"  worker {w['slot']}: pid {w.get('pid')} {w['state']}"
              + (f" job {w['job']}" if w.get("job") else "")
              + f" ({w['jobs_done']} done, {w['restarts']} restarts)")
    fleet = st.get("fleet") or {}
    remotes = fleet.get("workers", [])
    leases = fleet.get("leases", [])
    if remotes or leases:
        print(f"fleet: epoch {fleet.get('epoch')}, "
              f"{len(remotes)} remote worker(s), {len(leases)} lease(s)")
        for w in remotes:
            print(f"  remote {w['worker_id']} @{w.get('addr', '?')}: "
                  f"{len(w.get('leases', []))} leased, "
                  f"{w.get('jobs_done', 0)} done, "
                  f"idle {w.get('idle_s', 0):.1f}s")
        for lease in leases:
            print(f"  lease {lease['digest'][:12]} -> "
                  f"{lease['worker_id']} (token {lease['token']}, "
                  f"expires in {lease.get('expires_in_s', 0):.1f}s)")
    counters = st.get("counters", {})
    for name in sorted(counters):
        print(f"  {name:<32} {counters[name]:g}")
    return 0


def _detect(args: argparse.Namespace) -> int:
    from repro.core.detector import host_gap_scan

    rep = host_gap_scan(window_s=args.window)
    print(
        f"scanned {rep.window_ns / 1e9:.2f}s, {rep.samples} samples, "
        f"threshold {rep.threshold_ns / 1e3:.0f}µs"
    )
    print(f"gaps: {rep.detected}, max {rep.max_gap_ns() / 1e6:.3f}ms, "
          f"total {rep.total_gap_ns / 1e6:.3f}ms, "
          f"BIOSBITS(150µs) violations: {rep.biosbits_violations}")
    for g in rep.gaps[:20]:
        print(f"  at +{g.at_ns / 1e6:10.3f}ms  width {g.width_ns / 1e3:9.1f}µs")
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import derive_work_units, fit_network_quality

    print("work-unit derivation (paper 1-rank base × solo rate):")
    for row in derive_work_units():
        print(
            f"  {row.bench}.{row.cls.value}: paper {row.paper_s:>8.2f}s → "
            f"{row.derived_work:.4g} units (stored {row.stored_work:.4g}, "
            f"err {100 * row.relative_error:.2g}%)"
        )
    if not args.quick:
        print("network-fit quality (simulated vs paper base cells):")
        for (bench, ranks), (sim, paper) in fit_network_quality(seed=args.seed).items():
            print(f"  {bench} @{ranks} ranks: sim {sim:7.2f}s  paper {paper:7.2f}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-smm",
        description="SMM/SMI noise study reproduction (ICPP 2016)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: INFO logging to stderr, -vv: DEBUG",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    for bench, name in (("BT", "table1"), ("EP", "table2"), ("FT", "table3")):
        p = sub.add_parser(name, help=f"{bench} MPI table")
        _add_common(p)
        p.set_defaults(fn=lambda a, b=bench: _mpi_table(b, a))
    for bench, name in (("EP", "table4"), ("FT", "table5")):
        p = sub.add_parser(name, help=f"HTT × SMI table for {bench}")
        _add_common(p)
        p.set_defaults(fn=lambda a, b=bench: _htt_table(b, a))
    p = sub.add_parser("figure1", help="Convolve sweeps")
    _add_common(p)
    p.set_defaults(fn=_figure1)
    p = sub.add_parser("figure2", help="UnixBench sweeps")
    _add_common(p)
    p.set_defaults(fn=_figure2)
    p = sub.add_parser(
        "trace", help="run one scenario and export a Perfetto/Chrome trace")
    p.add_argument("--bench", default="EP", choices=("EP", "BT", "FT"))
    p.add_argument("--cls", default="A", type=_nas_class, metavar="CLASS",
                   help="NAS problem class (A, B, or C; case-insensitive)")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--rpn", type=int, default=1, help="MPI ranks per node")
    p.add_argument("--smm", type=int, default=2, choices=(0, 1, 2),
                   help="SMI class: 0 none, 1 short, 2 long")
    p.add_argument("--interval", type=int, default=1000,
                   help="SMI interval in jiffies (1 jiffy = 1 ms)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--quick", action="store_true",
                   help="shorthand for the tiny EP.A 2-node scenario")
    p.add_argument("-o", "--out", default=None,
                   help="output path (default <scenario>.trace.json)")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="also dump raw timeline records as JSON Lines")
    p.add_argument("--metrics", action="store_true",
                   help="collect and print run metrics")
    p.add_argument("--metrics-format", choices=("text", "json", "prom"),
                   default="text", help="metrics rendering")
    p.set_defaults(fn=_trace)
    p = sub.add_parser(
        "explain",
        help="attribute one cell's slowdown (decomposition, wait states, "
             "critical path)")
    p.add_argument("--bench", default="BT", choices=("EP", "BT", "FT"))
    p.add_argument("--cls", default="A", type=_nas_class, metavar="CLASS",
                   help="NAS problem class (A, B, or C; case-insensitive)")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--rpn", type=int, default=1, help="MPI ranks per node")
    p.add_argument("--smm", type=int, default=2, choices=(0, 1, 2),
                   help="SMI class to attribute: 1 short, 2 long")
    p.add_argument("--interval", type=int, default=1000,
                   help="SMI interval in jiffies (1 jiffy = 1 ms)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--quick", action="store_true",
                   help="shorthand for the tiny EP.A 2-node scenario")
    p.add_argument("--tolerance", type=_positive_float, default=0.05,
                   help="conservation tolerance (fraction of the slowdown)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="also write the attribution report as JSON")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also export the noisy run's Chrome trace (with "
                   "wait-state slices and counter tracks)")
    p.add_argument("--metrics", action="store_true",
                   help="collect and print run metrics")
    p.add_argument("--metrics-format", choices=("text", "json", "prom"),
                   default="text", help="metrics rendering")
    p.set_defaults(fn=_explain)
    p = sub.add_parser("detect", help="host-native SMI/latency gap scan")
    p.add_argument("--window", type=float, default=1.0, help="seconds to scan")
    p.set_defaults(fn=_detect)
    p = sub.add_parser("calibrate", help="print calibration derivation")
    _add_common(p)
    p.set_defaults(fn=_calibrate)
    p = sub.add_parser(
        "serve",
        help="run the sweep-serving daemon (durable queue, worker pool, "
             "remote worker fleet, content-addressed result cache)")
    p.add_argument("action", nargs="?", default="run",
                   choices=("run", "clear-quarantine"),
                   help="'run' (default) starts the daemon; "
                        "'clear-quarantine' forgets every circuit-broken "
                        "cell (live via the socket, else offline)")
    p.add_argument("--state-dir", default="serve-state",
                   help="journal, cache, lock, and default socket live here")
    p.add_argument("--socket", default=None,
                   help="unix socket path (default <state-dir>/serve.sock)")
    p.add_argument("--tcp", type=_parse_hostport, default=None,
                   metavar="HOST:PORT",
                   help="also listen on TCP (required for remote workers)")
    p.add_argument("--workers", type=int, default=2,
                   help="local pool size; 0 runs a pure-fleet daemon "
                        "served only by remote workers")
    p.add_argument("--timeout", type=_positive_float, default=300.0,
                   help="per-cell watchdog deadline in seconds")
    p.add_argument("--hb-timeout", type=_positive_float, default=10.0,
                   help="kill a worker whose heartbeats stop for this long")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="quarantine a cell after this many failed attempts")
    p.add_argument("--max-pending", type=int, default=256,
                   help="reject submissions past this many in-flight cells")
    p.add_argument("--lease-s", type=_positive_float, default=15.0,
                   help="revoke a remote lease after this long without a "
                        "heartbeat")
    p.set_defaults(fn=_serve)
    p = sub.add_parser(
        "worker",
        help="run a remote worker agent that pulls leased cells from a "
             "daemon's TCP listener")
    p.add_argument("--connect", type=_parse_hostport, required=True,
                   metavar="HOST:PORT", help="the daemon's TCP endpoint")
    p.add_argument("--name", default=None,
                   help="worker name in status output (default: hostname)")
    p.add_argument("--hb", type=_positive_float, default=1.0,
                   help="seconds between lease heartbeats")
    p.add_argument("--child-hb-timeout", type=_positive_float, default=10.0,
                   help="kill the cell subprocess if it goes silent for "
                        "this long")
    p.add_argument("--backoff", type=_positive_float, default=0.5,
                   help="base reconnect backoff in seconds")
    p.add_argument("--max-backoff", type=_positive_float, default=15.0,
                   help="reconnect backoff ceiling in seconds")
    p.set_defaults(fn=_worker)
    p = sub.add_parser(
        "submit", help="send a table/figure sweep to a running daemon")
    p.add_argument("what", choices=("table1", "table2", "table3", "table4",
                                    "table5", "figure1", "figure2"))
    p.add_argument("--quick", action="store_true",
                   help="reduced grid (same shape, small classes)")
    p.add_argument("--reps", type=int, default=None,
                   help="repetitions per cell (default 3, 1 with --quick)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", action="store_true",
                   help="emit CSV instead of the aligned table")
    p.add_argument("--attr", action="store_true",
                   help="run the attribution engine alongside each NAS cell")
    p.add_argument("--fault-plan", default=None, metavar="PATH",
                   help="inject model-level faults from a JSON plan")
    p.add_argument("--socket", default="serve-state/serve.sock",
                   help="daemon unix socket")
    p.add_argument("--tcp", type=_parse_hostport, default=None,
                   metavar="HOST:PORT", help="reach the daemon over TCP")
    p.add_argument("--wait-timeout", type=_positive_float, default=600.0,
                   help="client-side reply timeout in seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="retry retryable refusals (saturated/unavailable) "
                        "this many times with decorrelated-jitter backoff")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write a deterministic results JSON document")
    p.add_argument("--manifest", default=None, metavar="PATH",
                   help="also write a v2 run manifest ('auto' for a "
                        "derived name)")
    p.set_defaults(fn=_submit)
    p = sub.add_parser("status", help="query a running daemon")
    p.add_argument("--socket", default="serve-state/serve.sock",
                   help="daemon unix socket")
    p.add_argument("--tcp", type=_parse_hostport, default=None,
                   metavar="HOST:PORT", help="reach the daemon over TCP")
    p.add_argument("--wait-timeout", type=_positive_float, default=30.0,
                   help="client-side reply timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="print the raw status reply as JSON")
    p.add_argument("--prom", action="store_true",
                   help="print the daemon's Prometheus metrics text")
    p.set_defaults(fn=_serve_status)
    args = parser.parse_args(argv)
    _setup_logging(args.verbose)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
