"""repro-smm — command-line front end.

Subcommands regenerate the paper's artifacts or run the tools:

* ``table1|table2|table3`` — the MPI study tables (BT/EP/FT).
* ``table4|table5`` — the HTT × SMI tables (EP/FT at 4 ranks/node).
* ``figure1`` — Convolve sweeps; ``figure2`` — UnixBench sweeps.
* ``detect`` — run the hwlat-style gap detector on the *host*.
* ``calibrate`` — print the calibration derivation.

Use ``--quick`` everywhere for a reduced matrix (class A, 1 repetition);
output is the paper-layout text table (add ``--csv`` for CSV).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--quick", action="store_true", help="reduced matrix, 1 rep")
    p.add_argument("--reps", type=int, default=None, help="repetitions per cell")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", action="store_true", help="emit CSV instead of text")


def _mpi_table(bench: str, args: argparse.Namespace) -> int:
    from repro.harness.mpi_tables import build_table, render

    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    halves = build_table(bench, quick=args.quick, reps=reps, seed=args.seed)
    print(render(bench, halves, csv=args.csv))
    return 0


def _htt_table(bench: str, args: argparse.Namespace) -> int:
    from repro.harness.htt_tables import build_htt_table, render_htt

    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    rows = build_htt_table(bench, quick=args.quick, reps=reps, seed=args.seed)
    print(render_htt(bench, rows))
    return 0


def _figure1(args: argparse.Namespace) -> int:
    from repro.harness.figure1 import build_figure1, render_figure1

    data = build_figure1(quick=args.quick, seed=args.seed)
    print(render_figure1(data, csv=args.csv))
    return 0


def _figure2(args: argparse.Namespace) -> int:
    from repro.harness.figure2 import build_figure2, render_figure2

    data = build_figure2(quick=args.quick, seed=args.seed)
    print(render_figure2(data, csv=args.csv))
    return 0


def _detect(args: argparse.Namespace) -> int:
    from repro.core.detector import host_gap_scan

    rep = host_gap_scan(window_s=args.window)
    print(
        f"scanned {rep.window_ns / 1e9:.2f}s, {rep.samples} samples, "
        f"threshold {rep.threshold_ns / 1e3:.0f}µs"
    )
    print(f"gaps: {rep.detected}, max {rep.max_gap_ns() / 1e6:.3f}ms, "
          f"total {rep.total_gap_ns / 1e6:.3f}ms, "
          f"BIOSBITS(150µs) violations: {rep.biosbits_violations}")
    for g in rep.gaps[:20]:
        print(f"  at +{g.at_ns / 1e6:10.3f}ms  width {g.width_ns / 1e3:9.1f}µs")
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import derive_work_units, fit_network_quality

    print("work-unit derivation (paper 1-rank base × solo rate):")
    for row in derive_work_units():
        print(
            f"  {row.bench}.{row.cls.value}: paper {row.paper_s:>8.2f}s → "
            f"{row.derived_work:.4g} units (stored {row.stored_work:.4g}, "
            f"err {100 * row.relative_error:.2g}%)"
        )
    if not args.quick:
        print("network-fit quality (simulated vs paper base cells):")
        for (bench, ranks), (sim, paper) in fit_network_quality(seed=args.seed).items():
            print(f"  {bench} @{ranks} ranks: sim {sim:7.2f}s  paper {paper:7.2f}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-smm",
        description="SMM/SMI noise study reproduction (ICPP 2016)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    for bench, name in (("BT", "table1"), ("EP", "table2"), ("FT", "table3")):
        p = sub.add_parser(name, help=f"{bench} MPI table")
        _add_common(p)
        p.set_defaults(fn=lambda a, b=bench: _mpi_table(b, a))
    for bench, name in (("EP", "table4"), ("FT", "table5")):
        p = sub.add_parser(name, help=f"HTT × SMI table for {bench}")
        _add_common(p)
        p.set_defaults(fn=lambda a, b=bench: _htt_table(b, a))
    p = sub.add_parser("figure1", help="Convolve sweeps")
    _add_common(p)
    p.set_defaults(fn=_figure1)
    p = sub.add_parser("figure2", help="UnixBench sweeps")
    _add_common(p)
    p.set_defaults(fn=_figure2)
    p = sub.add_parser("detect", help="host-native SMI/latency gap scan")
    p.add_argument("--window", type=float, default=1.0, help="seconds to scan")
    p.set_defaults(fn=_detect)
    p = sub.add_parser("calibrate", help="print calibration derivation")
    _add_common(p)
    p.set_defaults(fn=_calibrate)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
