"""EP — the Embarrassingly Parallel benchmark.

Each rank generates its share of 2^m Gaussian pairs by the NPB
acceptance-rejection scheme, tallying pair counts into ten
concentric-annulus bins; the only communication is the initial barrier
and three small allreduces at the end (Σx, Σy, and the ten counts).

In the simulator the *arithmetic* is a cheap deterministic stand-in (the
tallies are a simple function of the rank so the verification sum is
checkable), while the *time* of the generation loop is the calibrated
work demand executed on the CPU model.  §III.C's expectation — "We would
expect the effects of the SMI activity to be similar for each node, and
not to grow as we scale up, due to the lack of synchronization" — is
testable here, and fails the same way it does in the paper: the final
allreduce makes completion a max over independently-perturbed ranks.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.apps.nas.params import EP_PARAMS, NasClass
from repro.mpi.comm import Rank

__all__ = ["make_ep_app", "ep_local_tallies", "ep_expected_tallies"]

_N_BINS = 10


def ep_local_tallies(rank: int, size: int) -> list[int]:
    """Deterministic stand-in for a rank's annulus tallies (the real EP
    tallies depend on its RNG stream; ours depend on the rank so tests
    can verify the allreduce sum exactly)."""
    return [((rank + 1) * (b + 3) * 2654435761) % 1000 for b in range(_N_BINS)]


def ep_expected_tallies(size: int) -> list[int]:
    """Ground-truth allreduce result for ``size`` ranks."""
    out = [0] * _N_BINS
    for r in range(size):
        t = ep_local_tallies(r, size)
        for b in range(_N_BINS):
            out[b] += t[b]
    return out


def make_ep_app(cls: NasClass) -> Callable[[Rank], Generator]:
    """Build the per-rank body for EP at the given class."""
    params = EP_PARAMS[cls]

    def app(rk: Rank) -> Generator:
        yield from rk.barrier()           # MPI_Init / start-of-timing sync
        t0 = rk.now_ns()
        yield from rk.compute(params.work_total / rk.size)
        local = ep_local_tallies(rk.rank, rk.size)
        vecsum = lambda a, b: [x + y for x, y in zip(a, b)]  # noqa: E731
        counts = yield from rk.allreduce(local, nbytes=8 * _N_BINS, op=vecsum)
        sx = yield from rk.allreduce(float(rk.rank + 1), nbytes=8)
        sy = yield from rk.allreduce(0.5 * (rk.rank + 1), nbytes=8)
        t1 = rk.now_ns()
        n = rk.size
        verified = (
            counts == ep_expected_tallies(n)
            and abs(sx - n * (n + 1) / 2) < 1e-9
            and abs(sy - 0.5 * n * (n + 1) / 2) < 1e-9
        )
        return {
            "elapsed_s": (t1 - t0) / 1e9,
            "verified": verified,
            "work_ops": params.work_total / rk.size,
            "benchmark": f"EP.{cls.value}",
        }

    return app
