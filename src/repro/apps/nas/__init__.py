"""Phase-level models of the NAS Parallel Benchmarks (MPI versions).

The paper measures EP, BT, and FT at classes A/B/C on 1–16 nodes with 1
or 4 ranks per node (§III).  Each model here reproduces the benchmark's
*structure* — how much computation, in what phases, synchronized by which
communication patterns — using the published NPB problem-class parameters
(:mod:`params`), with total work calibrated to the paper's measured
single-rank base times (:mod:`repro.core.calibration` explains the fit).

The models return :class:`repro.apps.base.AppResult`-compatible floats
(the timed region in seconds) from each rank, and the built-in
verification (:mod:`verification`) checks the *algorithmic* outputs that
flow through the simulated collectives (e.g. EP's Gaussian-pair counts
summed by allreduce) so communication correctness is tested end-to-end.
"""

from repro.apps.nas.params import (
    NasClass,
    EP_PARAMS,
    BT_PARAMS,
    FT_PARAMS,
    NAS_EP_PROFILE,
    NAS_BT_PROFILE,
    NAS_FT_PROFILE,
)
from repro.apps.nas.ep import make_ep_app
from repro.apps.nas.bt import make_bt_app
from repro.apps.nas.ft import make_ft_app, ft_feasible

__all__ = [
    "NasClass",
    "EP_PARAMS",
    "BT_PARAMS",
    "FT_PARAMS",
    "NAS_EP_PROFILE",
    "NAS_BT_PROFILE",
    "NAS_FT_PROFILE",
    "make_ep_app",
    "make_bt_app",
    "make_ft_app",
    "ft_feasible",
]
