"""The MPI study runner: the paper's Tables 1–5 as one function.

Table layout decoding (see DESIGN.md): the tables' left half places one
rank per node (row index = node count = rank count); the right half
places four ranks per node (row index = node count, so total ranks =
4 × nodes — e.g. Table 2's 4-per-node row 16 is 64 ranks, consistent with
its ~1/64 scaling of the single-rank time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.nas.bt import bt_valid_ranks, make_bt_app
from repro.apps.nas.ep import make_ep_app
from repro.apps.nas.ft import ft_feasible, make_ft_app
from repro.apps.nas.params import (
    NAS_BT_PROFILE,
    NAS_EP_PROFILE,
    NAS_FT_PROFILE,
    NasClass,
)
from repro.core.smi import SmiProfile
from repro.mpi.cluster import (
    Cluster,
    ClusterSpec,
    collect_mpi_job,
    launch_mpi_job,
    run_mpi_job,
)
from repro.mpi.network import NetworkSpec

__all__ = [
    "NasConfig",
    "run_nas_config",
    "launch_nas_config",
    "finish_nas_run",
    "DEFAULT_PHASE_SPREAD_NS",
]

#: Driver-rollout phase stagger across nodes (see Cluster.enable_smi and
#: DESIGN.md §6) — exported so run manifests can record it.
DEFAULT_PHASE_SPREAD_NS = 400_000_000


@dataclass(frozen=True)
class NasConfig:
    """One cell family of the MPI tables."""

    bench: str            # "EP" | "BT" | "FT"
    cls: NasClass
    nodes: int            # the tables' row index
    ranks_per_node: int   # 1 or 4
    htt: bool = False

    @property
    def nranks(self) -> int:
        return self.nodes * self.ranks_per_node

    @property
    def label(self) -> str:
        h = " ht=1" if self.htt else ""
        return (
            f"{self.bench}.{self.cls.value} nodes={self.nodes} "
            f"rpn={self.ranks_per_node}{h}"
        )


_APPS = {
    "EP": (make_ep_app, NAS_EP_PROFILE),
    "BT": (make_bt_app, NAS_BT_PROFILE),
    "FT": (make_ft_app, NAS_FT_PROFILE),
}


def nas_config_feasible(cfg: NasConfig) -> bool:
    """Does this configuration run at all (the tables' "-" cells)?"""
    if cfg.bench == "BT" and not bt_valid_ranks(cfg.nranks):
        return False
    if cfg.bench == "FT" and not ft_feasible(cfg.cls, cfg.nranks, cfg.ranks_per_node):
        return False
    return True


def launch_nas_config(
    cfg: NasConfig,
    smm: int = 0,
    seed: int = 1,
    interval_jiffies: int = 1000,
    network: Optional[NetworkSpec] = None,
    phase_spread_ns: Optional[int] = DEFAULT_PHASE_SPREAD_NS,
):
    """The launch half of :func:`run_nas_config`'s clean path: build the
    cluster, arm the SMI sources, start every rank — and return
    ``(cluster, job)`` *without* running the engine.

    This is the prefix-fork seam (:mod:`repro.runx.forkshare`): the
    planner runs the engine to a safe fork point between launch and
    :func:`finish_nas_run`, forks, retargets the SMI interval in each
    child, and collects.  The call sequence here mirrors
    :func:`run_nas_config`'s clean path operation for operation, so
    ``finish_nas_run(*launch_nas_config(...))`` is byte-identical to
    ``run_nas_config(...)`` with the same arguments (pinned by the
    fork-identity tests).  Returns ``None`` for infeasible configs.
    """
    if not nas_config_feasible(cfg):
        return None
    make_app, profile = _APPS[cfg.bench]
    app = make_app(cfg.cls)
    spec = ClusterSpec(
        n_nodes=cfg.nodes,
        network=network if network is not None else NetworkSpec(),
        htt=cfg.htt,
    )
    cluster = Cluster(spec, seed=seed)
    cluster.enable_smi(
        SmiProfile.by_index(smm),
        interval_jiffies=interval_jiffies,
        seed=seed,
        phase_spread_ns=phase_spread_ns,
    )
    job = launch_mpi_job(
        cluster,
        app,
        nranks=cfg.nranks,
        ranks_per_node=cfg.ranks_per_node,
        profile=profile,
        name=cfg.label,
    )
    return cluster, job


def finish_nas_run(cluster: Cluster, job) -> Optional[float]:
    """The collect half of the clean path: run to completion, verify every
    rank, and return the benchmark's reported time (max over ranks)."""
    result = collect_mpi_job(job)
    for r in result.rank_results:
        if not r.get("verified", False):
            raise AssertionError(f"verification failed for {job.name}: {r}")
    return result.elapsed_s


def run_nas_config(
    cfg: NasConfig,
    smm: int = 0,
    seed: int = 1,
    interval_jiffies: int = 1000,
    network: Optional[NetworkSpec] = None,
    phase_spread_ns: Optional[int] = DEFAULT_PHASE_SPREAD_NS,
    timeline=None,
    metrics=None,
    trace: bool = False,
    faults=None,
    mpi_timeout_s: Optional[float] = None,
    attr=None,
) -> Optional[float]:
    """Run one benchmark configuration under one SMI class.

    Returns the benchmark's reported time in seconds (max over ranks of
    the timed region, as NPB reports), or ``None`` for infeasible
    configurations.  Raises if the run's algorithmic verification fails —
    the simulated collectives must deliver correct values even under
    noise.

    Observability hooks: pass a :class:`repro.simx.timeline.Timeline` as
    ``timeline`` to capture the run's ground-truth trace, a
    :class:`repro.obs.metrics.MetricsRegistry` as ``metrics`` to collect
    counters, and ``trace=True`` to additionally record network messages
    and per-CPU task placements (heavier; meant for the ``repro-smm
    trace`` exporter, not for table sweeps).

    Fault injection: pass a :class:`repro.faults.FaultInjector` as
    ``faults`` to arm its plan against the cluster before launch; a
    fatal fault then raises :class:`repro.mpi.errors.JobAbortedError`
    (see :func:`repro.mpi.cluster.run_mpi_job`).  ``mpi_timeout_s``
    overrides the injector's derived blocking-wait bound.

    Attribution: pass a :class:`repro.obs.attr.AttrCapture` as ``attr``
    to record per-rank waits, message lifecycles, and accounting for the
    post-run noise-attribution engine.  The capture is pure recording —
    the simulated event sequence is identical with and without it.
    """
    if not nas_config_feasible(cfg):
        return None
    make_app, profile = _APPS[cfg.bench]
    app = make_app(cfg.cls)
    spec = ClusterSpec(
        n_nodes=cfg.nodes,
        network=network if network is not None else NetworkSpec(),
        htt=cfg.htt,
    )
    cluster = Cluster(spec, seed=seed, timeline=timeline, metrics=metrics)
    if faults is not None:
        faults.attach(cluster)
    if attr is not None:
        attr.attach(cluster)
    if trace:
        cluster.network.trace = True
        cluster.trace_waits = True
        for node in cluster.nodes:
            node.scheduler.trace_placements = True
    cluster.enable_smi(
        SmiProfile.by_index(smm),
        interval_jiffies=interval_jiffies,
        seed=seed,
        phase_spread_ns=phase_spread_ns,
    )
    result = run_mpi_job(
        cluster,
        app,
        nranks=cfg.nranks,
        ranks_per_node=cfg.ranks_per_node,
        profile=profile,
        name=cfg.label,
        mpi_timeout_s=mpi_timeout_s,
    )
    if attr is not None:
        attr.finalize(cluster, result)
    for r in result.rank_results:
        if not r.get("verified", False):
            raise AssertionError(f"verification failed for {cfg.label}: {r}")
    return result.elapsed_s
