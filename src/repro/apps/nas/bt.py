"""BT — the Block Tri-diagonal solver.

Structure modeled (per NPB's multi-partition scheme): 200 ADI iterations,
each consisting of three directional sweeps (x, y, z).  The p ranks form
a √p×√p grid; in each sweep a rank computes its cells and exchanges
boundary faces (5 solution components per boundary cell) with its two
neighbours along that direction — a ring of √p in the sweep dimension.
BT therefore synchronizes with neighbours ~600 times per run, which is
what makes it the most noise-amplified benchmark in Table 1: a long SMI
on *any* node stalls the sweep wavefront within a couple of stages.

``substages_per_dir`` controls sweep granularity (how many
compute+exchange sub-steps each directional sweep is split into); 1
matches whole-face exchanges, larger values model the pipelined
fine-grained variant (an ablation knob).
"""

from __future__ import annotations

import math
from typing import Callable, Generator

from repro.apps.nas.params import BT_PARAMS, NasClass
from repro.mpi.comm import Rank

__all__ = ["make_bt_app", "bt_valid_ranks"]


def bt_valid_ranks(p: int) -> bool:
    """BT requires a square process count (1, 4, 9, 16, 25, 36, 49, 64...)."""
    q = math.isqrt(p)
    return q * q == p


def _neighbours(rank: int, q: int, direction: int) -> tuple[int, int]:
    """(next, prev) ranks along the sweep direction on the q×q grid.

    x sweeps move along grid columns, y along rows, z along the wrapped
    diagonal (the multi-partition's third axis mapping)."""
    row, col = divmod(rank, q)
    if direction == 0:
        nxt = row * q + (col + 1) % q
        prv = row * q + (col - 1) % q
    elif direction == 1:
        nxt = ((row + 1) % q) * q + col
        prv = ((row - 1) % q) * q + col
    else:
        nxt = ((row + 1) % q) * q + (col + 1) % q
        prv = ((row - 1) % q) * q + (col - 1) % q
    return nxt, prv


def make_bt_app(cls: NasClass, substages_per_dir: int = 1
                ) -> Callable[[Rank], Generator]:
    """Build the per-rank body for BT at the given class."""
    params = BT_PARAMS[cls]
    if substages_per_dir < 1:
        raise ValueError("substages_per_dir must be >= 1")

    def app(rk: Rank) -> Generator:
        p = rk.size
        if not bt_valid_ranks(p):
            raise ValueError(f"BT needs a square rank count, got {p}")
        q = math.isqrt(p)
        yield from rk.barrier()
        t0 = rk.now_ns()
        chunk = params.work_total / params.niter / p / 3 / substages_per_dir
        msg = params.msg_bytes(p) // substages_per_dir
        for _ in range(params.niter):
            for d in range(3):
                nxt, prv = _neighbours(rk.rank, q, d)
                for _s in range(substages_per_dir):
                    yield from rk.compute(chunk)
                    if p > 1:
                        req = rk.irecv(prv, tag=d)
                        yield from rk.send(nxt, msg, None, tag=d)
                        yield from rk.wait(req)
        # Final residual check: one allreduce, verified algorithmically.
        checksum = yield from rk.allreduce(float(rk.rank + 1) ** 2, nbytes=40)
        t1 = rk.now_ns()
        expected = sum(float(r + 1) ** 2 for r in range(p))
        return {
            "elapsed_s": (t1 - t0) / 1e9,
            "verified": abs(checksum - expected) < 1e-6,
            "work_ops": params.work_total / p,
            "benchmark": f"BT.{cls.value}",
        }

    return app
