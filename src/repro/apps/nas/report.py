"""NPB-style result report.

Real NAS benchmarks end with a standard block (class, size, iterations,
time, MOPs, verification).  The paper records exactly these ("we recorded
the resulting time, work completed, and MOPs", §III.C); this module
renders the same block from a :class:`repro.mpi.cluster.JobResult`.
"""

from __future__ import annotations

from io import StringIO
from typing import Dict

from repro.apps.nas.params import BT_PARAMS, EP_PARAMS, FT_PARAMS, NasClass
from repro.mpi.cluster import JobResult

__all__ = ["npb_report"]

_SIZE = {
    "EP": lambda p: f"2^{p.m} random pairs",
    "BT": lambda p: f"{p.grid_n}x{p.grid_n}x{p.grid_n} grid",
    "FT": lambda p: f"{p.nx}x{p.ny}x{p.nz} grid",
}
_PARAMS = {"EP": EP_PARAMS, "BT": BT_PARAMS, "FT": FT_PARAMS}
_ITER = {"EP": lambda p: 1, "BT": lambda p: p.niter, "FT": lambda p: p.niter}


def npb_report(bench: str, cls: NasClass, result: JobResult) -> str:
    """Render the classic NPB footer for a finished simulated run."""
    params = _PARAMS[bench][cls]
    elapsed = result.elapsed_s if result.elapsed_s else 0.0
    total_ops = sum(
        r.get("work_ops", 0.0) for r in result.rank_results if isinstance(r, dict)
    )
    verified = all(
        r.get("verified", False) for r in result.rank_results if isinstance(r, dict)
    )
    mops = total_ops / elapsed / 1e6 if elapsed > 0 else 0.0
    out = StringIO()
    out.write(f" {bench} Benchmark Completed.\n")
    out.write(f" Class           =            {cls.value}\n")
    out.write(f" Size            =            {_SIZE[bench](params)}\n")
    out.write(f" Iterations      =            {_ITER[bench](params)}\n")
    out.write(f" Time in seconds =            {elapsed:.2f}\n")
    out.write(f" Total processes =            {result.nranks}\n")
    out.write(f" Mop/s total     =            {mops:.2f}\n")
    out.write(f" Mop/s/process   =            {mops / result.nranks:.2f}\n")
    out.write(
        f" Verification    =            "
        f"{'SUCCESSFUL' if verified else 'UNSUCCESSFUL'}\n"
    )
    return out.getvalue()
