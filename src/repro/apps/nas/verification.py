"""NPB-style verification of the modeled benchmarks.

Real NPB prints ``Verification = SUCCESSFUL`` by checking computed values
against class-specific references.  The models carry real values through
the simulated collectives (EP's tallies, BT's residual, FT's per-
iteration checksums), and this module provides the reference-side checks
plus structural invariants the parameter tables must satisfy.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.nas.ep import ep_expected_tallies, ep_local_tallies
from repro.apps.nas.params import BT_PARAMS, EP_PARAMS, FT_PARAMS, NasClass

__all__ = [
    "verify_rank_result",
    "structural_invariants",
    "ep_expected_tallies",
    "ep_local_tallies",
]


def verify_rank_result(result: Dict) -> bool:
    """Check a rank body's returned record."""
    return (
        isinstance(result, dict)
        and result.get("verified") is True
        and result.get("elapsed_s", -1) >= 0
        and result.get("work_ops", 0) > 0
    )


def structural_invariants() -> Dict[str, bool]:
    """Class-parameter sanity: monotone work, the published geometry."""
    checks: Dict[str, bool] = {}
    order = [NasClass.A, NasClass.B, NasClass.C]
    for name, params in (("EP", EP_PARAMS), ("BT", BT_PARAMS), ("FT", FT_PARAMS)):
        works = [params[c].work_total for c in order]
        checks[f"{name}.work_monotone"] = works[0] < works[1] < works[2]
    checks["EP.pairs"] = [EP_PARAMS[c].m for c in order] == [28, 30, 32]
    checks["BT.grids"] = [BT_PARAMS[c].grid_n for c in order] == [64, 102, 162]
    checks["BT.niter"] = all(BT_PARAMS[c].niter == 200 for c in order)
    checks["FT.cells"] = [FT_PARAMS[c].cells for c in order] == [
        256 * 256 * 128,
        512 * 256 * 256,
        512 * 512 * 512,
    ]
    checks["FT.niter"] = [FT_PARAMS[c].niter for c in order] == [6, 20, 20]
    return checks
