"""NPB problem-class parameters and workload calibration.

Structure constants (grid sizes, iteration counts, random-number volumes)
come from the NPB specification.  Total work demands are *calibrated*:
the paper's Table 1–3 single-rank SMM-0 times define the work in
machine-units via ``work = T_paper × solo_rate(profile)`` — see
:mod:`repro.core.calibration` for the derivation and the test that
re-derives these numbers.  With that one-point-per-class calibration, all
scaling behaviour (rank counts, placements) and every noise delta are
*predictions* of the model, not fits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.machine.profile import WorkloadProfile

__all__ = [
    "NasClass",
    "EpParams",
    "BtParams",
    "FtParams",
    "EP_PARAMS",
    "BT_PARAMS",
    "FT_PARAMS",
    "NAS_EP_PROFILE",
    "NAS_BT_PROFILE",
    "NAS_FT_PROFILE",
    "PAPER_BASE_1RANK_S",
]


class NasClass(str, enum.Enum):
    """NPB problem classes used in the paper."""

    A = "A"
    B = "B"
    C = "C"


# ---------------------------------------------------------------------------
# Workload profiles.  htt_yield ≈ 1 for these FP-dense solvers (Leng et
# al. [4]: "applications performing intensive floating-point operations do
# not benefit from HTT"); cache sensitivity low for the blocked solvers.
# ---------------------------------------------------------------------------

NAS_EP_PROFILE = WorkloadProfile(
    name="nas-ep",
    htt_yield=1.0,
    working_set_bytes=256 << 10,   # EP's state is tiny (RNG streams + tallies)
    base_miss_rate=0.002,
    mem_ref_fraction=0.08,
    cache_sensitivity=0.3,
)

NAS_BT_PROFILE = WorkloadProfile(
    name="nas-bt",
    htt_yield=1.05,
    working_set_bytes=2 << 20,     # blocked tridiagonal sweeps, good locality
    base_miss_rate=0.02,
    mem_ref_fraction=0.10,
    cache_sensitivity=0.25,
)

NAS_FT_PROFILE = WorkloadProfile(
    name="nas-ft",
    htt_yield=1.05,
    working_set_bytes=16 << 20,    # streaming 3-D FFT lines: LLC-busting
    base_miss_rate=0.15,
    mem_ref_fraction=0.12,
    cache_sensitivity=0.2,
)


# ---------------------------------------------------------------------------
# The paper's single-rank SMM-0 base times (Tables 1–3), the calibration
# anchors.  FT class C never ran on one rank in the paper (blank cells);
# its work is extrapolated with the FFT op-count formula
# 5·N·log2(N)·niter (ratio to class B ≈ 4.32, see calibration.py).
# ---------------------------------------------------------------------------

PAPER_BASE_1RANK_S: Dict[str, Dict[NasClass, float]] = {
    "EP": {NasClass.A: 23.12, NasClass.B: 92.72, NasClass.C: 370.67},
    "BT": {NasClass.A: 86.87, NasClass.B: 369.70, NasClass.C: 1585.75},
    "FT": {NasClass.A: 7.64, NasClass.B: 95.48, NasClass.C: 412.59},
}


def _calibrated_work(bench: str, cls: NasClass, profile: WorkloadProfile) -> float:
    """paper seconds × solo machine rate → work units (see module doc)."""
    from repro.machine.topology import WYEAST_SPEC

    return PAPER_BASE_1RANK_S[bench][cls] * profile.solo_rate(WYEAST_SPEC.base_hz)


@dataclass(frozen=True)
class EpParams:
    """EP — Embarrassingly Parallel (2^m Gaussian pairs, one final sum).

    Structure: each rank generates its share of 2^m random pairs,
    tallying acceptances into 10 concentric-annulus counters; the only
    communication is three small allreduces at the end (sx, sy, and the
    counts), plus the init barrier.  (§III.C: "little synchronization
    between the MPI ranks".)
    """

    cls: NasClass
    m: int                 # log2 of the pair count
    work_total: float      # machine work units, calibrated

    @property
    def pairs(self) -> int:
        return 1 << self.m

    @property
    def ops_per_pair(self) -> float:
        return self.work_total / self.pairs


@dataclass(frozen=True)
class BtParams:
    """BT — Block Tri-diagonal solver on an N³ grid, 200 ADI iterations.

    Structure per iteration: three directional sweeps (x, y, z); in each,
    every rank of the √p×√p process grid computes its cells and exchanges
    boundary faces with its two neighbours in that direction (the
    multi-partition scheme).  BT requires a square rank count.
    """

    cls: NasClass
    grid_n: int
    niter: int
    work_total: float
    #: bytes per face message = face_doubles × 8 × grid_n² / √p (5 solution
    #: components per boundary cell).
    face_doubles: int = 5

    def msg_bytes(self, p: int) -> int:
        import math

        q = int(math.isqrt(p))
        return int(self.face_doubles * 8 * self.grid_n * self.grid_n / max(1, q))


@dataclass(frozen=True)
class FtParams:
    """FT — 3-D FFT: per iteration a local FFT pass plus a global
    transpose implemented as an all-to-all of the entire dataset
    (§III.C: "FT performs discrete 3D fast Fourier Transform, using MPI
    all-to-all communication").
    """

    cls: NasClass
    nx: int
    ny: int
    nz: int
    niter: int
    work_total: float
    #: the paper's Table 3 has no values for FT-C below 4 ranks
    #: (reproduced as infeasible; see repro.machine.memory).
    min_ranks: int = 1

    @property
    def cells(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def total_bytes(self) -> int:
        return self.cells * 16  # complex128

    def per_pair_bytes(self, p: int) -> int:
        """All-to-all block size: each rank sends cells·16/p² to each peer."""
        return max(1, self.total_bytes // (p * p))


def _build() -> tuple:
    ep = {
        c: EpParams(c, m, _calibrated_work("EP", c, NAS_EP_PROFILE))
        for c, m in {NasClass.A: 28, NasClass.B: 30, NasClass.C: 32}.items()
    }
    bt = {
        c: BtParams(c, n, 200, _calibrated_work("BT", c, NAS_BT_PROFILE))
        for c, n in {NasClass.A: 64, NasClass.B: 102, NasClass.C: 162}.items()
    }
    ft_geom = {
        NasClass.A: (256, 256, 128, 6, 1),
        NasClass.B: (512, 256, 256, 20, 1),
        NasClass.C: (512, 512, 512, 20, 4),
    }
    ft = {
        c: FtParams(
            c, nx, ny, nz, niter,
            _calibrated_work("FT", c, NAS_FT_PROFILE),
            min_ranks=minr,
        )
        for c, (nx, ny, nz, niter, minr) in ft_geom.items()
    }
    return ep, bt, ft


EP_PARAMS, BT_PARAMS, FT_PARAMS = _build()
