"""FT — the 3-D fast Fourier Transform benchmark.

Structure modeled: per iteration, a local FFT pass over the rank's slab,
then the global transpose — an all-to-all moving the *entire* dataset
(each rank sends cells·16/p² bytes to every peer), then the remaining
local FFT work, and the per-iteration checksum allreduce that real FT
performs.  The all-to-all is why FT is the communication-heaviest of the
three, why 4 ranks/node "are poor fits for the underlying platform"
(§III.C — four ranks' transpose traffic funnels through one NIC), and
why a long SMI anywhere stretches every iteration.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.apps.nas.params import FT_PARAMS, FtParams, NasClass
from repro.machine.topology import MachineSpec, WYEAST_SPEC
from repro.mpi.comm import Rank

__all__ = ["make_ft_app", "ft_feasible"]

#: Fraction of per-iteration compute done before the transpose (the first
#: two FFT dimensions) vs after it (the third dimension + evolve).
_PRE_TRANSPOSE_FRACTION = 0.66


def ft_feasible(
    cls: NasClass,
    nranks: int,
    ranks_per_node: int = 1,
    machine: MachineSpec = WYEAST_SPEC,
) -> bool:
    """Can this FT configuration run?  Reproduces the paper's blank Table
    3 cells: class C below 4 ranks never ran on Wyeast (per-rank
    footprint vs the 12 GB nodes), encoded as ``min_ranks``; additionally
    checks the genuine per-node memory footprint."""
    params = FT_PARAMS[cls]
    if nranks < params.min_ranks:
        return False
    # ~2.5 arrays resident (u0, u1, scratch) per NPB FT.
    per_rank = 2.5 * params.total_bytes / nranks
    from repro.machine.memory import OS_RESERVED_BYTES

    per_node = per_rank * min(ranks_per_node, nranks)
    return per_node <= machine.memory_bytes - OS_RESERVED_BYTES


def make_ft_app(cls: NasClass) -> Callable[[Rank], Generator]:
    """Build the per-rank body for FT at the given class."""
    params: FtParams = FT_PARAMS[cls]

    def app(rk: Rank) -> Generator:
        p = rk.size
        yield from rk.barrier()
        t0 = rk.now_ns()
        work_iter = params.work_total / params.niter / p
        pair_bytes = params.per_pair_bytes(p)
        checksum_ok = True
        for it in range(params.niter):
            yield from rk.compute(work_iter * _PRE_TRANSPOSE_FRACTION)
            if p > 1:
                yield from rk.alltoall(pair_bytes)
            yield from rk.compute(work_iter * (1.0 - _PRE_TRANSPOSE_FRACTION))
            # Real FT computes and reduces a checksum every iteration.
            local = float((rk.rank + 1) * (it + 1))
            total = yield from rk.allreduce(local, nbytes=16)
            expected = (it + 1) * p * (p + 1) / 2
            checksum_ok = checksum_ok and abs(total - expected) < 1e-6
        t1 = rk.now_ns()
        return {
            "elapsed_s": (t1 - t0) / 1e9,
            "verified": checksum_ok,
            "work_ops": params.work_total / p,
            "benchmark": f"FT.{cls.value}",
        }

    return app
