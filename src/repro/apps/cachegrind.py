"""A cachegrind-style cache simulator for the Convolve access pattern.

§IV.B: "We selected configurations for 'cache-friendly' and
'cache-unfriendly' experimentally using *cachegrind*" — landing on ~1 %
and ~70 % miss rates out of ~20 M references.  This module closes that
loop: a set-associative cache simulator (LRU, write-allocate, like
cachegrind's D1/LL model) driven by the *actual* address stream of the
blocked convolution, so the CF/CU profile constants used by the fluid
model are derived, not asserted.

The address stream generator reproduces the kernel's loop nest exactly:
for each output pixel of a thread's block, the M×M kernel window is
swept over the padded image (reads), the kernel matrix is re-read, and
one output store is issued — the three memory activities the paper lists.

Full-size runs (16 MP images) would be slow in Python; the pattern is
scale-invariant in the regimes of interest, so the tests verify the two
regimes on proportionally scaled geometries and the module documents the
mapping (see :func:`convolve_miss_rate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["CacheSim", "CacheStats", "convolve_address_stream", "convolve_miss_rate"]


@dataclass
class CacheStats:
    """Reference/miss counters (cachegrind's D-cache summary line)."""

    references: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.references if self.references else 0.0


class CacheSim:
    """Set-associative LRU cache over byte addresses.

    Default geometry matches a Nehalem 32 KB, 8-way, 64 B-line L1d.
    """

    def __init__(self, size_bytes: int = 32 << 10, ways: int = 8,
                 line_bytes: int = 64):
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways × line")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (ways * line_bytes)
        # per-set list of tags in LRU order (front = most recent)
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on hit."""
        line = addr // self.line_bytes
        idx = line % self.n_sets
        tag = line // self.n_sets
        s = self._sets[idx]
        self.stats.references += 1
        try:
            pos = s.index(tag)
        except ValueError:
            self.stats.misses += 1
            s.insert(0, tag)
            if len(s) > self.ways:
                s.pop()
            return False
        if pos != 0:
            s.insert(0, s.pop(pos))
        return True

    def access_array(self, addrs: np.ndarray) -> None:
        """Drive the simulator with a vector of addresses."""
        for a in addrs:
            self.access(int(a))


def convolve_address_stream(
    image_w: int,
    image_h: int,
    kernel_side: int,
    block: int,
    element_bytes: int = 8,
    image_base: int = 0x10_0000,
    kernel_base: int = 0x01_0000,
    out_base: int = 0x80_0000,
) -> Iterator[int]:
    """The byte-address stream of one thread convolving its blocks.

    Loop nest per output pixel (i, j): for each kernel element (dy, dx)
    read image[i+dy, j+dx] and kernel[dy, dx]; then store out[i, j] —
    the exact activities §IV.B enumerates (shared-image loads, kernel
    loads, thread-local stores).
    """
    k = kernel_side
    pad_w = image_w + k - 1
    for bi in range(0, image_h, block):
        for bj in range(0, image_w, block):
            for i in range(bi, min(bi + block, image_h)):
                for j in range(bj, min(bj + block, image_w)):
                    for dy in range(k):
                        row = (i + dy) * pad_w
                        for dx in range(k):
                            yield image_base + (row + j + dx) * element_bytes
                            yield kernel_base + (dy * k + dx) * element_bytes
                    yield out_base + (i * image_w + j) * element_bytes


class CacheStack:
    """A D1 → LL two-level stack, cachegrind's default configuration.

    References hit D1 first; D1 misses become LL references.  The paper's
    "~70 % cache misses … out of approximately 20-million cache
    references" reads as an LL summary (the D1 reference count of a 16 MP
    convolve is in the hundreds of millions; the *LL* traffic is tens of
    millions) — so the CU/CF contrast is asserted on the LL miss rate.
    """

    def __init__(self, d1: CacheSim | None = None, ll: CacheSim | None = None):
        self.d1 = d1 if d1 is not None else CacheSim(32 << 10, 8, 64)
        self.ll = ll if ll is not None else CacheSim(1 << 20, 16, 64)

    def access(self, addr: int) -> None:
        if not self.d1.access(addr):
            self.ll.access(addr)


def convolve_miss_rate(
    image_w: int,
    image_h: int,
    kernel_side: int,
    block: int,
    stack: CacheStack | None = None,
    max_refs: int = 2_000_000,
) -> CacheStack:
    """Measure the D1/LL miss rates of the convolve pattern.

    The two paper regimes, demonstrated at simulation-friendly scale
    (verified in ``tests/apps/test_cachegrind.py``):

    * **CF-like** — small image rows + big kernel: the kernel matrix and
      the sliding image window stay resident ⇒ both levels near the
      compulsory floor (the paper's ≈1 %).
    * **CU-like** — image far exceeds the LL with a tiny kernel: the
      streaming sweeps re-miss at the LL ⇒ a high LL miss rate (the
      paper's ≈70 % regime; the simulator reproduces the CU ≫ CF contrast
      and the order of magnitude, see the tests).
    """
    sim = stack if stack is not None else CacheStack()
    for addr in convolve_address_stream(image_w, image_h, kernel_side, block):
        sim.access(addr)
        if sim.d1.stats.references >= max_refs:
            break
    return sim
