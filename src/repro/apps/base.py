"""Shared application scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["AppResult"]


@dataclass
class AppResult:
    """What a benchmark reports — the NPB-style triple the paper records
    ("the resulting time, work completed, and MOPs", §III.C)."""

    name: str
    elapsed_s: float
    work_ops: float
    verified: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mops(self) -> float:
        """Millions of operations per second (the NPB report line)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.work_ops / self.elapsed_s / 1e6
