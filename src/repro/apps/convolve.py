"""Convolve — the multithreaded application kernel of §IV.B (simulated).

The paper convolves an M×M kernel Q over an N×N image P, splitting the
output into blocks and running up to 24 threads; two configurations were
chosen with cachegrind:

===============  ================  ===============
                 CacheFriendly     CacheUnfriendly
===============  ================  ===============
image size       0.5 megapixels    16 megapixels
subimage size    4×4 pixels        1 megapixel
kernel size      61×61             3×3
miss rate        ≈ 1 %             ≈ 70 %
===============  ================  ===============

both against ~20 M cache references.  Threads write thread-local memory
(no locking); measured time covers thread spawning, memory traffic, and
the multiply–add loop (§IV.B).

The simulator model executes the *calibrated work* of the multiply–add
loop (one work unit per multiply–add) on worker tasks whose
:class:`~repro.machine.profile.WorkloadProfile` encodes the measured miss
rate, the per-thread working set, and the HTT yield the paper observed
("Our CacheUnfriendly configuration did not benefit greatly from HTT";
"The CacheFriendly configuration shows minimal benefits from HTT").
Workers split their share into ~50 ms segments so the OS model gets
realistic re-placement points; per-block thread-spawn overhead is charged
as CPU work.

The *numerics* of the same kernel live in
:mod:`repro.apps.convolve_native` (real NumPy, host-runnable) and are
cross-verified in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.base import AppResult
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import R410_SPEC
from repro.system import SimulatedMachine, make_machine

__all__ = ["ConvolveConfig", "CACHE_FRIENDLY", "CACHE_UNFRIENDLY", "run_convolve"]

#: pthread_create + block dispatch overhead charged per spawned block, in
#: work units (~25 µs at the R410's clock).
SPAWN_OVERHEAD_UNITS = 60_000.0

#: Worker segment granularity (fraction of a second of solo compute).
SEGMENT_TARGET_S = 0.05


@dataclass(frozen=True)
class ConvolveConfig:
    """One Convolve experimental configuration."""

    name: str
    image_pixels: int
    subimage_pixels: int
    kernel_side: int
    profile: WorkloadProfile
    #: how many times the filter pass is repeated per run (the paper's
    #: timed region must span several SMI intervals to show Figure 1's
    #: effects; repetitions keep the same memory behaviour).
    repetitions: int = 10

    @property
    def blocks(self) -> int:
        """Output blocks per pass (one logical thread spawn each)."""
        return max(1, self.image_pixels // self.subimage_pixels)

    @property
    def madds_per_pass(self) -> float:
        """One work unit per multiply–add: pixels × kernel area."""
        return float(self.image_pixels) * self.kernel_side * self.kernel_side

    @property
    def total_work(self) -> float:
        """Multiply–add work plus per-block spawn overhead, all passes."""
        return self.repetitions * (
            self.madds_per_pass + self.blocks * SPAWN_OVERHEAD_UNITS
        )


#: ~1 % misses: tiny 4×4 output tiles against a big 61×61 kernel held in
#: cache; compute-bound madds leave HTT little to fill (Saini et al. [5]).
CACHE_FRIENDLY = ConvolveConfig(
    name="CacheFriendly",
    image_pixels=500_000,
    subimage_pixels=16,
    kernel_side=61,
    profile=WorkloadProfile(
        name="convolve-cf",
        htt_yield=1.08,
        working_set_bytes=192 << 10,
        base_miss_rate=0.01,
        mem_ref_fraction=0.30,
        cache_sensitivity=0.6,
    ),
)

#: ~70 % misses: 16 MP image streamed with a 3×3 kernel; both HTT
#: siblings thrash, so the latency gaps HTT could fill are spent on a
#: saturated memory system (htt_yield ≈ 1.1).
CACHE_UNFRIENDLY = ConvolveConfig(
    name="CacheUnfriendly",
    image_pixels=16_000_000,
    subimage_pixels=1_000_000,
    kernel_side=3,
    profile=WorkloadProfile(
        name="convolve-cu",
        htt_yield=1.10,
        working_set_bytes=8 << 20,
        base_miss_rate=0.70,
        mem_ref_fraction=0.35,
        cache_sensitivity=0.3,
    ),
    repetitions=120,
)


def run_convolve(
    config: ConvolveConfig,
    logical_cpus: int,
    threads: int = 24,
    smi_durations=None,
    smi_interval_jiffies: int = 1000,
    seed: int = 1,
    machine: Optional[SimulatedMachine] = None,
    metrics=None,
) -> AppResult:
    """Run one Convolve experiment: ``threads`` workers on a machine
    configured to ``logical_cpus`` online CPUs (the paper's sysfs
    methodology), optionally under SMI noise.  Returns wall time and MOPs.
    """
    from repro.core.smi import SmiSource

    if machine is None:
        machine = make_machine(R410_SPEC, seed=seed, metrics=metrics)
    machine.sysfs.set_logical_cpus(logical_cpus)
    if smi_durations is not None:
        SmiSource(machine.node, smi_durations, smi_interval_jiffies, seed=seed + 17)

    total = config.total_work
    share = total / threads
    solo_per_seg = config.profile.solo_rate(machine.node.spec.base_hz) * SEGMENT_TARGET_S
    nseg = max(1, int(round(share / solo_per_seg)))
    spawn_ns = 25_000  # stagger of worker start (main spawns serially)

    results: Dict[str, float] = {}

    def worker(i: int):
        def body(task):
            yield from task.sleep(i * spawn_ns)
            for _ in range(nseg):
                yield from task.compute(share / nseg)
            return task.now_ns()

        return body

    engine = machine.engine
    t0 = engine.now
    tasks = [
        machine.scheduler.spawn(worker(i), f"conv.w{i}", config.profile)
        for i in range(threads)
    ]
    done = engine.event("convolve.done")
    remaining = {"n": threads}

    def on_done(_ev):
        remaining["n"] -= 1
        if remaining["n"] == 0 and not done.triggered:
            done.succeed()

    for t in tasks:
        t.proc.done_event.add_callback(on_done)
    engine.run_until(done, limit_ns=int(20_000e9))
    if not done.triggered:
        raise RuntimeError("convolve run did not finish")
    elapsed = (engine.now - t0) / 1e9
    return AppResult(
        name=f"convolve-{config.name}",
        elapsed_s=elapsed,
        work_ops=total,
        verified=None,
        extra={
            "logical_cpus": logical_cpus,
            "threads": threads,
            "smm_entries": machine.node.smm.stats.entries,
            "smm_time_s": machine.node.smm.stats.total_ns / 1e9,
        },
    )
