"""Convolve — real NumPy implementation of the paper's kernel (§IV.B).

This is the genuine computation the simulator's Convolve workload stands
in for: given an N×N image P and an M×M kernel Q (M odd), produce
R = P * Q where each R[i,j] superimposes Q centered at P[i,j], multiplies,
and sums (zero padding at the borders).  The parallel driver splits R
into square blocks and runs a bounded pool of Python threads, exactly
mirroring the paper's decomposition: each thread writes thread-local
output, so there are no data dependencies or locks.

Timing uses ``time.monotonic_ns`` — the paper's
``clock_gettime(CLOCK_MONOTONIC)`` — so on a machine with real SMI noise
this very code observes it (pair with
:func:`repro.core.detector.host_gap_scan`).

NumPy releases the GIL inside ufunc loops, so the threaded driver gets
real (if partial) parallelism; regardless, the purpose here is numerical
ground truth for the tests and a host-runnable example, not a performance
claim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["convolve2d", "convolve2d_blocked", "NativeConvolveResult", "run_native_convolve"]


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Direct 2-D convolution, "same" size, zero-padded borders.

    Implemented as a sum of shifted, kernel-weighted views over a padded
    copy — one vectorized multiply–add per kernel element, the loop
    structure of the paper's inner kernel with NumPy doing each pass.
    (For a 61×61 kernel this is 3 721 vectorized passes.)
    """
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("image and kernel must be 2-D")
    km, kn = kernel.shape
    if km % 2 == 0 or kn % 2 == 0:
        raise ValueError("kernel sides must be odd (the paper requires M odd)")
    ry, rx = km // 2, kn // 2
    padded = np.zeros((image.shape[0] + 2 * ry, image.shape[1] + 2 * rx),
                      dtype=np.result_type(image, kernel))
    padded[ry:ry + image.shape[0], rx:rx + image.shape[1]] = image
    out = np.zeros_like(image, dtype=padded.dtype)
    h, w = image.shape
    for dy in range(km):
        for dx in range(kn):
            c = kernel[dy, dx]
            if c == 0:
                continue
            out += c * padded[dy:dy + h, dx:dx + w]
    return out


def _blocks(h: int, w: int, block: int) -> List[Tuple[int, int, int, int]]:
    out = []
    for i in range(0, h, block):
        for j in range(0, w, block):
            out.append((i, min(i + block, h), j, min(j + block, w)))
    return out


def convolve2d_blocked(
    image: np.ndarray,
    kernel: np.ndarray,
    block: int = 256,
    max_threads: int = 24,
) -> np.ndarray:
    """The paper's parallel decomposition: split R into ``block``×``block``
    tiles and convolve each on a pool of at most ``max_threads`` threads.
    Each tile reads the shared padded image and writes its private output
    region — no synchronization beyond the pool itself."""
    km, kn = kernel.shape
    ry, rx = km // 2, kn // 2
    h, w = image.shape
    padded = np.zeros((h + 2 * ry, w + 2 * rx), dtype=np.result_type(image, kernel))
    padded[ry:ry + h, rx:rx + w] = image
    out = np.zeros((h, w), dtype=padded.dtype)
    tiles = _blocks(h, w, block)
    sem = threading.Semaphore(max_threads)
    threads: List[threading.Thread] = []

    def work(t: Tuple[int, int, int, int]) -> None:
        try:
            i0, i1, j0, j1 = t
            acc = np.zeros((i1 - i0, j1 - j0), dtype=padded.dtype)
            for dy in range(km):
                for dx in range(kn):
                    c = kernel[dy, dx]
                    if c == 0:
                        continue
                    acc += c * padded[i0 + dy:i1 + dy, j0 + dx:j1 + dx]
            out[i0:i1, j0:j1] = acc
        finally:
            sem.release()

    for t in tiles:
        sem.acquire()
        th = threading.Thread(target=work, args=(t,))
        th.start()
        threads.append(th)
    for th in threads:
        th.join()
    return out


@dataclass
class NativeConvolveResult:
    elapsed_s: float
    madds: float
    threads: int
    checksum: float

    @property
    def mops(self) -> float:
        return self.madds / self.elapsed_s / 1e6 if self.elapsed_s > 0 else 0.0


def run_native_convolve(
    image_side: int = 512,
    kernel_side: int = 9,
    block: int = 128,
    max_threads: int = 8,
    seed: int = 0,
    image: Optional[np.ndarray] = None,
) -> NativeConvolveResult:
    """Generate inputs outside the timed section (as the paper does),
    convolve with the blocked threaded driver, and report wall time,
    multiply–add count, and a checksum for verification."""
    rng = np.random.default_rng(seed)
    if image is None:
        image = rng.random((image_side, image_side))
    kernel = rng.random((kernel_side, kernel_side))
    t0 = time.monotonic_ns()
    out = convolve2d_blocked(image, kernel, block=block, max_threads=max_threads)
    t1 = time.monotonic_ns()
    return NativeConvolveResult(
        elapsed_s=(t1 - t0) / 1e9,
        madds=float(image.size) * kernel.size,
        threads=max_threads,
        checksum=float(out.sum()),
    )
