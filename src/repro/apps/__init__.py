"""repro.apps — the paper's workloads.

* :mod:`nas` — phase-level models of the NAS Parallel Benchmarks the MPI
  study measures: EP, BT, FT, classes A/B/C (§III.C).
* :mod:`convolve` — the multithreaded convolution kernel of §IV.B, both
  as a simulator workload (cache-friendly / cache-unfriendly
  configurations) and as a *real* NumPy implementation
  (:mod:`convolve_native`) used for verification and host runs.
* :mod:`unixbench` — the five UnixBench tests of §IV.C with the index
  scoring, as simulator profiles and as host-native micro-benchmarks.
"""

from repro.apps.base import AppResult

__all__ = ["AppResult"]
