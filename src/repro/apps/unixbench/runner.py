"""The UnixBench duplex run protocol on a simulated machine.

Mirrors byte-unixbench's ``Run`` script for the paper's subset: each test
executes for a fixed duration, first with a single copy, then with one
copy per online CPU; multi-copy raw results are the sum over copies (as
UnixBench aggregates), and each parallelism level gets its own geometric
index.  The paper plots "the total index score for each iteration"
(Figure 2) — :func:`run_unixbench` returns both levels, and the harness
uses the per-CPU-copies index for the figure's series.

Tests run sequentially (as in the real suite) on one machine instance, so
an attached SMI source keeps perturbing across test boundaries exactly as
the driver does on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.unixbench.index import IndexResult, TestScore
from repro.apps.unixbench.tests import UB_TESTS, UbTest
from repro.machine.topology import R410_SPEC
from repro.system import SimulatedMachine, make_machine

__all__ = ["UnixbenchRun", "run_unixbench"]

#: Target duration of one simulated measurement window.  Real UnixBench
#: uses 10 s; 1 s simulated keeps harness runtimes sane and still spans
#: several SMIs at the paper's intervals (100–1600 ms).
DEFAULT_DURATION_S = 2.0

#: Measurement-loop batch granularity (seconds of solo compute per batch).
_BATCH_S = 0.005


@dataclass
class UnixbenchRun:
    """Results of one full duplex UnixBench run."""

    logical_cpus: int
    single: IndexResult
    percpu: IndexResult

    @property
    def total_index(self) -> float:
        """The figure's y-value: the one-copy-per-CPU system index."""
        return self.percpu.index


def _measure_loop(machine: SimulatedMachine, test: UbTest, copies: int,
                  duration_ns: int) -> float:
    """Run ``copies`` independent measurement loops; return summed ops/s."""
    engine = machine.engine
    batch_units = test.profile.solo_rate(machine.node.spec.base_hz) * _BATCH_S
    batch_ops = max(1.0, batch_units / test.units_per_op)

    def loop_body(task):
        t0 = task.now_ns()
        ops = 0.0
        while task.now_ns() - t0 < duration_ns:
            yield from task.compute(batch_ops * test.units_per_op)
            ops += batch_ops
        return ops / ((task.now_ns() - t0) / 1e9)

    tasks = [
        machine.scheduler.spawn(loop_body, f"ub.{test.name}.{i}", test.profile)
        for i in range(copies)
    ]
    _run_all(machine, tasks)
    return sum(t.proc.result for t in tasks)


def _measure_pingpong(machine: SimulatedMachine, test: UbTest, copies: int,
                      duration_ns: int) -> float:
    """Context-switch pairs: each copy is two strictly-alternating tasks
    passing a token through a pipe; only one side runs at a time.  Passes
    are batched (the per-op work includes the switch + syscall cost)."""
    from repro.simx.resources import Channel

    engine = machine.engine
    batch_ops = 500.0
    results: List[float] = []
    tasks = []
    for c in range(copies):
        a2b = Channel(engine, capacity=1, name=f"pipe{c}.a2b")
        b2a = Channel(engine, capacity=1, name=f"pipe{c}.b2a")

        def ping(task, a2b=a2b, b2a=b2a):
            t0 = task.now_ns()
            ops = 0.0
            while task.now_ns() - t0 < duration_ns:
                yield from task.compute(batch_ops * test.units_per_op / 2)
                yield from a2b.put(ops)
                yield from b2a.get()
                ops += batch_ops
            yield from a2b.put(None)  # poison pill
            return ops / ((task.now_ns() - t0) / 1e9)

        def pong(task, a2b=a2b, b2a=b2a):
            while True:
                token = yield from a2b.get()
                if token is None:
                    return 0.0
                yield from task.compute(batch_ops * test.units_per_op / 2)
                yield from b2a.put(token)

        tasks.append(machine.scheduler.spawn(ping, f"ub.ctx.{c}.ping", test.profile))
        tasks.append(machine.scheduler.spawn(pong, f"ub.ctx.{c}.pong", test.profile))
    _run_all(machine, tasks)
    # Score the ping sides only (each pass is one context-switch pair).
    return sum(t.proc.result for t in tasks if t.proc.result)


def _run_all(machine: SimulatedMachine, tasks) -> None:
    engine = machine.engine
    done = engine.event("ub.phase")
    remaining = {"n": len(tasks)}

    def on_done(_ev):
        remaining["n"] -= 1
        if remaining["n"] == 0 and not done.triggered:
            done.succeed()

    for t in tasks:
        t.proc.done_event.add_callback(on_done)
    engine.run_until(done, limit_ns=engine.now + int(4_000e9))
    if not done.triggered:
        raise RuntimeError("unixbench phase did not finish")


def run_unixbench(
    logical_cpus: int,
    smi_durations=None,
    smi_interval_jiffies: int = 1000,
    seed: int = 1,
    duration_s: float = DEFAULT_DURATION_S,
    machine: Optional[SimulatedMachine] = None,
    metrics=None,
) -> UnixbenchRun:
    """One full duplex UnixBench run at a CPU configuration, optionally
    under SMI noise.  Returns single-copy and per-CPU-copy indices."""
    from repro.core.smi import SmiSource

    if machine is None:
        machine = make_machine(R410_SPEC, seed=seed, metrics=metrics)
    machine.sysfs.set_logical_cpus(logical_cpus)
    if smi_durations is not None:
        SmiSource(machine.node, smi_durations, smi_interval_jiffies, seed=seed + 29)
    duration_ns = int(duration_s * 1e9)

    def level(copies: int) -> IndexResult:
        scores = []
        for test in UB_TESTS:
            if test.kind == "pingpong":
                raw = _measure_pingpong(machine, test, copies, duration_ns)
            else:
                raw = _measure_loop(machine, test, copies, duration_ns)
            scores.append(TestScore(test.name, raw, test.baseline))
        return IndexResult(copies=copies, tests=scores)

    single = level(1)
    percpu = level(logical_cpus)
    return UnixbenchRun(logical_cpus=logical_cpus, single=single, percpu=percpu)
