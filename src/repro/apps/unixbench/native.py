"""Host-native twins of the five UnixBench tests.

Runnable micro-benchmarks against the *real* machine executing this
library — the same five tests the paper selected, implemented in Python
with the same measurement discipline (fixed wall window, count
operations, score against the george baseline).  They exist so the
examples can demonstrate the study methodology end-to-end on real
hardware (and so a host with genuine SMI noise would show it here); they
are not used by the deterministic benchmark harness.

Python-native raw results are of course far below C byte-unixbench
numbers; the index is still meaningful *relatively* (across CPU counts,
noise conditions, machines) which is all the paper's Figure 2 uses.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Callable, Dict, List

from repro.apps.unixbench.index import BASELINES, IndexResult, TestScore

__all__ = ["native_test_functions", "run_native_unixbench"]


def _timed(fn_once: Callable[[], float], duration_s: float) -> float:
    """Run ``fn_once`` (returns ops done) until the window closes; return
    ops/second."""
    t0 = time.monotonic_ns()
    deadline = t0 + int(duration_s * 1e9)
    ops = 0.0
    while time.monotonic_ns() < deadline:
        ops += fn_once()
    elapsed = (time.monotonic_ns() - t0) / 1e9
    return ops / elapsed if elapsed > 0 else 0.0


def _dhrystone_once() -> float:
    """String manipulations, Dhrystone-flavoured (copy/compare/index)."""
    s1 = "DHRYSTONE PROGRAM, 1'ST STRING"
    s2 = "DHRYSTONE PROGRAM, 2'ND STRING"
    n = 0
    for _ in range(2000):
        s3 = s1[:10] + s2[10:]
        if s3 > s1:
            n += 1
        if "PROGRAM" in s3:
            n += s3.index("PROGRAM")
    return 2000.0


def _whetstone_once() -> float:
    """Floating-point transcendental mix (sin/cos/sqrt/exp/log)."""
    x = 0.75
    for _ in range(5000):
        x = math.sqrt(abs(math.sin(x) + math.cos(x))) + 1e-9
        x = math.exp(math.log(x + 1.0)) - 1.0
    return 5000.0 / 1e4  # scaled so raw lands in a MWIPS-like range


def _make_pipe_throughput() -> Callable[[], float]:
    r, w = os.pipe()
    buf = b"x" * 512

    def once() -> float:
        for _ in range(500):
            os.write(w, buf)
            os.read(r, 512)
        return 500.0

    return once


def _make_context_switching() -> Callable[[], float]:
    """Two threads passing an increasing integer through a pipe pair
    (thread-based stand-in for the two-process original)."""
    r1, w1 = os.pipe()
    r2, w2 = os.pipe()
    stop = threading.Event()

    def echo() -> None:
        while not stop.is_set():
            data = os.read(r1, 8)
            if not data or data == b"quit\x00\x00\x00\x00":
                return
            os.write(w2, data)

    t = threading.Thread(target=echo, daemon=True)
    t.start()

    def once() -> float:
        for i in range(200):
            os.write(w1, i.to_bytes(8, "little"))
            os.read(r2, 8)
        return 200.0

    return once


def _syscall_once() -> float:
    for _ in range(2000):
        os.getpid()
    return 2000.0


def native_test_functions() -> Dict[str, Callable[[], float]]:
    """Fresh one-shot callables for each test (order matches the suite)."""
    return {
        "dhrystone": _dhrystone_once,
        "whetstone": _whetstone_once,
        "pipe_throughput": _make_pipe_throughput(),
        "context_switching": _make_context_switching(),
        "syscall_overhead": _syscall_once,
    }


def run_native_unixbench(duration_s: float = 0.3) -> IndexResult:
    """One single-copy pass of the five tests on the host."""
    scores: List[TestScore] = []
    for name, fn in native_test_functions().items():
        raw = _timed(fn, duration_s)
        scores.append(TestScore(name, raw, BASELINES[name]))
    return IndexResult(copies=1, tests=scores)
