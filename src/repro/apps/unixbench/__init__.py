"""UnixBench (§IV.C): the five selected tests, the index scoring, and the
duplex run protocol.

The paper uses a subset of byte-unixbench [8]:

* **Dhrystone** — string manipulations (integer/ALU mix).
* **Whetstone** — floating-point math functions.
* **Pipe Throughput** — single process read/write through a pipe.
* **Pipe-based Context Switching** — two processes ping-ponging an
  increasing integer through a shared pipe.
* **System Call Overhead** — entering/exiting trivial syscalls.

UnixBench's protocol runs each test for a fixed duration, scores
``result / baseline × 10`` against the classic SPARCstation 20-61
baseline, and reports the **geometric mean** as the index; the default
configuration runs everything twice — one copy, then one copy per CPU —
which is where HTT's benefit shows (Figure 2's per-CPU-configuration
series).

* :mod:`index` — scoring machinery (shared by simulated and native runs).
* :mod:`tests` — the five tests as simulator workload definitions.
* :mod:`runner` — the duplex protocol on a simulated machine.
* :mod:`native` — host-runnable micro-benchmark twins.
"""

from repro.apps.unixbench.index import BASELINES, TestScore, IndexResult, geometric_index
from repro.apps.unixbench.tests import UB_TESTS, UbTest
from repro.apps.unixbench.runner import run_unixbench

__all__ = [
    "BASELINES",
    "TestScore",
    "IndexResult",
    "geometric_index",
    "UB_TESTS",
    "UbTest",
    "run_unixbench",
]
