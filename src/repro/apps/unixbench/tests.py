"""The five UnixBench tests as simulator workload definitions.

Each test is a fixed-duration measurement: run as many operations as
possible, report operations per second.  ``units_per_op`` (CPU work per
scored operation) is calibrated so a single copy on one idle CPU of the
R410 model produces raw results in the range real byte-unixbench reports
on Nehalem-era Xeons; the *absolute* values only anchor the index scale —
Figure 2's content is how the index moves with CPUs, HTT, and SMI noise.

HTT yields encode §II.B's taxonomy: the FP-saturating Whetstone gains
nothing from HTT (Leng et al. [4]); the integer/string Dhrystone and the
syscall-heavy pipe tests leave stalls HTT can fill.  The aggregate is a
visible HTT gain for the suite, as Figure 2 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.unixbench.index import BASELINES
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import R410_SPEC

__all__ = ["UbTest", "UB_TESTS"]


@dataclass(frozen=True)
class UbTest:
    """One simulated UnixBench test."""

    name: str
    profile: WorkloadProfile
    #: CPU work units consumed per scored operation.
    units_per_op: float
    #: scoring baseline (george's result; see index.py).
    baseline: float
    #: "loop" = independent measurement loop per copy; "pingpong" = a
    #: strictly-alternating process pair per copy (the context-switch test).
    kind: str = "loop"

    def solo_ops_per_s(self) -> float:
        """Expected raw result of one copy on an idle CPU (calibration)."""
        return self.profile.solo_rate(R410_SPEC.base_hz) / self.units_per_op


def _t(name, profile, target_solo_ops, kind="loop") -> UbTest:
    units = profile.solo_rate(R410_SPEC.base_hz) / target_solo_ops
    return UbTest(name, profile, units, BASELINES[name], kind)


_DHRY = WorkloadProfile(
    name="ub-dhrystone",
    htt_yield=1.40,
    working_set_bytes=64 << 10,
    base_miss_rate=0.002,
    mem_ref_fraction=0.15,
    cache_sensitivity=0.5,
)
_WHET = WorkloadProfile(
    name="ub-whetstone",
    htt_yield=1.00,
    working_set_bytes=32 << 10,
    base_miss_rate=0.001,
    mem_ref_fraction=0.05,
    cache_sensitivity=0.5,
)
_PIPE = WorkloadProfile(
    name="ub-pipe",
    htt_yield=1.35,
    working_set_bytes=16 << 10,
    base_miss_rate=0.01,
    mem_ref_fraction=0.25,
    cache_sensitivity=0.5,
)
_CTX = WorkloadProfile(
    name="ub-ctx",
    htt_yield=1.30,
    working_set_bytes=16 << 10,
    base_miss_rate=0.01,
    mem_ref_fraction=0.25,
    cache_sensitivity=0.5,
)
_SYSC = WorkloadProfile(
    name="ub-syscall",
    htt_yield=1.35,
    working_set_bytes=8 << 10,
    base_miss_rate=0.005,
    mem_ref_fraction=0.20,
    cache_sensitivity=0.5,
)

#: The suite, in byte-unixbench run order.  Solo-result targets are
#: Nehalem-Xeon-era byte-unixbench figures.
UB_TESTS = (
    _t("dhrystone", _DHRY, 18e6),
    _t("whetstone", _WHET, 2_200.0),          # MWIPS
    _t("pipe_throughput", _PIPE, 1.4e6),
    _t("context_switching", _CTX, 320e3, kind="pingpong"),
    _t("syscall_overhead", _SYSC, 2.1e6),
)
