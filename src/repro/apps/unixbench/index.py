"""UnixBench index scoring.

Each test's raw result (loops/second, MWIPS, ...) is divided by the
reference result of the 1995 baseline machine (a SPARCstation 20-61,
byte-unixbench's ``george``) and multiplied by 10; the system's index is
the geometric mean of the per-test scores.  A score of 10 means
"as fast as george".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["BASELINES", "TestScore", "IndexResult", "geometric_index"]

#: byte-unixbench reference results (tests the paper selected).
BASELINES: Dict[str, float] = {
    "dhrystone": 116_700.0,        # lps
    "whetstone": 55.0,             # MWIPS
    "pipe_throughput": 12_440.0,   # lps
    "context_switching": 4_000.0,  # lps
    "syscall_overhead": 15_000.0,  # lps
}


@dataclass(frozen=True)
class TestScore:
    """One test's raw result and its index score."""

    __test__ = False  # not a pytest class, despite the name

    name: str
    raw: float
    baseline: float

    @property
    def score(self) -> float:
        return 10.0 * self.raw / self.baseline


@dataclass
class IndexResult:
    """A full scored run (one parallelism level)."""

    copies: int
    tests: List[TestScore]

    @property
    def index(self) -> float:
        return geometric_index([t.score for t in self.tests])

    def by_name(self) -> Dict[str, TestScore]:
        return {t.name: t for t in self.tests}


def geometric_index(scores: List[float]) -> float:
    """Geometric mean of the per-test scores (UnixBench's system index)."""
    if not scores:
        raise ValueError("no scores")
    if any(s <= 0 for s in scores):
        raise ValueError("scores must be positive")
    return math.exp(sum(math.log(s) for s in scores) / len(scores))
