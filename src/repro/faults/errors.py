"""The fault-subsystem boundary exception."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["FaultedRunError"]


class FaultedRunError(Exception):
    """A simulated run was killed by *injected model-level faults*.

    Raised at the cell boundary (``repro.runx.cells`` executors) when a
    run failed and the fault injector confirms it fired — so the runner
    can record the cell as ``failed-in-sim`` (a deterministic outcome that
    retries cannot change) instead of ``failed`` (a crash worth
    retrying).  ``events`` is the injector's fault log, which lands in
    the manifest row verbatim.
    """

    def __init__(self, message: str, events: Optional[List[Dict[str, Any]]] = None):
        super().__init__(message)
        self.events = list(events or [])
