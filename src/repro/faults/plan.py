"""Model-level fault plans: the what/where/when of injected faults.

A fault plan is a JSON list of rules — deliberately the same shape as
the process-level chaos plans of :mod:`repro.runx.chaos` (a ``match``
glob over cell ids plus a ``fault`` kind and per-kind parameters), so
process-level and model-level fault injection share one vocabulary.  The
difference is *where* the fault lands: chaos faults kill the worker
subprocess around the simulation; the faults described here are injected
*into* the simulated machines, links, and clocks, and the simulation is
expected to degrade gracefully (typed MPI errors, a ``failed-in-sim``
cell, a sweep that carries on).

Fault kinds
-----------
``node_crash``   node ``node`` fails hard at ``at_s`` (simulated seconds).
``node_hang``    node ``node`` freezes permanently at ``at_s`` (an SMI
                 handler that never returns).
``cpu_degrade``  logical CPU ``cpu`` of node ``node`` persistently runs
                 at ``factor`` of its base rate from ``at_s`` on.
``clock_skew``   node ``node``'s clocks drift by ``skew_ppm`` ppm from
                 ``at_s`` on.
``link_drop``    each matching message is dropped with probability ``p``.
``link_dup``     each matching message is duplicated with probability ``p``.
``link_corrupt`` each matching message's payload is corrupted with
                 probability ``p`` (receivers raise MpiCorruptionError).
``link_delay``   each matching message is delayed ``delay_ns`` extra wire
                 latency with probability ``p``.

Link rules may be scoped with ``src``/``dst`` (rank numbers; omitted =
any).  ``mpi_timeout_s`` on any rule overrides the derived MPI timeout
for cells the rule matches.
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["PLAN_ENV", "NODE_FAULTS", "LINK_FAULTS", "FaultRule", "FaultPlan"]

#: Environment variable naming the active model-fault plan file
#: (``--fault-plan FILE`` takes precedence when both are given).
PLAN_ENV = "REPRO_FAULT_PLAN"

NODE_FAULTS = ("node_crash", "node_hang", "cpu_degrade", "clock_skew")
LINK_FAULTS = ("link_drop", "link_dup", "link_corrupt", "link_delay")
_FAULTS = NODE_FAULTS + LINK_FAULTS


@dataclass(frozen=True)
class FaultRule:
    """Inject ``fault`` into the simulation of cells matching ``match``.

    ``match`` is an ``fnmatch`` glob tested against the cell id, exactly
    as in :class:`repro.runx.chaos.FaultRule`.  The remaining fields
    parameterize the fault kind (see module docstring); irrelevant fields
    are ignored for a given kind.
    """

    fault: str
    match: str = "*"
    node: int = 0
    cpu: int = 0
    at_s: float = 1.0
    factor: float = 0.5
    skew_ppm: float = 200.0
    p: float = 1.0
    delay_ns: int = 2_000_000
    src: Optional[int] = None
    dst: Optional[int] = None
    mpi_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fault not in _FAULTS:
            raise ValueError(f"unknown fault {self.fault!r} (one of {_FAULTS})")
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0: {self.at_s}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p must be in [0, 1]: {self.p}")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1]: {self.factor}")
        if self.delay_ns < 0:
            raise ValueError(f"delay_ns must be >= 0: {self.delay_ns}")
        if self.mpi_timeout_s is not None and self.mpi_timeout_s <= 0:
            raise ValueError(f"mpi_timeout_s must be > 0: {self.mpi_timeout_s}")

    @property
    def is_link(self) -> bool:
        return self.fault in LINK_FAULTS

    def applies(self, cell_id: str) -> bool:
        return fnmatch.fnmatchcase(cell_id, self.match)

    def to_record(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {"fault": self.fault, "match": self.match}
        if self.fault in NODE_FAULTS:
            rec["node"] = self.node
            rec["at_s"] = self.at_s
            if self.fault == "cpu_degrade":
                rec["cpu"] = self.cpu
                rec["factor"] = self.factor
            elif self.fault == "clock_skew":
                rec["skew_ppm"] = self.skew_ppm
        else:
            rec["p"] = self.p
            if self.fault == "link_delay":
                rec["delay_ns"] = self.delay_ns
            if self.src is not None:
                rec["src"] = self.src
            if self.dst is not None:
                rec["dst"] = self.dst
        if self.mpi_timeout_s is not None:
            rec["mpi_timeout_s"] = self.mpi_timeout_s
        return rec

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "FaultRule":
        return cls(
            fault=rec["fault"],
            match=rec.get("match", "*"),
            node=int(rec.get("node", 0)),
            cpu=int(rec.get("cpu", 0)),
            at_s=float(rec.get("at_s", 1.0)),
            factor=float(rec.get("factor", 0.5)),
            skew_ppm=float(rec.get("skew_ppm", 200.0)),
            p=float(rec.get("p", 1.0)),
            delay_ns=int(rec.get("delay_ns", 2_000_000)),
            src=rec.get("src"),
            dst=rec.get("dst"),
            mpi_timeout_s=rec.get("mpi_timeout_s"),
        )


@dataclass
class FaultPlan:
    rules: List[FaultRule] = field(default_factory=list)

    def rules_for(self, cell_id: str) -> List[FaultRule]:
        """Every rule whose glob matches ``cell_id`` (order preserved)."""
        return [r for r in self.rules if r.applies(cell_id)]

    # -- (de)serialization ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([r.to_record() for r in self.rules], indent=1)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json() + "\n")

    @classmethod
    def from_rules(cls, rules: Sequence[Dict[str, Any]]) -> "FaultPlan":
        return cls([FaultRule.from_record(r) for r in rules])

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fp:
            data = json.load(fp)
        if not isinstance(data, list):
            raise ValueError("fault plan must be a JSON list of rules")
        return cls.from_rules(data)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        path = os.environ.get(PLAN_ENV)
        return cls.load(path) if path else None
