"""Deterministic in-simulation fault injection.

See :mod:`repro.faults.plan` for the JSON plan vocabulary,
:mod:`repro.faults.injector` for arming a plan against a cluster or a
single machine, and DESIGN.md "§ Fault model" for the semantics.
"""

from repro.faults.errors import FaultedRunError
from repro.faults.injector import DEFAULT_MPI_TIMEOUT_S, FaultInjector
from repro.faults.plan import (
    LINK_FAULTS,
    NODE_FAULTS,
    PLAN_ENV,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "PLAN_ENV",
    "NODE_FAULTS",
    "LINK_FAULTS",
    "DEFAULT_MPI_TIMEOUT_S",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "FaultedRunError",
]
