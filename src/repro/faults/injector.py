"""The fault injector: arms a plan's rules against a live simulation.

One injector serves one simulated run (one repetition of one cell) —
it owns a seeded RNG for the probabilistic link faults, a bounded event
log, and the derived MPI timeout.  Attach it to a
:class:`repro.mpi.cluster.Cluster` *before* the job launches::

    inj = FaultInjector.from_rules(rule_dicts, seed=seed)
    inj.attach(cluster)            # arms node-fault timers, hooks links
    run_mpi_job(cluster, ...)      # raises JobAbortedError on fatal faults

or to a single :class:`repro.machine.node.Node` for the single-machine
experiments (Convolve, UnixBench)::

    inj.attach_node(machine.node)

Everything is deterministic: timers fire at the rule's ``at_s`` in
simulated time, and link-fault coin flips come from ``random.Random``
seeded from the run seed — the same seed and plan replay the same faults.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.faults.plan import LINK_FAULTS, FaultRule
from repro.mpi.errors import CorruptedPayload

__all__ = ["FaultInjector", "DEFAULT_MPI_TIMEOUT_S"]

#: Derived MPI timeout (simulated seconds) when the plan contains faults
#: that can stall communication (hangs, message drops) but no rule names
#: an explicit ``mpi_timeout_s``.
DEFAULT_MPI_TIMEOUT_S = 60.0

#: Fault kinds that make further progress of the affected run impossible.
_FATAL = frozenset(("node_crash", "node_hang"))

#: Event-log bound: heavy traffic under ``link_drop p=1`` would otherwise
#: log one event per message.  Overflow is counted in ``suppressed``.
_EVENT_CAP = 200


class FaultInjector:
    """Schedules and applies one plan's worth of model-level faults."""

    def __init__(
        self,
        rules: Sequence[Union[FaultRule, Dict[str, Any]]],
        seed: int = 0,
        metrics=None,
    ):
        self.rules: List[FaultRule] = [
            r if isinstance(r, FaultRule) else FaultRule.from_record(r)
            for r in rules
        ]
        self.seed = seed
        self.rng = random.Random(seed * 6271 + 101)
        self.events: List[Dict[str, Any]] = []
        self.suppressed = 0
        self.metrics = metrics
        self._link_rules = [r for r in self.rules if r.is_link]
        self._c_injected = (
            metrics.counter("faults.injected", "model-level faults fired")
            if metrics is not None else None
        )
        explicit = [r.mpi_timeout_s for r in self.rules
                    if r.mpi_timeout_s is not None]
        if explicit:
            self.mpi_timeout_s: Optional[float] = min(explicit)
        elif any(r.fault in ("node_hang", "link_drop") for r in self.rules):
            self.mpi_timeout_s = DEFAULT_MPI_TIMEOUT_S
        else:
            self.mpi_timeout_s = None

    @classmethod
    def from_rules(cls, rule_dicts: Sequence[Dict[str, Any]], seed: int = 0,
                   metrics=None) -> "FaultInjector":
        return cls(rule_dicts, seed=seed, metrics=metrics)

    # -- arming ---------------------------------------------------------------
    def attach(self, cluster) -> "FaultInjector":
        """Register as the cluster's fault domain and arm node-fault
        timers (daemon — they never keep the engine alive).  Link rules
        need no timers; the communicator consults :meth:`on_message`."""
        cluster.faults = self
        engine = cluster.engine
        for rule in self.rules:
            if rule.is_link:
                continue
            if not (0 <= rule.node < len(cluster.nodes)):
                continue  # rule targets a node this cell doesn't have
            engine.schedule_at(
                int(rule.at_s * 1e9), self._fire_node_fault, rule,
                cluster.nodes[rule.node], daemon=True,
            )
        return self

    def attach_node(self, node) -> "FaultInjector":
        """Single-machine variant: arm node-level rules targeting node 0
        against ``node``.  Link rules are meaningless here and skipped."""
        for rule in self.rules:
            if rule.is_link or rule.node != 0:
                continue
            node.engine.schedule_at(
                int(rule.at_s * 1e9), self._fire_node_fault, rule, node,
                daemon=True,
            )
        return self

    # -- node faults ----------------------------------------------------------
    def _fire_node_fault(self, rule: FaultRule, node) -> None:
        kind = rule.fault
        if kind == "node_crash":
            node.fail(f"fault plan: node_crash at {rule.at_s}s")
            self._record(kind, node=node.name, at_ns=node.engine.now)
        elif kind == "node_hang":
            node.hang(f"fault plan: node_hang at {rule.at_s}s")
            self._record(kind, node=node.name, at_ns=node.engine.now)
        elif kind == "cpu_degrade":
            if 0 <= rule.cpu < len(node.cpus):
                node.cpus[rule.cpu].degrade(rule.factor)
                self._record(kind, node=node.name, at_ns=node.engine.now,
                             cpu=rule.cpu, factor=rule.factor)
        elif kind == "clock_skew":
            node.clock.set_skew(rule.skew_ppm)
            self._record(kind, node=node.name, at_ns=node.engine.now,
                         skew_ppm=rule.skew_ppm)
        if node.timeline.enabled:
            node.timeline.record(node.engine.now, f"fault.{kind}", node.name)

    @property
    def fatal(self) -> bool:
        """True when a fired fault makes the run's completion impossible
        (node crash/hang) — even if the run "finished" superficially."""
        return any(e["fault"] in _FATAL for e in self.events)

    # -- link faults ----------------------------------------------------------
    def on_message(self, msg) -> List[tuple]:
        """Link-fault hook consulted by the communicator for every
        message.  Returns ``[(message, extra_latency_ns), ...]`` — empty
        when the message is dropped, two entries when duplicated."""
        if not self._link_rules:
            return [(msg, 0)]
        out = msg
        extra = 0
        copies = 1
        for rule in self._link_rules:
            if rule.src is not None and rule.src != msg.src:
                continue
            if rule.dst is not None and rule.dst != msg.dst:
                continue
            if rule.p < 1.0 and self.rng.random() >= rule.p:
                continue
            kind = rule.fault
            if kind == "link_drop":
                self._record(kind, src=msg.src, dst=msg.dst, nbytes=msg.nbytes)
                return []
            if kind == "link_dup":
                copies += 1
                self._record(kind, src=msg.src, dst=msg.dst, nbytes=msg.nbytes)
            elif kind == "link_corrupt":
                out = replace(out, payload=CorruptedPayload(out.payload))
                self._record(kind, src=msg.src, dst=msg.dst, nbytes=msg.nbytes)
            elif kind == "link_delay":
                extra += rule.delay_ns
                self._record(kind, src=msg.src, dst=msg.dst,
                             delay_ns=rule.delay_ns)
        return [(out, extra)] * copies

    # -- event log ------------------------------------------------------------
    def _record(self, kind: str, **info: Any) -> None:
        if self._c_injected is not None:
            self._c_injected.inc()
        if len(self.events) >= _EVENT_CAP:
            self.suppressed += 1
            return
        self.events.append({"fault": kind, **info})

    def summary(self) -> Dict[str, Any]:
        """Compact event log for manifests: the (bounded) events plus the
        overflow count when traffic-level faults exceeded the cap."""
        out: Dict[str, Any] = {"events": list(self.events)}
        if self.suppressed:
            out["suppressed"] = self.suppressed
        return out
