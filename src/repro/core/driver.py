"""The "Blackbox SMI" driver model.

The paper (§III.B) uses a modified version of Delgado & Karavanic's
driver [7]: a kernel module that (a) triggers SMIs of a configured class
every *x* jiffies and (b) self-measures the resulting SMM residency with
the TSC — reading the counter immediately before asserting the SMI and
immediately after control returns.  "The SMI driver uses the TSC counter
to measure the average SMI latency."

:class:`BlackboxSmiDriver` reproduces that interface on a simulated node:
``configure()`` mirrors the module parameters, ``start()/stop()`` load and
unload the trigger, and ``read_stats()`` returns what the driver's procfs
file would show — including the *measured* latencies, which differ from
the configured durations by the SMM entry rendezvous (and which are how
the experiments verify the 1–3 ms / 100–110 ms classes actually landed).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.core.smi import SmiDurations, SmiProfile, SmiSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["BlackboxSmiDriver", "DriverStats"]

log = logging.getLogger(__name__)


@dataclass
class DriverStats:
    """What ``cat /proc/smi_driver`` reports."""

    smi_count: int = 0
    mean_latency_ns: float = 0.0
    min_latency_ns: int = 0
    max_latency_ns: int = 0
    latencies_ns: List[int] = field(default_factory=list)


class BlackboxSmiDriver:
    """Loadable SMI trigger for one node."""

    def __init__(self, node: "Node"):
        self.node = node
        self.durations: Optional[SmiDurations] = SmiProfile.SHORT
        self.interval_jiffies = 1000
        self.seed = 0
        self._source: Optional[SmiSource] = None
        self._baseline_entries = 0

    # -- module parameters -----------------------------------------------------
    def configure(
        self,
        smm_class: int = 1,
        interval_jiffies: int = 1000,
        seed: int = 0,
    ) -> None:
        """Set module parameters (must be stopped).

        ``smm_class`` follows the paper's table encoding: 0 = no SMIs,
        1 = short (1–3 ms), 2 = long (100–110 ms).
        """
        if self._source is not None:
            raise RuntimeError("driver is loaded; stop() before reconfiguring")
        self.durations = SmiProfile.by_index(smm_class)
        self.interval_jiffies = interval_jiffies
        self.seed = seed

    def start(self) -> None:
        """insmod: begin triggering."""
        if self._source is not None:
            raise RuntimeError("driver already loaded")
        self._baseline_entries = self.node.smm.stats.entries
        log.info("%s: loading SMI driver interval=%d jiffies seed=%d",
                 self.node.name, self.interval_jiffies, self.seed)
        self._source = SmiSource(
            self.node, self.durations, self.interval_jiffies, seed=self.seed
        )

    def stop(self) -> None:
        """rmmod: stop triggering (pending SMM residency still completes)."""
        if self._source is not None:
            log.info("%s: unloading SMI driver after %d entries",
                     self.node.name,
                     self.node.smm.stats.entries - self._baseline_entries)
            self._source.stop()
            self._source = None

    @property
    def loaded(self) -> bool:
        return self._source is not None

    # -- procfs ------------------------------------------------------------
    def read_stats(self) -> DriverStats:
        """TSC-measured latency statistics since :meth:`start`."""
        all_lat = self.node.smm.stats.measured_latency_ns
        lat = all_lat[self._baseline_entries:]
        if not lat:
            return DriverStats()
        return DriverStats(
            smi_count=len(lat),
            mean_latency_ns=sum(lat) / len(lat),
            min_latency_ns=min(lat),
            max_latency_ns=max(lat),
            latencies_ns=list(lat),
        )
