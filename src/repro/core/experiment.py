"""Experiment methodology: run matrices, repetitions, and Δ/%Δ reduction.

The paper's protocol (§III.C): "For each case we measured six runs and
report the average.  We repeated the entire set of measurements for the
three cases: no SMI activity, short SMIs, and long SMIs."  Its tables then
show, per configuration, the base mean, and for each SMI class the mean,
the absolute delta (Δ) and the percent change (%).

This module packages that protocol so every benchmark harness uses the
same machinery: a case is a named configuration; a *runner* maps
``(case, smm_class, seed) -> wall seconds (or None if infeasible)``; the
reducer produces the paper-style row.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "ExperimentCase",
    "Measurement",
    "ExperimentResult",
    "run_repeated",
    "run_matrix",
    "default_reps",
    "reps_from_env",
    "rep_seed",
    "smm_cell_seed",
]

log = logging.getLogger(__name__)

#: The paper uses 6 repetitions; simulations are deterministic apart from
#: seeded jitter, so harnesses default lower and honour REPRO_BENCH_REPS.
PAPER_REPS = 6

#: Per-repetition and per-SMI-class seed strides.  These are *positional*
#: derivations — a cell's seeds depend only on where it sits in the
#: matrix, never on execution order — which is what lets `repro.runx`
#: run cells in parallel or resume a sweep and still produce results
#: bit-identical to an uninterrupted serial run.
REP_SEED_STRIDE = 7919
SMM_SEED_STRIDE = 31
HTT_SEED_OFFSET = 977


def rep_seed(base_seed: int, rep: int) -> int:
    """Seed of repetition ``rep`` (0-based) of a cell."""
    return base_seed + REP_SEED_STRIDE * rep


def smm_cell_seed(seed: int, smm: int, htt: bool = False) -> int:
    """Base seed of the (smm, htt) cell of a table row."""
    return seed + SMM_SEED_STRIDE * smm + (HTT_SEED_OFFSET if htt else 0)


def reps_from_env(var: str = "REPRO_BENCH_REPS") -> Optional[int]:
    """Validated repetition override from the environment, or None.

    The single source of truth for ``$REPRO_BENCH_REPS`` parsing (both
    the harness knobs and :func:`default_reps` use it): non-numeric or
    non-positive values raise a ``ValueError`` that names the variable
    and the offending text instead of a bare ``int()`` traceback.
    """
    v = os.environ.get(var)
    if not v:
        return None
    try:
        n = int(v)
    except ValueError:
        raise ValueError(
            f"{var} must be a positive integer, got {v!r}"
        ) from None
    if n < 1:
        raise ValueError(f"{var} must be >= 1, got {n}")
    return n


def default_reps(fallback: int = 3) -> int:
    """Repetitions to use: $REPRO_BENCH_REPS, or ``fallback``."""
    n = reps_from_env()
    return n if n is not None else fallback


@dataclass(frozen=True)
class ExperimentCase:
    """One configuration row of a table (e.g. class B, 4 ranks, 1/node)."""

    name: str
    params: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.name


@dataclass
class Measurement:
    """Repetition statistics of one (case, smm) cell."""

    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def std(self) -> float:
        return stdev(self.values) if len(self.values) > 1 else 0.0

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)


@dataclass
class ExperimentResult:
    """A full paper-style row: base plus per-SMI-class deltas.

    ``cells[smm]`` is the :class:`Measurement` for that SMI class, or
    ``None`` if the configuration is infeasible (the tables' "-").
    """

    case: ExperimentCase
    cells: Dict[int, Optional[Measurement]]

    def base(self) -> Optional[float]:
        m = self.cells.get(0)
        return m.mean if m is not None else None

    def delta(self, smm: int) -> Optional[float]:
        m, b = self.cells.get(smm), self.base()
        if m is None or b is None:
            return None
        return m.mean - b

    def pct(self, smm: int) -> Optional[float]:
        d, b = self.delta(smm), self.base()
        if d is None or b is None or b == 0:
            return None
        return 100.0 * d / b


def run_repeated(
    runner: Callable[[int], Optional[float]],
    reps: int,
    base_seed: int = 1,
) -> Optional[Measurement]:
    """Run ``runner(seed)`` ``reps`` times with distinct seeds; average.

    Returns None if the first repetition reports infeasibility (None) —
    infeasibility is configuration-determined, not seed-determined.
    """
    values: List[float] = []
    for r in range(reps):
        seed = rep_seed(base_seed, r)
        v = runner(seed)
        if v is None:
            log.debug("rep %d/%d seed=%d: infeasible", r + 1, reps, seed)
            return None
        log.debug("rep %d/%d seed=%d: %.6fs", r + 1, reps, seed, v)
        values.append(v)
    return Measurement(values)


def run_matrix(
    cases: Sequence[ExperimentCase],
    runner: Callable[[ExperimentCase, int, int], Optional[float]],
    smm_classes: Sequence[int] = (0, 1, 2),
    reps: int = PAPER_REPS,
    base_seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ExperimentResult]:
    """The paper's full protocol: every case × every SMI class × reps.

    ``runner(case, smm, seed)`` returns wall seconds or None (infeasible).
    """
    results: List[ExperimentResult] = []
    for case in cases:
        cells: Dict[int, Optional[Measurement]] = {}
        for smm in smm_classes:
            if progress is not None:
                progress(f"{case.name} smm={smm}")
            cells[smm] = run_repeated(
                lambda seed, case=case, smm=smm: runner(case, smm, seed),
                reps=reps,
                base_seed=base_seed + 104729 * smm,
            )
        results.append(ExperimentResult(case, cells))
    return results
