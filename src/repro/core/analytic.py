"""Closed-form first-order noise models.

The simulator should never be trusted blindly: these analytic bounds and
estimates (used by the property tests and the ablation benches) bracket
what it produces.

* :func:`duty_cycle` — fraction of wall time stolen by a periodic SMI
  under the free-running/swallowed-tick trigger discipline of
  :class:`repro.core.smi.SmiSource`.
* :func:`serial_slowdown` — the slowdown of uninterruptible serial work:
  ``1 / (1 − duty)``.
* :func:`expected_extra_max_of_n` — for N ranks finishing independently
  (EP's shape), the expected extra time of the *last* finisher, by exact
  expectation over uniformly random SMI phases.
* :func:`coupled_utilization` — the tight-coupling limit: a lock-step
  application advances only while *no* node is frozen; with per-node duty
  ``d`` and phases spread over ``spread`` of the period, the utilization
  is bounded below by ``1 − (spread + duration)/period`` (clustered
  phases) and above by ``(1 − d)^n`` (independent phases).
"""

from __future__ import annotations

import math

__all__ = [
    "duty_cycle",
    "serial_slowdown",
    "expected_extra_max_of_n",
    "coupled_utilization_bounds",
]


def duty_cycle(duration_ns: float, interval_ns: float) -> float:
    """Fraction of wall time inside SMM for one node.

    For ``interval > duration`` the trigger free-runs: duty = d/T.  For
    ``interval <= duration`` every tick is swallowed and the source
    re-arms one interval after exit: duty = d/(d+T).
    """
    if duration_ns <= 0:
        return 0.0
    if interval_ns > duration_ns:
        return duration_ns / interval_ns
    return duration_ns / (duration_ns + interval_ns)


def serial_slowdown(duration_ns: float, interval_ns: float) -> float:
    """Wall-time inflation of serial, sync-free work under periodic SMIs."""
    d = duty_cycle(duration_ns, interval_ns)
    if d >= 1.0:
        return math.inf
    return 1.0 / (1.0 - d)


def expected_extra_max_of_n(
    base_s: float, duration_s: float, interval_s: float, n: int, samples: int = 4096
) -> float:
    """Expected extra completion time of the slowest of ``n`` independent
    ranks, each running ``base_s`` of work with its own uniformly-random
    SMI phase.  Computed by quadrature over the phase (each rank's extra
    time is a deterministic function of its phase)."""
    if n < 1:
        raise ValueError("n >= 1")
    if duration_s <= 0:
        return 0.0

    def extra_for_phase(phi: float) -> float:
        # SMIs at phi, phi+T, ...; each adds `duration` to the finish time.
        # Count k = number of SMIs that fire before the (stretched) finish.
        k = 0
        while phi + k * interval_s < base_s + k * duration_s:
            k += 1
        return k * duration_s

    # Sample the per-phase extra distribution, then take E[max of n].
    extras = sorted(
        extra_for_phase((i + 0.5) / samples * interval_s) for i in range(samples)
    )
    # P(extra <= x) from the empirical CDF; E[max] = Σ x·(F^n diff).
    e_max = 0.0
    prev_cdf = 0.0
    for i, x in enumerate(extras):
        cdf = (i + 1) / samples
        e_max += x * (cdf**n - prev_cdf**n)
        prev_cdf = cdf
    return e_max


def coupled_utilization_bounds(
    duration_s: float, interval_s: float, n_nodes: int, spread_s: float
) -> tuple[float, float]:
    """(lower, upper) bounds on the utilization of a lock-step coupled
    application on ``n_nodes`` whose SMI phases are clustered within
    ``spread_s``.

    Upper bound: perfectly-aligned phases — one freeze window per period,
    utilization ``1 − d``.  Lower bound: the union of n staggered windows
    covers at most ``min(interval, spread + duration)`` per period (with
    clustered phases) and at most ``1 − (1−d)^n`` in expectation for
    independent phases; we return the clustered-phase bound.
    """
    d = duty_cycle(duration_s, interval_s)
    upper = 1.0 - d
    union = min(interval_s, spread_s + duration_s)
    lower = max(0.0, 1.0 - union / interval_s)
    if n_nodes == 1:
        lower = upper
    return lower, upper
