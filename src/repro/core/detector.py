"""SMI detection from timing gaps (hwlat-style).

§II.C: latency-sensitive users "use tools to detect their occurrence"
[21] — the canonical technique (RT Linux's hwlat detector, Intel's
BIOSBITS [15]) is a spin loop that reads a free-running clock and flags
any gap larger than a threshold: the OS cannot observe SMM directly, but
a single-threaded spinner cannot lose the CPU to anything *except* an SMI
(when pinned and running at the highest priority), so large gaps are SMM
residency.  BIOSBITS warns when a gap exceeds **150 µs**.

Two implementations:

* :class:`GapDetector` — runs inside the simulator as a gated polling
  process; its wake-ups freeze with the node, so observed gaps equal
  `quantum + SMM residency` during an SMI.
* :func:`host_gap_scan` — the same algorithm against the *real*
  ``time.monotonic_ns()`` of the machine running this library: a genuine,
  usable latency-noise detector (see ``examples/smi_detection.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generator, List, Optional, TYPE_CHECKING

from repro.simx.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["Gap", "DetectorReport", "GapDetector", "host_gap_scan", "BIOSBITS_THRESHOLD_NS"]

#: Intel BIOSBITS warns if SMM residency exceeds 150 microseconds.
BIOSBITS_THRESHOLD_NS = 150_000


@dataclass(frozen=True)
class Gap:
    """One detected latency gap."""

    at_ns: int
    width_ns: int


@dataclass
class DetectorReport:
    """Result of a detection window."""

    window_ns: int
    quantum_ns: int
    threshold_ns: int
    gaps: List[Gap] = field(default_factory=list)
    samples: int = 0

    @property
    def detected(self) -> int:
        return len(self.gaps)

    @property
    def total_gap_ns(self) -> int:
        return sum(g.width_ns for g in self.gaps)

    @property
    def biosbits_violations(self) -> int:
        """Gaps exceeding the BIOSBITS 150 µs budget."""
        return sum(1 for g in self.gaps if g.width_ns > BIOSBITS_THRESHOLD_NS)

    def max_gap_ns(self) -> int:
        return max((g.width_ns for g in self.gaps), default=0)


class GapDetector:
    """Simulated spin-gap detector on one node.

    Polls the monotonic clock every ``quantum_ns``; any observed interval
    wider than ``quantum_ns + threshold_ns`` is recorded as a gap of the
    excess width.  Because the detector process is gated by the node, SMM
    residency shows up as a gap of (approximately) the SMI latency —
    which is how the experiments *verify* injected noise independently of
    the driver's own statistics.
    """

    def __init__(
        self,
        node: "Node",
        quantum_ns: int = 50_000,
        threshold_ns: int = BIOSBITS_THRESHOLD_NS,
    ):
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.node = node
        self.quantum_ns = quantum_ns
        self.threshold_ns = threshold_ns
        self.report: Optional[DetectorReport] = None

    def run(self, window_ns: int) -> Generator:
        """Process body: spin for ``window_ns``; result in ``self.report``.

        Start with ``engine.process(det.run(win), gate=det.node)`` — the
        gate is what makes the detector see the freeze.
        """
        rep = DetectorReport(window_ns, self.quantum_ns, self.threshold_ns)
        self.report = rep
        clock = self.node.clock
        start = clock.monotonic_ns()
        last = start
        while clock.monotonic_ns() - start < window_ns:
            yield Delay(self.quantum_ns)
            now = clock.monotonic_ns()
            rep.samples += 1
            excess = (now - last) - self.quantum_ns
            if excess > self.threshold_ns:
                rep.gaps.append(Gap(at_ns=last, width_ns=excess))
            last = now
        return rep


def host_gap_scan(
    window_s: float = 1.0,
    threshold_ns: int = BIOSBITS_THRESHOLD_NS,
) -> DetectorReport:
    """Run the gap scan on the *host* machine (real hardware).

    A tight loop over ``time.monotonic_ns()``; every observed gap above
    ``threshold_ns`` is recorded.  On an idle, pinned, high-priority run
    the survivors are firmware noise (SMIs) and involuntary preemption;
    without pinning the report still usefully characterizes platform
    jitter.  This is this library's equivalent of the tooling the paper
    says latency-sensitive users reach for [19][20][21].
    """
    window_ns = int(window_s * 1e9)
    rep = DetectorReport(window_ns=window_ns, quantum_ns=0, threshold_ns=threshold_ns)
    start = time.monotonic_ns()
    last = start
    while True:
        now = time.monotonic_ns()
        rep.samples += 1
        gap = now - last
        if gap > threshold_ns:
            rep.gaps.append(Gap(at_ns=last - start, width_ns=gap))
        last = now
        if now - start >= window_ns:
            return rep
