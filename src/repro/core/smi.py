"""SMI noise sources.

Reproduces the trigger discipline of the paper's modified "Blackbox SMI"
driver (§III.B, §IV.A):

* Two duration classes — **short**: total SMM residency 1–3 ms, **long**:
  100–110 ms.  No work is done in the handler; the residency *is* the
  perturbation.
* The driver triggers one SMI every *x* jiffies (1 jiffy = 1 ms on the
  paper's systems).  The MPI study uses x = 1000 (1 SMI/s); the
  multithreaded study sweeps x = 50…1500 (§IV.B) and 100…1600 (§IV.C).
* Each node's driver runs independently: phases are **not** synchronized
  across a cluster, which is what makes synchronized applications see a
  *max* over staggered noise (DESIGN.md §5.3).

Tick discipline: the trigger timer free-runs.  A tick that lands while the
machine is already in SMM (possible when the interval is shorter than the
SMI duration, e.g. Figure 1's 50 ms interval vs a 100–110 ms handler)
cannot be serviced — the timer softirq is itself frozen — so that tick is
swallowed and the schedule re-arms one full interval after SMM exit.
Consequently:

* interval ≫ duration — duty cycle ≈ duration/interval (the ~10.5 % tax
  of the long/1 s MPI configuration);
* interval < duration — the machine gets exactly one interval of useful
  time per SMI: useful fraction = interval/(interval + duration), the
  "dramatic" regime at the left edge of Figures 1–2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from repro.simx.engine import Delay
from repro.machine.clock import JIFFY_NS

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["SmiDurations", "SmiProfile", "SmiSource"]


@dataclass(frozen=True)
class SmiDurations:
    """One SMI duration class: residency sampled uniformly in [dmin, dmax]."""

    name: str
    dmin_ns: int
    dmax_ns: int

    def __post_init__(self) -> None:
        if not (0 < self.dmin_ns <= self.dmax_ns):
            raise ValueError("need 0 < dmin <= dmax")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.dmin_ns, self.dmax_ns)

    @property
    def mean_ns(self) -> float:
        return (self.dmin_ns + self.dmax_ns) / 2.0


class SmiProfile:
    """The paper's SMI classes (SMM 0/1/2 in Tables 1–5) plus the RIM
    profile motivating the study (runtime-integrity checks from SMM)."""

    #: SMM 0 — no SMI activity (the base case).
    NONE: Optional[SmiDurations] = None
    #: SMM 1 — "short": 1–3 ms total residency.
    SHORT = SmiDurations("short", 1_000_000, 3_000_000)
    #: SMM 2 — "long": 100–110 ms total residency.
    LONG = SmiDurations("long", 100_000_000, 110_000_000)
    #: A HyperSentry/SPECTRE-style integrity measurement: tens of ms.
    RIM = SmiDurations("rim", 30_000_000, 40_000_000)

    @classmethod
    def by_index(cls, smm: int) -> Optional[SmiDurations]:
        """Map the paper's table column index (0/1/2) to a duration class."""
        return {0: cls.NONE, 1: cls.SHORT, 2: cls.LONG}[smm]

    @classmethod
    def label(cls, smm: int) -> str:
        return {0: "SMM 0", 1: "SMM 1", 2: "SMM 2"}[smm]


class SmiSource:
    """Periodic SMI generator attached to one node.

    Runs as an *ungated* process: the trigger hardware sits below the host
    software stack and keeps time during SMM.  Deterministic given
    ``seed`` (which controls both the initial phase and the per-SMI
    duration jitter).
    """

    def __init__(
        self,
        node: "Node",
        durations: Optional[SmiDurations],
        interval_jiffies: int,
        seed: int = 0,
        phase_ns: Optional[int] = None,
    ):
        self.node = node
        self.durations = durations
        self.interval_ns = int(interval_jiffies) * JIFFY_NS
        self.rng = random.Random(seed)
        self.triggered = 0
        self.swallowed_ticks = 0
        self._stopped = False
        self.proc = None
        #: Absolute engine time of the next trigger tick.  An attribute
        #: (not a generator local) so the prefix-fork planner can
        #: retarget the interval of a warmed source in place
        #: (:meth:`retarget_interval`).
        self._t_next: Optional[int] = None
        m = node.metrics
        if m is not None:
            self._m_triggered = m.counter("smi.triggered", "SMIs asserted")
            self._m_swallowed = m.counter(
                "smi.ticks_swallowed", "trigger ticks lost to in-progress SMM")
        else:
            self._m_triggered = None
            self._m_swallowed = None
        if durations is None:
            return  # SMM 0: no noise source.
        if interval_jiffies <= 0:
            raise ValueError("interval_jiffies must be positive")
        if phase_ns is None:
            phase_ns = self.rng.randint(0, self.interval_ns - 1)
        self.phase_ns = int(phase_ns)
        self.proc = node.engine.process(
            self._run(), name=f"{node.name}.smi-source", gate=None, daemon=True
        )

    def stop(self) -> None:
        """Silence the source (kills the generator process)."""
        self._stopped = True
        if self.proc is not None and self.proc.alive:
            self.proc.kill()

    def _run(self) -> Generator:
        engine = self.node.engine
        self._t_next = engine.now + self.phase_ns
        while not self._stopped:
            gap = self._t_next - engine.now
            if gap > 0:
                yield Delay(gap)
            if self._stopped:
                return
            if self.node.smm.in_smm:
                # Swallowed tick: the timer can't run inside SMM; re-arm a
                # full interval after exit (phase reset).
                self.swallowed_ticks += 1
                if self._m_swallowed is not None:
                    self._m_swallowed.value += 1
                yield self.node.smm.wait_exit()
                self._t_next = engine.now + self.interval_ns
                continue
            duration = self.durations.sample(self.rng)
            self.node.smm.trigger(duration, source="smi-driver")
            self.triggered += 1
            if self._m_triggered is not None:
                self._m_triggered.value += 1
            self._t_next += self.interval_ns

    # -- prefix-fork retargeting (DESIGN.md §11) ----------------------------
    def retarget_interval(self, interval_jiffies: int) -> bool:
        """Change this warmed source's interval in place, as if it had been
        constructed with ``interval_jiffies`` from the start.

        Valid exactly when the histories coincide: the phase draw is
        interval-independent (the cluster passes ``phase_ns`` in), the
        per-SMI duration stream depends only on trigger *count*, and the
        interval first enters the schedule when the tick after the first
        trigger is armed.  So retargeting is exact iff no tick was
        swallowed and at most one trigger has fired, and — when one has —
        the new interval is no shorter than the old one (the pending tick
        can be pushed later, never into the past).  Returns ``False``
        (and changes nothing) when those conditions do not hold.

        When the pending-tick entry's fire time is shifted, the caller
        must :meth:`~repro.simx.engine.Engine.reheapify` once after
        retargeting every source, before resuming the engine.
        """
        new_ns = int(interval_jiffies) * JIFFY_NS
        if self.durations is None or self.proc is None:
            return True  # SMM 0: no schedule to retarget
        if new_ns == self.interval_ns:
            return True
        if self.swallowed_ticks > 0 or self.triggered > 1 or self._stopped:
            return False
        if self.triggered == 1:
            delta = new_ns - self.interval_ns
            if delta < 0:
                return False
            entry = self.proc._pending_handle
            if type(entry) is not list or entry[5]:
                return False  # not parked on the next-tick delay
            entry[0] += delta
            self._t_next += delta
        self.interval_ns = new_ns
        return True

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        return {
            "interval_ns": self.interval_ns,
            "triggered": self.triggered,
            "swallowed_ticks": self.swallowed_ticks,
            "stopped": self._stopped,
            "t_next": self._t_next,
            "rng_state": self.rng.getstate(),
        }

    def __restore__(self, state: dict) -> None:
        self.interval_ns = state["interval_ns"]
        self.triggered = state["triggered"]
        self.swallowed_ticks = state["swallowed_ticks"]
        self._stopped = state["stopped"]
        self._t_next = state["t_next"]
        self.rng.setstate(state["rng_state"])

    # -- analysis helpers ---------------------------------------------------
    @property
    def expected_duty_cycle(self) -> float:
        """First-order fraction of wall time stolen (interval ≫ duration)."""
        if self.durations is None:
            return 0.0
        d = self.durations.mean_ns
        if self.interval_ns > d:
            return d / self.interval_ns
        # interval < duration: one interval of useful time per residency.
        return d / (d + self.interval_ns)
