"""repro.core — the paper's primary contribution, as a library.

* :mod:`smi` — SMI noise sources (the short/long duration classes and the
  jiffy-interval trigger discipline of §III.B).
* :mod:`driver` — the "Blackbox SMI" driver model: configuration
  interface and TSC-based latency self-measurement.
* :mod:`noise` — a general noise taxonomy (SMI vs OS tick vs daemon) and
  Ferreira-style absorption/amplification analysis.
* :mod:`attribution` — where did SMM time go?  Ground truth vs kernel
  accounting vs what a profiling tool reports.
* :mod:`detector` — hwlat-style spin-gap SMI detection with the BIOSBITS
  150 µs threshold; has a host-native twin for real machines.
* :mod:`experiment` — the paper's methodology: run matrices, repetitions,
  averages, Δ and %Δ tables.
* :mod:`analytic` — closed-form first-order noise models used to bracket
  and sanity-check the simulator.
* :mod:`calibration` — fits of machine/network constants to the paper's
  SMM-0 base times.
"""

from repro.core.smi import SmiProfile, SmiSource, SmiDurations
from repro.core.driver import BlackboxSmiDriver
from repro.core.detector import GapDetector, DetectorReport
from repro.core.experiment import ExperimentCase, ExperimentResult, run_repeated

__all__ = [
    "SmiProfile",
    "SmiSource",
    "SmiDurations",
    "BlackboxSmiDriver",
    "GapDetector",
    "DetectorReport",
    "ExperimentCase",
    "ExperimentResult",
    "run_repeated",
]
