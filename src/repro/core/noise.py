"""A noise taxonomy, and absorption/amplification analysis.

§II.C places SMIs among the other noise sources the HPC literature has
studied: OS timer ticks (Tsafrir et al. [23], Beckman et al. [12]),
system daemons and heartbeats (Petrini et al. [22]), and kernel-injected
noise (Ferreira et al. [24] — who showed noise can be *absorbed* by slack
or *amplified* when it lands at a performance-sensitive time).

This module provides those comparison sources and the Ferreira-style
experiment: inject a single pulse at a controlled offset relative to an
application's synchronization point and measure how much of it survives
into the completion time.

The crucial taxonomy difference is encoded in *how* each source perturbs:

* OS ticks / daemons preempt **one CPU at a time**, are schedulable and
  maskable, and other CPUs keep running — modeled as a competing task.
* SMIs stop **every CPU of the node at once**, below the OS — modeled via
  the SMM controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.machine.profile import WorkloadProfile
from repro.machine.topology import WYEAST_SPEC
from repro.system import make_machine

__all__ = ["NoisePulse", "OS_TICK", "DAEMON", "SMI_LONG_PULSE", "absorption_experiment"]


@dataclass(frozen=True)
class NoisePulse:
    """A single noise event of a given magnitude and mechanism."""

    name: str
    duration_ns: int
    #: "smm" freezes all cores; "task" runs a competing task on one CPU.
    mechanism: str = "smm"

    def __post_init__(self) -> None:
        if self.mechanism not in ("smm", "task"):
            raise ValueError("mechanism must be 'smm' or 'task'")


#: One OS timer tick's worth of kernel work (~10 µs on these machines).
OS_TICK = NoisePulse("os-tick", 10_000, mechanism="task")
#: A system daemon waking up for a few ms.
DAEMON = NoisePulse("daemon", 3_000_000, mechanism="task")
#: One long SMI (the paper's SMM 2 class midpoint).
SMI_LONG_PULSE = NoisePulse("smi-long", 105_000_000, mechanism="smm")

_NOISE_TASK_PROFILE = WorkloadProfile(
    name="noise-task", htt_yield=1.3, working_set_bytes=64 << 10,
    base_miss_rate=0.01, mem_ref_fraction=0.2,
)


def absorption_experiment(
    pulse: NoisePulse,
    offset_ns: int,
    phase_work_s: float = 0.050,
    n_workers: int = 4,
    n_phases: int = 4,
    seed: int = 1,
) -> float:
    """Ferreira-style single-pulse injection.

    ``n_workers`` tasks run ``n_phases`` equal compute phases separated by
    barriers on one (HTT-off) node; the pulse fires ``offset_ns`` after
    the start.  Returns the *retained fraction*: (perturbed − clean
    makespan) / pulse duration.  ≈1 means fully amplified (the pulse
    landed on the critical path and nothing absorbed it); ≈0 means fully
    absorbed (it landed in slack — e.g. a single-CPU "task" pulse while
    that CPU's worker was ahead of the barrier).
    """

    def run(with_pulse: bool) -> float:
        from repro.simx.resources import Barrier

        m = make_machine(WYEAST_SPEC, seed=seed)
        m.sysfs.set_htt(False)
        work = _NOISE_TASK_PROFILE.solo_rate(WYEAST_SPEC.base_hz) * phase_work_s
        bar = Barrier(m.engine, n_workers, "phases")

        def worker(task) -> Generator:
            for _ in range(n_phases):
                yield from task.compute(work)
                yield from bar.wait()
            return task.now_ns()

        tasks = [
            m.scheduler.spawn(worker, f"w{i}", _NOISE_TASK_PROFILE)
            for i in range(n_workers)
        ]
        if with_pulse:
            if pulse.mechanism == "smm":
                m.engine.schedule(offset_ns, m.node.smm.trigger, pulse.duration_ns)
            else:
                def noise_body(task) -> Generator:
                    yield from task.sleep(offset_ns)
                    yield from task.compute(
                        _NOISE_TASK_PROFILE.solo_rate(WYEAST_SPEC.base_hz)
                        * pulse.duration_ns / 1e9
                    )

                m.engine.schedule(
                    0,
                    lambda: m.scheduler.spawn(noise_body, "noise", _NOISE_TASK_PROFILE),
                )
        done = m.engine.event("exp.done")
        remaining = {"n": n_workers}

        def on_done(_ev):
            remaining["n"] -= 1
            if remaining["n"] == 0 and not done.triggered:
                done.succeed()

        for t in tasks:
            t.proc.done_event.add_callback(on_done)
        m.engine.run_until(done, limit_ns=int(60e9))
        return m.engine.now / 1e9

    clean = run(False)
    noisy = run(True)
    return (noisy - clean) / (pulse.duration_ns / 1e9)
