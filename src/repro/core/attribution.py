"""Where did the SMM time go?

The paper's methodological warning (§I, §V): "the system level software
(kernel or hypervisor) are not aware of the time spent in SMM and
attribute it in various incorrect ways", so "the impacts would not be
reported correctly by the current generation of performance tools".

This module quantifies that error for a finished simulation:

* **Ground truth** — per-task true service time and SMM-stolen time, from
  the executor-window accounting (:class:`repro.sched.task.TaskAccount`).
* **Kernel view** — what ``/proc`` utime would say (truth + stolen).
* **Tool view** — what a sampling profiler reports: per-task *shares* of
  total observed CPU time.  Because SMM inflates every victim's samples,
  a tool can mis-rank tasks whose stolen shares differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["TaskAttribution", "AttributionReport", "attribute"]


@dataclass(frozen=True)
class TaskAttribution:
    """One task's time, three ways (seconds)."""

    name: str
    true_s: float
    stolen_s: float

    @property
    def kernel_s(self) -> float:
        """The kernel's utime: it charges the freeze to the running task."""
        return self.true_s + self.stolen_s

    @property
    def inflation_pct(self) -> float:
        """Over-report of kernel vs truth, %."""
        return 100.0 * self.stolen_s / self.true_s if self.true_s > 0 else 0.0


@dataclass
class AttributionReport:
    """Node-level attribution comparison."""

    tasks: List[TaskAttribution]
    smm_total_s: float

    @property
    def total_true_s(self) -> float:
        return sum(t.true_s for t in self.tasks)

    @property
    def total_stolen_s(self) -> float:
        return sum(t.stolen_s for t in self.tasks)

    @property
    def total_kernel_s(self) -> float:
        return sum(t.kernel_s for t in self.tasks)

    def kernel_shares(self) -> Dict[str, float]:
        """Per-task share of CPU time as a profiling tool would report it
        (fractions of the kernel-visible total)."""
        tot = self.total_kernel_s
        return {t.name: (t.kernel_s / tot if tot > 0 else 0.0) for t in self.tasks}

    def true_shares(self) -> Dict[str, float]:
        tot = self.total_true_s
        return {t.name: (t.true_s / tot if tot > 0 else 0.0) for t in self.tasks}

    def max_share_error(self) -> float:
        """Largest absolute per-task share error a tool would make."""
        k, t = self.kernel_shares(), self.true_shares()
        return max((abs(k[n] - t[n]) for n in k), default=0.0)

    def conservation_error_s(self) -> float:
        """|kernel − (true + stolen)| — zero by construction."""
        return abs(self.total_kernel_s - (self.total_true_s + self.total_stolen_s))


def attribute(node: "Node") -> AttributionReport:
    """Build the attribution report for everything that ran on a node."""
    tasks = [
        TaskAttribution(t.name, t.acct.true_ns / 1e9, t.acct.stolen_ns / 1e9)
        for t in (node.scheduler.tasks if node.scheduler else [])
    ]
    return AttributionReport(tasks=tasks, smm_total_s=node.smm.stats.total_ns / 1e9)
