"""A sampling-profiler model: how SMM distorts what tools report.

The paper's claim for tool developers (§I, §V): "Performance tools would
similarly report the time incorrectly."  This module makes the mechanism
concrete by simulating the two dominant profiler designs:

* **Timer-sampled profiler** (perf-style): a periodic interrupt samples
  the task running on each CPU.  The sampling interrupt is *itself*
  deferred by SMM — so SMM windows produce **no samples at all**, and the
  stolen time silently disappears from the profile (the profile's total
  ≠ wall time).  Worse, the deferred sample fires right at SMM exit and
  charges whoever resumes — a systematic attribution bias.
* **cputime-based accounting** (getrusage-style): reads the kernel's
  utime, which *includes* the stolen time (see
  :mod:`repro.sched.accounting`) — the opposite error.

:func:`profile_run` runs both against ground truth, returning the three
discrepant views the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, TYPE_CHECKING

from repro.simx.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["SamplingProfiler", "ProfileView", "profile_views"]


@dataclass
class ProfileView:
    """One tool's per-task CPU-seconds."""

    tool: str
    seconds_by_task: Dict[str, float]

    @property
    def total_s(self) -> float:
        return sum(self.seconds_by_task.values())

    def share(self, name: str) -> float:
        t = self.total_s
        return self.seconds_by_task.get(name, 0.0) / t if t else 0.0


class SamplingProfiler:
    """perf-style periodic sampler for one node.

    Every ``period_ns`` of *host-visible* time it records which task each
    logical CPU is serving (fluid model: one sample is split across the
    CPU's residents).  The sampling tick is a gated process, so ticks due
    during SMM coalesce into a single late tick at SMM exit — the
    real-world behaviour of a timer-driven profiler under SMIs.
    """

    def __init__(self, node: "Node", period_ns: int = 1_000_000):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.node = node
        self.period_ns = period_ns
        self.samples: Dict[str, float] = {}
        self.ticks = 0
        self.expected_ticks = 0
        self._proc = None

    def start(self, duration_ns: int) -> None:
        # A restarted profiler must not carry samples from the previous
        # window — stale counts would inflate every task's reported time —
        # and a still-live previous sampler would double-count every tick.
        if self._proc is not None and self._proc.alive:
            self._proc.kill()
        self.samples = {}
        self.ticks = 0
        self.expected_ticks = duration_ns // self.period_ns
        self._proc = self.node.engine.process(
            self._run(duration_ns), name=f"{self.node.name}.profiler",
            gate=self.node, daemon=True,
        )

    def _run(self, duration_ns: int) -> Generator:
        start = self.node.engine.now
        while self.node.engine.now - start < duration_ns:
            yield Delay(self.period_ns)
            self.ticks += 1
            for cpu in self.node.cpus:
                n = cpu.n_tasks
                if n == 0:
                    continue
                for item in cpu.executor.items:
                    name = item.meta.name
                    self.samples[name] = self.samples.get(name, 0.0) + 1.0 / n

    def view(self) -> ProfileView:
        """Per-task seconds as the profiler would report them
        (samples × period)."""
        return ProfileView(
            tool="sampling",
            seconds_by_task={
                k: v * self.period_ns / 1e9 for k, v in self.samples.items()
            },
        )

    @property
    def lost_ticks(self) -> int:
        """Ticks swallowed by SMM coalescing — the profiler's blind spot."""
        return max(0, self.expected_ticks - self.ticks)


def profile_views(node: "Node") -> List[ProfileView]:
    """The cputime view and the ground-truth view for a finished node run
    (pair with a :class:`SamplingProfiler` for the third)."""
    sched = node.scheduler
    kernel = ProfileView(
        tool="kernel-cputime",
        seconds_by_task={t.name: t.acct.kernel_ns / 1e9 for t in sched.tasks},
    )
    truth = ProfileView(
        tool="ground-truth",
        seconds_by_task={t.name: t.acct.true_ns / 1e9 for t in sched.tasks},
    )
    return [kernel, truth]
