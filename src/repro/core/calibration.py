"""Calibration: how the model's free constants were fixed.

The reproduction has exactly five fitted scalars; everything else is
structural (NPB class parameters, collective algorithms, SMM semantics):

1. **Node work rate** — taken as the E5520's nominal 2.27 GHz: one work
   unit ≈ one useful operation.  Since each benchmark's *total work* is
   derived from the paper's single-rank base time at the benchmark's own
   profile efficiency (``work = T_paper × solo_rate``), the single-rank
   base column is exact by construction and the rate's absolute value is
   a units choice, not a degree of freedom.
2. **Network α (latency)** = 120 µs and **β (bandwidth)** = 110 MB/s —
   GbE + TCP on the 2009-era cluster; fitted to FT's multi-rank base
   cells (FT class A at 2 ranks bounds β tightly because the transpose
   moves 33 MB per iteration; see ``fit_network_quality``).
3. **SMI phase spread** = 400 ms — the driver rollout window across
   nodes (parallel-ssh start); fitted to the long-SMI amplification of
   the tightly-coupled BT at 16 ranks (see DESIGN.md §6 and the
   phase-alignment ablation).
4. **Post-SMM misplacement saturation** = 300 ms — scales the
   HTT wake-up perturbation probability; fitted to Table 4's ht=1 long-
   SMI deltas (a few percent at class C).

This module re-derives (1) and quality-scores (2) so tests can fail if
the constants in the codebase drift from their derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.nas.params import (
    EP_PARAMS,
    BT_PARAMS,
    FT_PARAMS,
    NAS_BT_PROFILE,
    NAS_EP_PROFILE,
    NAS_FT_PROFILE,
    PAPER_BASE_1RANK_S,
    NasClass,
)
from repro.machine.topology import WYEAST_SPEC

__all__ = ["derive_work_units", "fit_network_quality", "CalibrationRow"]


@dataclass(frozen=True)
class CalibrationRow:
    bench: str
    cls: NasClass
    paper_s: float
    derived_work: float
    stored_work: float

    @property
    def relative_error(self) -> float:
        if self.stored_work == 0:
            return float("inf")
        return abs(self.derived_work - self.stored_work) / self.stored_work


def derive_work_units() -> List[CalibrationRow]:
    """Re-derive every benchmark/class work constant from the paper's
    base time and compare with what params.py stores (must agree)."""
    rows: List[CalibrationRow] = []
    for bench, params, profile in (
        ("EP", EP_PARAMS, NAS_EP_PROFILE),
        ("BT", BT_PARAMS, NAS_BT_PROFILE),
        ("FT", FT_PARAMS, NAS_FT_PROFILE),
    ):
        rate = profile.solo_rate(WYEAST_SPEC.base_hz)
        for cls, p in params.items():
            paper = PAPER_BASE_1RANK_S[bench][cls]
            rows.append(CalibrationRow(bench, cls, paper, paper * rate, p.work_total))
    return rows


def fit_network_quality(seed: int = 3) -> Dict[Tuple[str, int], Tuple[float, float]]:
    """Run the base (SMM 0) cells that constrain α/β and return
    {(bench, ranks): (simulated_s, paper_s)} for reporting.

    FT class A at 2 and 4 ranks (1/node) are the sensitive cells: their
    per-iteration all-to-all volume makes base time mostly wire time.
    """
    from repro.apps.nas.study import NasConfig, run_nas_config
    from repro.paperdata import paper_cell

    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for bench, cls, nodes in (
        ("FT", NasClass.A, 2),
        ("FT", NasClass.A, 4),
        ("EP", NasClass.A, 4),
        ("BT", NasClass.A, 4),
    ):
        sim = run_nas_config(NasConfig(bench, cls, nodes, 1), smm=0, seed=seed)
        paper = paper_cell(bench, 1, cls, nodes)[0]
        out[(bench, nodes)] = (sim, paper)
    return out
