"""Continuous OS-noise sources, for SMI-vs-OS-noise comparison.

§II.C positions SMIs against the classic OS-noise literature: timer ticks
(Tsafrir et al. [23], Beckman et al. [12]) and daemons/heartbeats
(Petrini et al. [22]).  The taxonomy difference this module makes
measurable:

* **OS noise** preempts *one CPU at a time*, is schedulable, and other
  cores keep running — injected here as periodic kernel tasks pinned per
  CPU (Ferreira-style kernel-level noise injection [24]).
* **SMI noise** stops *every* core below the OS.

:func:`equal_duty_comparison` injects both at the *same duty cycle* on
the same multithreaded workload and returns the slowdowns — the paper's
qualitative claim ("Since SMIs are the highest priority interrupt, they
affect the platform on a greater scale than these other types of noise")
becomes a measured factor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, TYPE_CHECKING

from repro.simx.engine import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["OsNoiseSource", "equal_duty_comparison"]

from repro.machine.profile import WorkloadProfile

_KERNEL_PROFILE = WorkloadProfile(
    name="kernel-noise", htt_yield=1.3, working_set_bytes=32 << 10,
    base_miss_rate=0.01, mem_ref_fraction=0.2,
)


class OsNoiseSource:
    """Periodic per-CPU kernel noise: every ``interval_ns``, each online
    CPU runs ``duration_ns`` worth of kernel work (as a short-lived,
    CPU-affine task).  Duty cycle per CPU = duration/interval — directly
    comparable to an SMI source's duty."""

    def __init__(
        self,
        node: "Node",
        duration_ns: int,
        interval_ns: int,
        seed: int = 0,
        per_cpu: bool = True,
    ):
        if duration_ns <= 0 or interval_ns <= 0:
            raise ValueError("duration and interval must be positive")
        self.node = node
        self.duration_ns = duration_ns
        self.interval_ns = interval_ns
        self.per_cpu = per_cpu
        self.rng = random.Random(seed)
        self.injections = 0
        self._stopped = False
        self.proc = node.engine.process(
            self._run(), name=f"{node.name}.osnoise", gate=node, daemon=True
        )

    @property
    def duty_cycle(self) -> float:
        return self.duration_ns / self.interval_ns

    def stop(self) -> None:
        self._stopped = True
        if self.proc.alive:
            self.proc.kill()

    def _run(self) -> Generator:
        phase = self.rng.randint(0, self.interval_ns - 1)
        yield Delay(phase)
        while not self._stopped:
            cpus = [c.index for c in self.node.online_cpus] if self.per_cpu else [None]
            for cpu_idx in cpus:
                self._inject(cpu_idx)
            yield Delay(self.interval_ns)

    def _inject(self, cpu_idx: Optional[int]) -> None:
        self.injections += 1
        work = _KERNEL_PROFILE.solo_rate(self.node.spec.base_hz) * (
            self.duration_ns / 1e9
        )

        def body(task):
            yield from task.compute(work)

        self.node.scheduler.spawn(
            body,
            f"knoise{self.injections}",
            _KERNEL_PROFILE,
            affinity={cpu_idx} if cpu_idx is not None else None,
        )


def equal_duty_comparison(
    duty: float = 0.105,
    interval_ns: int = 1_000_000_000,
    n_workers: int = 2,
    phase_work_s: float = 0.1,
    n_phases: int = 20,
    seed: int = 1,
) -> dict:
    """Run a barrier-phased multithreaded workload three ways — clean,
    under OS noise, and under SMM noise — at identical duty cycles.
    Returns ``{"clean": s, "os": s, "smm": s}``.

    The default leaves idle CPUs (2 workers on a 4-core node): that is
    where the taxonomy difference bites.  OS noise is *schedulable* — the
    kernel's idle balancing routes the noise tasks onto the idle cores
    and the workers barely notice; the SMM freeze stops every core
    regardless, so no amount of headroom absorbs it (§II.C: "SMIs ...
    affect the platform on a greater scale than these other types of
    noise")."""
    from repro.core.smi import SmiDurations, SmiSource
    from repro.machine.topology import WYEAST_SPEC
    from repro.simx.resources import Barrier
    from repro.system import make_machine

    duration_ns = int(duty * interval_ns)

    def run(kind: str) -> float:
        m = make_machine(WYEAST_SPEC, seed=seed)
        m.sysfs.set_htt(False)
        if kind == "os":
            # unpinned noise: the scheduler may place it anywhere — the
            # point of the comparison (see docstring)
            OsNoiseSource(m.node, duration_ns, interval_ns, seed=seed,
                          per_cpu=False)
        elif kind == "smm":
            SmiSource(
                m.node,
                SmiDurations("cmp", duration_ns, duration_ns),
                interval_ns // 1_000_000,
                seed=seed,
            )
        work = _KERNEL_PROFILE.solo_rate(WYEAST_SPEC.base_hz) * phase_work_s
        bar = Barrier(m.engine, n_workers, "phases")

        def worker(task):
            for _ in range(n_phases):
                yield from task.compute(work)
                yield from bar.wait()

        tasks = [
            m.scheduler.spawn(worker, f"w{i}", _KERNEL_PROFILE)
            for i in range(n_workers)
        ]
        done = m.engine.event("all")
        remaining = {"n": n_workers}

        def on_done(_):
            remaining["n"] -= 1
            if remaining["n"] == 0 and not done.triggered:
                done.succeed()

        for t in tasks:
            t.proc.done_event.add_callback(on_done)
        m.engine.run_until(done, limit_ns=int(600e9))
        return m.engine.now / 1e9

    return {"clean": run("clean"), "os": run("os"), "smm": run("smm")}
