"""repro — reproduction of "The Effects of System Management Interrupts on
Multithreaded, Hyper-threaded, and MPI Applications" (ICPP 2016).

A deterministic discrete-event simulation of System Management Mode noise
on multicore, hyper-threaded machines and MPI clusters, plus the paper's
workloads (NAS EP/BT/FT models, Convolve, UnixBench), measurement
methodology (SMM-blind accounting, hwlat-style detection), and the full
benchmark harness regenerating Tables 1–5 and Figures 1–2.

Quickstart::

    from repro import make_machine, SmiSource, SmiProfile
    from repro.machine.profile import COMPUTE_BOUND

    m = make_machine()
    SmiSource(m.node, SmiProfile.LONG, interval_jiffies=1000, seed=1)

    def body(task):
        yield from task.compute(2.4e9)   # ~1 s of work on this machine

    t = m.scheduler.spawn(body, "worker", COMPUTE_BOUND)
    m.engine.run()
    print(t.finished_ns / 1e9, "s wall — >1 s because SMIs stole time")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

import logging as _logging

from repro.system import SimulatedMachine, make_machine, make_node
from repro.core.smi import SmiProfile, SmiSource

# Library convention: never configure handlers for the embedding
# application; emit into the void unless the app opts in (repro-smm -v).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "SimulatedMachine",
    "make_machine",
    "make_node",
    "SmiProfile",
    "SmiSource",
    "__version__",
]
