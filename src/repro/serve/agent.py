"""The remote worker agent: ``repro-smm worker --connect HOST:PORT``.

One agent per host (or per slot), dialing *out* to the daemon's TCP
listener — the daemon never needs to reach into worker machines, so the
fleet works across NAT and firewalls with a single open port.  The agent
is a pull loop over the fleet protocol (:mod:`repro.serve.protocol`):

    hello → lease-request → run the cell → heartbeat while it runs
          → worker-result (with the lease's fencing token) → repeat

Cells execute in a supervised :mod:`repro.serve.workproc` child — the
same long-lived worker subprocess the daemon's local pool drives — so a
segfaulting or chaos-killed cell takes down the child, not the agent,
and the agent reports the infrastructure failure instead of vanishing.
The agent enforces the lease's watchdog deadline and a child-heartbeat
timeout locally (a frozen child is killed and reported), while the
*daemon* enforces agent liveness through lease expiry: if this whole
process is SIGSTOPped, partitioned, or killed, its heartbeats stop, the
lease lapses, and the cell is re-granted elsewhere.

The failure-detector contract on this side is **reconnect with bounded
exponential backoff and decorrelated jitter** (shared with
:mod:`repro.serve.client`): a dead or restarting daemon costs an
escalating, jittered pause, never a hot reconnect loop, and the backoff
resets on the first successful round trip.  On any session loss the
in-flight job is abandoned (child killed): the lease is void — the
daemon either expired it already or will — and a deterministic cell
re-run elsewhere is byte-identical, so abandoning is always safe.

Delivery discipline after a freeze: the run loop always tries to send a
finished result *before* its next heartbeat, and a revoked lease is
always answered with a ``worker-result`` under the (now stale) token —
the finished value if the child got that far, an infra abandonment
record otherwise.  The daemon's token check fences either one
(``accepted: false``), so its fenced counter observes every zombie
return — which is exactly the partition drill
``scripts/fleet_smoke.py`` runs.
"""

from __future__ import annotations

import json
import logging
import os
import queue
import signal
import socket
import subprocess
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.runx.runner import worker_env
from repro.serve import protocol
from repro.serve.client import decorrelated_jitter
from repro.serve.workproc import spawn_argv

__all__ = ["AgentConfig", "WorkerAgent", "run"]

log = logging.getLogger(__name__)


@dataclass
class AgentConfig:
    """Everything one agent needs, CLI-shaped."""

    connect: Tuple[str, int] = ("127.0.0.1", 7070)
    name: str = ""
    #: seconds between lease heartbeats while a job runs.
    hb_s: float = 1.0
    #: kill the workproc child if it emits nothing for this long.
    child_hb_timeout_s: float = 10.0
    #: reconnect backoff bounds (decorrelated jitter in between).
    backoff_s: float = 0.5
    max_backoff_s: float = 15.0
    #: socket timeout for daemon round trips.
    io_timeout_s: float = 30.0


class _SessionLost(Exception):
    """The daemon connection died; reconnect with backoff."""


class _Child:
    """One supervised workproc subprocess with a line-reader thread."""

    def __init__(self):
        self.proc = subprocess.Popen(
            spawn_argv(), stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=worker_env(), text=True, bufsize=1)
        self.lines: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._read, name="agent-child-reader", daemon=True)
        self._reader.start()
        rec = self._next(timeout=30.0)
        if rec is None or rec.get("kind") != "ready":
            self.kill()
            raise RuntimeError("workproc child never became ready")

    def _read(self) -> None:
        for line in self.proc.stdout:
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # chaos corrupt / stray logging: skip
            if isinstance(rec, dict):
                self.lines.put(rec)
        self.lines.put(None)  # EOF sentinel: the child died

    def _next(self, timeout: float) -> Optional[Dict[str, Any]]:
        try:
            return self.lines.get(timeout=timeout)
        except queue.Empty:
            return {"kind": "idle"}  # distinguishable from EOF's None

    def submit(self, job: Dict[str, Any]) -> None:
        self.proc.stdin.write(
            json.dumps(job, separators=(",", ":")) + "\n")
        self.proc.stdin.flush()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        self.proc.wait()


class WorkerAgent:
    """The agent loop; :meth:`run` blocks until :meth:`stop`."""

    def __init__(self, config: AgentConfig):
        self.config = config
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._fp = None
        self._child: Optional[_Child] = None
        #: local tallies, logged on exit (the daemon holds the real ones).
        self.jobs_done = 0
        self.fenced = 0
        self.reconnects = 0

    def stop(self) -> None:
        self._stop.set()

    # -- transport ------------------------------------------------------------
    def _request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One fleet round trip on the session connection."""
        try:
            self._sock.sendall(protocol.encode(req))
            line = self._fp.readline()
        except (OSError, ValueError) as exc:
            raise _SessionLost(str(exc)) from exc
        if not line:
            raise _SessionLost("daemon closed the connection")
        try:
            rep = protocol.decode(line)
        except ValueError as exc:
            raise _SessionLost(f"garbled reply: {exc}") from exc
        return rep

    def _connect(self) -> str:
        host, port = self.config.connect
        sock = socket.create_connection(
            (host, port), timeout=self.config.io_timeout_s)
        self._sock = sock
        self._fp = sock.makefile("rb")
        rep = self._request({
            "op": "worker-hello", "proto": protocol.FLEET_PROTO,
            "name": self.config.name or socket.gethostname(),
            "pid": os.getpid()})
        if not rep.get("ok") or not rep.get("worker_id"):
            raise _SessionLost(
                f"hello refused: {rep.get('message', rep)}")
        return rep["worker_id"]

    def _close(self) -> None:
        for closer in (self._fp, self._sock):
            try:
                if closer is not None:
                    closer.close()
            except OSError:
                pass
        self._fp = self._sock = None

    # -- the loop -------------------------------------------------------------
    def run(self) -> int:
        """Connect-serve-reconnect until stopped.  Exit 0 on stop."""
        cfg = self.config
        sleep_s = cfg.backoff_s
        while not self._stop.is_set():
            try:
                worker_id = self._connect()
                log.info("agent: connected to %s:%d as %s",
                         cfg.connect[0], cfg.connect[1], worker_id)
                sleep_s = cfg.backoff_s  # round trip worked: reset
                self._serve_session()
            except _SessionLost as exc:
                log.warning("agent: session lost (%s); reconnecting",
                            exc)
            except OSError as exc:
                log.warning("agent: cannot reach daemon (%s); retrying",
                            exc)
            finally:
                self._close()
                self._abandon_child()
            if self._stop.is_set():
                break
            self.reconnects += 1
            sleep_s = decorrelated_jitter(
                sleep_s, cfg.backoff_s, cfg.max_backoff_s)
            self._stop.wait(sleep_s)
        log.info("agent: stopped (%d jobs, %d fenced, %d reconnects)",
                 self.jobs_done, self.fenced, self.reconnects)
        return 0

    def _serve_session(self) -> None:
        while not self._stop.is_set():
            rep = self._request({"op": "lease-request"})
            lease = rep.get("lease")
            if not lease:
                self._stop.wait(float(rep.get("retry_after", 0.5)))
                continue
            self._run_lease(lease)

    def _abandon_child(self) -> None:
        """Kill any in-flight job: our lease is void, and a re-run of a
        deterministic cell elsewhere is byte-identical."""
        if self._child is not None:
            self._child.kill()
            self._child = None

    def _ensure_child(self) -> _Child:
        if self._child is None or self._child.proc.poll() is not None:
            self._abandon_child()
            self._child = _Child()
        return self._child

    # -- one lease ------------------------------------------------------------
    def _run_lease(self, lease: Dict[str, Any]) -> None:
        cfg = self.config
        digest, token = lease["digest"], lease["token"]
        try:
            child = self._ensure_child()
            job = {"kind": "job", "id": digest, "spec": lease["spec"],
                   "seed": lease["seed"],
                   "attempt": lease.get("attempt", 0)}
            if lease.get("baselines"):
                job["baselines"] = lease["baselines"]
            child.submit(job)
        except (RuntimeError, OSError, BrokenPipeError) as exc:
            self._abandon_child()
            self._deliver(digest, token, {
                "ok": False, "infra": True,
                "error": f"agent could not start the cell: {exc}"})
            return

        timeout_s = lease.get("timeout_s")
        deadline = (time.monotonic() + float(timeout_s)
                    if timeout_s else None)
        next_hb = time.monotonic() + cfg.hb_s
        last_child_line = time.monotonic()
        while True:
            # Result first, heartbeat second: a result finished during a
            # freeze must race the daemon's fencing check, not sit behind
            # a heartbeat that would have us discard it silently.
            wait = max(0.05, min(next_hb - time.monotonic(), 1.0))
            rec = child._next(timeout=wait)
            now = time.monotonic()
            if rec is None:  # EOF: the child died mid-cell
                rc = child.proc.returncode
                self._abandon_child()
                self._deliver(digest, token, {
                    "ok": False, "infra": True,
                    "error": f"workproc child died mid-cell (rc={rc})"})
                return
            kind = rec.get("kind")
            if kind == "result" and rec.get("id") == digest:
                self._deliver(digest, token, self._result_fields(rec))
                self.jobs_done += 1
                return
            if kind in ("hb", "result"):
                last_child_line = now
            # Every tick — child beat or idle — enforces the local
            # watchdogs and keeps the daemon heartbeat on schedule (a
            # chatty child must not starve lease renewal).
            if deadline is not None and now >= deadline:
                self._abandon_child()
                self._deliver(digest, token, {
                    "ok": False, "infra": True,
                    "error": f"watchdog timeout after {timeout_s:g}s"})
                return
            if now - last_child_line > cfg.child_hb_timeout_s:
                self._abandon_child()
                self._deliver(digest, token, {
                    "ok": False, "infra": True,
                    "error": "workproc child frozen (no heartbeat for "
                             f"{cfg.child_hb_timeout_s:g}s)"})
                return
            if now >= next_hb:
                next_hb = now + cfg.hb_s
                rep = self._request({"op": "worker-heartbeat",
                                     "digest": digest, "token": token})
                if rep.get("lease") != "ok":
                    # Revoked: we were frozen, partitioned, or too slow
                    # and the cell belongs to someone else now.  If the
                    # child finished *during* the freeze its result may
                    # still be racing our reader thread — drain briefly
                    # and deliver whatever we have (the finished result,
                    # or an infra abandonment if the cell never ran to
                    # completion).  Either way the daemon's token check
                    # is the arbiter, not us: it fences the stale token,
                    # and its fenced counter sees every zombie return.
                    log.warning("agent: lease on %s revoked", digest)
                    rec = self._pending_result(digest, grace_s=0.5)
                    if rec is not None:
                        self._deliver(digest, token,
                                      self._result_fields(rec))
                        return
                    self._abandon_child()
                    self._deliver(digest, token, {
                        "ok": False, "infra": True,
                        "error": "lease revoked before the cell "
                                 "finished; abandoned"})
                    return

    @staticmethod
    def _result_fields(rec: Dict[str, Any]) -> Dict[str, Any]:
        return {k: rec[k] for k in
                ("ok", "value", "error", "failed_in_sim", "fault",
                 "baselines", "baseline_stats", "snapshot_stats")
                if k in rec}

    def _pending_result(self, digest: str,
                        grace_s: float) -> Optional[Dict[str, Any]]:
        """The child's result record for ``digest`` if one is already in
        (or lands within ``grace_s``), draining heartbeats on the way;
        ``None`` once the grace expires or the child dies."""
        if self._child is None:
            return None
        deadline = time.monotonic() + grace_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            rec = self._child._next(timeout=remaining)
            if rec is None:
                return None  # EOF: the child died without a result
            if rec.get("kind") == "result" and rec.get("id") == digest:
                return rec

    def _deliver(self, digest: str, token: int,
                 result: Dict[str, Any]) -> None:
        rep = self._request({"op": "worker-result", "digest": digest,
                             "token": token, "result": result})
        if not rep.get("accepted"):
            # Fenced: the daemon already re-granted (or restarted).  The
            # computed value dies here — exactly-once effect is theirs.
            log.warning("agent: result for %s fenced as stale; discarded",
                        digest)
            self.fenced += 1


def run(config: AgentConfig) -> int:
    """Blocking entry point behind ``repro-smm worker``."""
    agent = WorkerAgent(config)
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: agent.stop())
    try:
        return agent.run()
    finally:
        agent._abandon_child()
