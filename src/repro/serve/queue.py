"""The durable job queue: fsync'd acceptance, crash-safe replay.

The daemon's acceptance contract is "once we reply *accepted*, the job
survives anything short of disk loss".  That is bought the same way
`repro.runx.journal` buys checkpoint durability — an append-only JSONL
file, one fsync'd record per state transition, torn-tail repair on
reopen — and deliberately *in the same record format* (kind-tagged JSON
objects, read back with :func:`repro.runx.journal.iter_records`):

* ``{"kind": "job", "id": <digest>, "spec": {...}}`` — accepted;
  fsync'd **before** the client hears "accepted".
* ``{"kind": "done", "id": <digest>}`` — the result is safely in the
  content-addressed cache; the claim/ack commit point.
* ``{"kind": "failed", "id": <digest>, "error": ...}`` — terminal
  deterministic failure (e.g. killed in-simulation by its fault plan).
* ``{"kind": "quarantine", "id": <digest>, ...}`` — the circuit breaker
  tripped: the cell poisoned ``attempts`` workers and is barred from
  the pool until the operator clears it.

Replay after ``kill -9`` is a pure fold over the records: any accepted
job without a terminal record is still owed to some client and is
re-enqueued on boot (the cache may already hold its result, in which
case replay completes it without recomputing).  Quarantine records
persist across restarts — a cell that crash-looped the old daemon must
not get to crash-loop the new one.

On boot the journal is also *compacted*: terminal records of completed
jobs are folded away and the file atomically rewritten with only the
live state (pending jobs + quarantine), so the journal's size tracks
outstanding work, not lifetime traffic.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.obs.atomic import atomic_write_text
from repro.runx.journal import (
    JournalWriteError, append_record, iter_records, repair_torn_tail)

__all__ = ["DurableQueue", "QueueState", "JournalWriteError"]

log = logging.getLogger(__name__)


@dataclass
class QueueState:
    """The live state a journal folds down to."""

    #: accepted-but-unfinished jobs: digest -> spec record.
    pending: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: circuit-broken cells: digest -> quarantine record.
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: terminal counts folded away by compaction (for the boot log line).
    completed: int = 0
    failed: int = 0


class DurableQueue:
    """Append-only job journal for one serve state directory."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()

    # -- record appends (each fsync'd before returning) -----------------------
    def record_job(self, digest: str, spec_rec: Dict[str, Any]) -> None:
        self._append({"kind": "job", "id": digest, "spec": spec_rec})

    def record_done(self, digest: str) -> None:
        self._append({"kind": "done", "id": digest})

    def record_failed(self, digest: str, error: str) -> None:
        self._append({"kind": "failed", "id": digest, "error": error})

    def record_quarantine(self, digest: str, attempts: int,
                          error: str) -> None:
        self._append({"kind": "quarantine", "id": digest,
                      "attempts": attempts, "error": error})

    def _append(self, rec: Dict[str, Any]) -> None:
        """Fsync one record; raises the typed
        :class:`~repro.runx.journal.JournalWriteError` when the disk
        refuses (full, read-only, failing) — the daemon maps that to a
        retryable reply rather than letting the accept loop die."""
        with self._lock:
            append_record(self.path, rec)

    # -- replay ---------------------------------------------------------------
    def replay(self) -> QueueState:
        """Fold the journal into live state (crash-tolerant read)."""
        state = QueueState()
        if not os.path.exists(self.path):
            return state
        with self._lock:
            repair_torn_tail(self.path)
            for rec in iter_records(self.path):
                kind, digest = rec.get("kind"), rec.get("id")
                if not digest:
                    continue
                if kind == "job":
                    spec = rec.get("spec")
                    if isinstance(spec, dict):
                        state.pending[digest] = spec
                elif kind == "done":
                    state.pending.pop(digest, None)
                    state.completed += 1
                elif kind == "failed":
                    state.pending.pop(digest, None)
                    state.failed += 1
                elif kind == "quarantine":
                    state.pending.pop(digest, None)
                    state.quarantined[digest] = rec
        return state

    def compact(self, state: QueueState) -> None:
        """Atomically rewrite the journal as just the live state."""
        def write(fp):
            for rec in state.quarantined.values():
                fp.write(json.dumps(rec, separators=(",", ":")) + "\n")
            for digest, spec in state.pending.items():
                fp.write(json.dumps(
                    {"kind": "job", "id": digest, "spec": spec},
                    separators=(",", ":")) + "\n")

        with self._lock:
            atomic_write_text(self.path, write)
        log.info(
            "queue %s compacted: %d pending, %d quarantined "
            "(%d completed + %d failed folded away)",
            self.path, len(state.pending), len(state.quarantined),
            state.completed, state.failed)
