"""Supervised worker pool: heartbeats, watchdogs, bounded-backoff restarts.

The pool owns N long-lived :mod:`repro.serve.workproc` subprocesses and
one asyncio task per worker slot.  Each slot loops: take a work order
from the shared queue, hand it to the worker, and watch the worker's
stdout until one of four things happens —

* a ``result`` line: the job is done (ok or in-band failure); deliver.
* EOF: the worker died mid-job (segfault, OOM kill, ``kill -9``); the
  attempt failed with ``infra=True`` and the slot respawns its worker.
* the per-cell watchdog deadline passes: the cell is hung or diverging;
  kill the worker, fail the attempt, respawn.
* heartbeats stop arriving inside ``hb_timeout_s``: the *process* is
  frozen (a slow cell keeps beating; a wedged interpreter cannot); same
  treatment.

Respawns are rate-limited with bounded exponential backoff: a worker
that dies at boot (bad install, chaos plan killing everything) costs an
escalating pause instead of a hot crash-loop, and the backoff resets
the moment a worker completes a job.  The pool never decides *job*
fate — every outcome is handed to the daemon's callback, which owns
retry counting and the circuit breaker.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Awaitable, Callable, Dict, List, Optional

from repro.runx.runner import worker_env
from repro.serve.protocol import MAX_LINE
from repro.serve.workproc import spawn_argv

__all__ = ["WorkOrder", "Outcome", "WorkerPool"]

log = logging.getLogger(__name__)

#: How long a freshly spawned worker gets to print its ready line.
BOOT_TIMEOUT_S = 30.0


class WorkOrder:
    """One unit the daemon enqueues: a cell attempt."""

    __slots__ = ("digest", "spec_rec", "seed", "attempt", "dead")

    def __init__(self, digest: str, spec_rec: Dict[str, Any], seed: int,
                 attempt: int = 0):
        self.digest = digest
        self.spec_rec = spec_rec
        self.seed = seed
        self.attempt = attempt
        #: set by the daemon when the job turned terminal while queued
        #: (quarantine raced a requeue); slots skip dead orders.
        self.dead = False


class Outcome:
    """What happened to one attempt."""

    __slots__ = ("ok", "value", "error", "failed_in_sim", "fault", "infra",
                 "baselines", "baseline_stats", "snapshot_stats")

    def __init__(self, ok: bool = False, value: Optional[Dict] = None,
                 error: Optional[str] = None, failed_in_sim: bool = False,
                 fault: Optional[Dict] = None, infra: bool = False,
                 baselines: Optional[list] = None,
                 baseline_stats: Optional[Dict] = None,
                 snapshot_stats: Optional[Dict] = None):
        self.ok = ok
        self.value = value
        self.error = error
        self.failed_in_sim = failed_in_sim
        self.fault = fault
        #: True when the *infrastructure* failed (worker death, watchdog,
        #: lost heartbeat) rather than the cell itself raising in-band.
        self.infra = infra
        #: fresh shared-baseline records the worker produced, and its
        #: hit/miss tally for this job (attr cells only; see
        #: repro.obs.attr.baseline).
        self.baselines = baselines
        self.baseline_stats = baseline_stats
        #: this job's warm-prefix cache delta (interval-sweep cells only;
        #: see repro.runx.forkshare).
        self.snapshot_stats = snapshot_stats


class _Slot:
    __slots__ = ("index", "proc", "state", "job", "jobs_done", "restarts")

    def __init__(self, index: int):
        self.index = index
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.state = "starting"
        self.job: Optional[str] = None
        self.jobs_done = 0
        self.restarts = 0


class WorkerPool:
    """N supervised workproc subprocesses feeding on one asyncio queue."""

    def __init__(
        self,
        queue: "asyncio.Queue[WorkOrder]",
        on_result: Callable[[WorkOrder, Outcome], Awaitable[None]],
        size: int = 2,
        timeout_s: Optional[float] = 300.0,
        hb_timeout_s: float = 10.0,
        restart_backoff_s: float = 0.1,
        max_backoff_s: float = 5.0,
        metrics=None,
        baseline_source: Optional[Callable[[Dict[str, Any]],
                                           Optional[list]]] = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.queue = queue
        self.on_result = on_result
        self.size = size
        self.timeout_s = timeout_s
        self.hb_timeout_s = hb_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.max_backoff_s = max_backoff_s
        self._slots = [_Slot(i) for i in range(size)]
        self._tasks: List[asyncio.Task] = []
        self._stopping = False
        self._env = worker_env()
        #: Called with the spec record as a job is dispatched; returns the
        #: ``[[digest, record], ...]`` baseline seed to attach, or None.
        #: Evaluated at dispatch (not enqueue) time so a job queued behind
        #: the cell that produces its baseline still benefits from it.
        self._baseline_source = baseline_source
        if metrics is not None:
            self._c_spawned = metrics.counter(
                "serve.workers.spawned", "worker subprocesses started")
            self._c_restarts = metrics.counter(
                "serve.workers.restarts", "workers respawned after dying")
            self._c_timeouts = metrics.counter(
                "serve.jobs.timeouts", "attempts killed by the watchdog")
            self._c_hb_lost = metrics.counter(
                "serve.workers.hb_lost",
                "workers killed for missing heartbeats")
            self._c_garbage = metrics.counter(
                "serve.protocol.garbage",
                "unparsable lines read from workers")
        else:
            self._c_spawned = self._c_restarts = self._c_timeouts = None
            self._c_hb_lost = self._c_garbage = None

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        self._tasks = [asyncio.create_task(
            self._slot_loop(slot), name=f"serve-slot-{slot.index}")
            for slot in self._slots]

    async def stop(self) -> None:
        """Tear the pool down.  Call with the queue drained and no job
        in flight for a graceful stop; anything still running is killed."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        for slot in self._slots:
            if slot.proc is not None:
                await self._close_worker(slot.proc)
                slot.proc = None
            slot.state = "stopped"

    def snapshot(self) -> List[Dict[str, Any]]:
        """Status rows for the local slots; ``kind`` distinguishes them
        from the remote fleet leases `repro-smm status` merges in."""
        return [
            {"kind": "local", "slot": s.index,
             "pid": s.proc.pid if s.proc is not None else None,
             "state": s.state, "job": s.job, "jobs_done": s.jobs_done,
             "restarts": s.restarts}
            for s in self._slots
        ]

    # -- per-slot supervision loop --------------------------------------------
    async def _slot_loop(self, slot: _Slot) -> None:
        backoff = self.restart_backoff_s
        try:
            while not self._stopping:
                slot.state = "starting"
                slot.proc = await self._spawn()
                if self._c_spawned is not None:
                    self._c_spawned.inc()
                if not await self._await_ready(slot.proc):
                    await self._close_worker(slot.proc)
                    slot.proc = None
                    slot.state = "backoff"
                    slot.restarts += 1
                    if self._c_restarts is not None:
                        self._c_restarts.inc()
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, self.max_backoff_s)
                    continue
                alive = True
                while alive and not self._stopping:
                    slot.state = "idle"
                    order = await self.queue.get()
                    if order.dead:
                        continue
                    slot.state = "busy"
                    slot.job = order.digest
                    outcome, alive = await self._execute(slot.proc, order)
                    slot.job = None
                    slot.jobs_done += 1
                    if not outcome.infra:
                        backoff = self.restart_backoff_s
                    await self.on_result(order, outcome)
                # worker died or was killed: respawn after backoff
                if slot.proc is not None:
                    await self._close_worker(slot.proc)
                    slot.proc = None
                if not self._stopping:
                    slot.state = "backoff"
                    slot.restarts += 1
                    if self._c_restarts is not None:
                        self._c_restarts.inc()
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, self.max_backoff_s)
        except asyncio.CancelledError:
            raise
        except Exception:  # pragma: no cover — supervision must not die
            log.exception("slot %d: supervision loop crashed", slot.index)
            raise

    async def _spawn(self) -> asyncio.subprocess.Process:
        return await asyncio.create_subprocess_exec(
            *spawn_argv(),
            stdin=asyncio.subprocess.PIPE, stdout=asyncio.subprocess.PIPE,
            env=self._env, limit=MAX_LINE,
        )

    async def _await_ready(self, proc: asyncio.subprocess.Process) -> bool:
        try:
            line = await asyncio.wait_for(
                proc.stdout.readline(), BOOT_TIMEOUT_S)
        except asyncio.TimeoutError:
            log.warning("worker pid %s: no ready line, killing", proc.pid)
            return False
        if not line:
            return False
        try:
            return json.loads(line).get("kind") == "ready"
        except ValueError:
            return False

    # -- one attempt ----------------------------------------------------------
    async def _execute(
        self, proc: asyncio.subprocess.Process, order: WorkOrder,
    ) -> tuple:
        """Returns ``(outcome, worker_still_alive)``."""
        job: Dict[str, Any] = {
            "kind": "job", "id": order.digest, "spec": order.spec_rec,
            "seed": order.seed, "attempt": order.attempt}
        if self._baseline_source is not None:
            known = self._baseline_source(order.spec_rec)
            if known:
                job["baselines"] = known
        req = json.dumps(job, separators=(",", ":")) + "\n"
        try:
            proc.stdin.write(req.encode())
            await proc.stdin.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return Outcome(error="worker died before accepting the job",
                           infra=True), False
        loop = asyncio.get_running_loop()
        deadline = (loop.time() + self.timeout_s
                    if self.timeout_s is not None else None)
        while True:
            wait = self.hb_timeout_s
            if deadline is not None:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    await self._kill(proc)
                    if self._c_timeouts is not None:
                        self._c_timeouts.inc()
                    return Outcome(
                        error=f"watchdog timeout after {self.timeout_s:g}s",
                        infra=True), False
                wait = min(wait, remaining)
            try:
                line = await asyncio.wait_for(proc.stdout.readline(), wait)
            except asyncio.TimeoutError:
                if deadline is not None and loop.time() >= deadline:
                    await self._kill(proc)
                    if self._c_timeouts is not None:
                        self._c_timeouts.inc()
                    return Outcome(
                        error=f"watchdog timeout after {self.timeout_s:g}s",
                        infra=True), False
                await self._kill(proc)
                if self._c_hb_lost is not None:
                    self._c_hb_lost.inc()
                return Outcome(
                    error=f"no heartbeat for {self.hb_timeout_s:g}s "
                          "(worker frozen)", infra=True), False
            if not line:
                rc = proc.returncode
                await proc.wait()
                rc = proc.returncode if rc is None else rc
                died = (f"worker killed by signal {-rc}" if rc and rc < 0
                        else f"worker exited with status {rc}")
                return Outcome(error=died + " mid-job", infra=True), False
            try:
                rec = json.loads(line)
            except ValueError:
                # Chaos 'corrupt', a logging handler on stdout, partial
                # writes from a dying worker: count it and keep reading —
                # the watchdog still bounds how long we will.
                if self._c_garbage is not None:
                    self._c_garbage.inc()
                continue
            kind = rec.get("kind")
            if kind == "hb":
                continue
            if kind == "result" and rec.get("id") == order.digest:
                if rec.get("ok"):
                    return Outcome(
                        ok=True, value=rec.get("value"),
                        baselines=rec.get("baselines"),
                        baseline_stats=rec.get("baseline_stats"),
                        snapshot_stats=rec.get("snapshot_stats")), True
                return Outcome(
                    error=str(rec.get("error", "?")),
                    failed_in_sim=bool(rec.get("failed_in_sim")),
                    fault=rec.get("fault")), True
            # stale result for a job we already gave up on: drop it.

    async def _kill(self, proc: asyncio.subprocess.Process) -> None:
        try:
            proc.kill()
        except ProcessLookupError:
            pass
        await proc.wait()

    async def _close_worker(self, proc: asyncio.subprocess.Process) -> None:
        """EOF-then-kill: give an idle worker a moment to exit cleanly."""
        if proc.returncode is not None:
            return
        try:
            if proc.stdin is not None:
                proc.stdin.close()
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        try:
            await asyncio.wait_for(proc.wait(), 2.0)
        except asyncio.TimeoutError:
            await self._kill(proc)
