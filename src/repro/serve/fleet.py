"""Daemon-side fleet scheduling: leases, fencing tokens, failure detection.

The daemon's TCP listener admits two kinds of peers: clients (submit /
status) and **remote worker agents** (:mod:`repro.serve.agent`).  An
agent pulls work through time-bounded *leases*; this module owns the
lease table and the two invariants that make a multi-host fleet safe to
run on hardware that misbehaves:

1. **Leases expire on heartbeat loss.**  Every lease carries a deadline
   on the daemon's *monotonic* clock (never wall-clock — NTP steps and
   suspend/resume must not revoke or immortalize work).  A worker that
   stops heartbeating — killed, frozen under SIGSTOP, or cut off by a
   network partition — loses the lease after ``lease_s`` and the cell is
   re-granted to someone else.  Cells are seed-deterministic, so the
   re-run is byte-identical to the one that was lost.

2. **Fencing tokens make re-granting safe.**  Each grant carries a
   token from a strictly monotonically increasing sequence; the commit
   path accepts a result only if its token matches the digest's
   *current* lease.  A partitioned worker that comes back and delivers
   the result of a long-revoked lease is fenced off — the result is
   discarded and counted, never committed, so a cell can never be
   double-committed or clobbered by a zombie.  Tokens stay monotonic
   across daemon restarts via a persistent epoch (``fleet.fence``):
   every boot claims the next epoch before granting anything, so a
   result computed for a pre-crash daemon can never fence *into* its
   successor either.

The scheduler decides nothing about job fate: expiry hands the work
order back to the daemon, which routes it through the same retry /
quarantine accounting a local worker-death takes.  Remote and local
execution are therefore indistinguishable in every observable result —
the fleet only changes *where* a deterministic cell runs.
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.atomic import atomic_write_text
from repro.serve.pool import WorkOrder

__all__ = ["Lease", "RemoteWorker", "FleetScheduler", "next_fence_epoch"]

log = logging.getLogger(__name__)

#: Tokens are ``epoch * EPOCH_STRIDE + seq``: strictly increasing within
#: a boot, and any post-restart token beats any pre-restart one.
EPOCH_STRIDE = 1_000_000_000


def next_fence_epoch(state_dir: str) -> int:
    """Claim the next fencing epoch for this state directory.

    Read-increment-write of ``<state_dir>/fleet.fence`` (atomic rename,
    caller holds the daemon's single-writer lock).  A missing or
    corrupt file restarts at epoch 1 — safe only because the journal
    lock guarantees no *live* daemon shares the directory, and a wiped
    state dir has no outstanding leases to fence against.
    """
    path = os.path.join(state_dir, "fleet.fence")
    epoch = 0
    try:
        with open(path, encoding="utf-8") as fp:
            epoch = int(json.load(fp).get("epoch", 0))
    except (OSError, ValueError, TypeError, AttributeError):
        pass
    epoch += 1
    atomic_write_text(path, lambda fp: json.dump({"epoch": epoch}, fp))
    return epoch


class Lease:
    """One granted cell: who runs it, under which token, until when."""

    __slots__ = ("digest", "order", "token", "worker_id", "granted_at",
                 "deadline")

    def __init__(self, digest: str, order: WorkOrder, token: int,
                 worker_id: str, now: float, lease_s: float):
        self.digest = digest
        self.order = order
        self.token = token
        self.worker_id = worker_id
        self.granted_at = now
        self.deadline = now + lease_s


class RemoteWorker:
    """Connection-scoped registration of one remote agent."""

    __slots__ = ("worker_id", "name", "addr", "connected_at", "last_seen",
                 "jobs_done", "leases")

    def __init__(self, worker_id: str, name: str, addr: str, now: float):
        self.worker_id = worker_id
        self.name = name
        self.addr = addr
        self.connected_at = now
        self.last_seen = now
        self.jobs_done = 0
        self.leases: set = set()  # digests currently leased to us


class FleetScheduler:
    """The lease table for one daemon (single event loop, no locking)."""

    def __init__(self, state_dir: str, lease_s: float = 15.0,
                 metrics=None, now: Callable[[], float] = time.monotonic):
        self.lease_s = lease_s
        self._now = now
        self._epoch = next_fence_epoch(state_dir)
        self._seq = 0
        self._conn_seq = 0
        self._leases: Dict[str, Lease] = {}
        self._workers: Dict[str, RemoteWorker] = {}
        if metrics is not None:
            self._c_connects = metrics.counter(
                "serve.fleet.connects", "remote worker hellos accepted "
                "(reconnects after a drop land here again)")
            self._c_disconnects = metrics.counter(
                "serve.fleet.disconnects", "remote worker connections lost")
            self._c_granted = metrics.counter(
                "serve.fleet.leases.granted", "cell leases granted")
            self._c_expired = metrics.counter(
                "serve.fleet.leases.expired",
                "leases revoked after heartbeat loss")
            self._c_released = metrics.counter(
                "serve.fleet.leases.released",
                "leases released by a valid result")
            self._c_fenced = metrics.counter(
                "serve.fleet.leases.fenced",
                "stale-fencing-token results rejected")
            self._c_heartbeats = metrics.counter(
                "serve.fleet.heartbeats", "lease heartbeats renewed")
        else:
            self._c_connects = self._c_disconnects = None
            self._c_granted = self._c_expired = self._c_released = None
            self._c_fenced = self._c_heartbeats = None

    # -- worker registry ------------------------------------------------------
    def register(self, name: str, addr: str) -> RemoteWorker:
        self._conn_seq += 1
        worker_id = f"{name or 'worker'}#{self._epoch}.{self._conn_seq}"
        worker = RemoteWorker(worker_id, name, addr, self._now())
        self._workers[worker_id] = worker
        self._count(self._c_connects)
        log.info("fleet: worker %s connected from %s", worker_id, addr)
        return worker

    def disconnect(self, worker_id: str) -> List[WorkOrder]:
        """Drop a worker; returns the orders of every lease it held
        (revoked immediately — a vanished connection is a failed
        heartbeat we do not have to wait for)."""
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return []
        self._count(self._c_disconnects)
        orders = []
        for digest in list(worker.leases):
            lease = self._leases.get(digest)
            if lease is not None and lease.worker_id == worker_id:
                del self._leases[digest]
                self._count(self._c_expired)
                orders.append(lease.order)
        if orders:
            log.warning("fleet: worker %s vanished holding %d lease(s)",
                        worker_id, len(orders))
        return orders

    # -- leases ---------------------------------------------------------------
    def grant(self, worker_id: str, order: WorkOrder) -> Optional[Lease]:
        """Lease ``order`` to ``worker_id`` under a fresh fencing token."""
        worker = self._workers.get(worker_id)
        if worker is None:
            return None
        self._seq += 1
        lease = Lease(order.digest, order,
                      self._epoch * EPOCH_STRIDE + self._seq,
                      worker_id, self._now(), self.lease_s)
        self._leases[order.digest] = lease
        worker.leases.add(order.digest)
        worker.last_seen = lease.granted_at
        self._count(self._c_granted)
        return lease

    def heartbeat(self, worker_id: str, digest: str, token: int) -> bool:
        """Renew a lease; ``False`` means it is gone (expired, fenced,
        or never ours) and the worker must abandon the job."""
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.last_seen = self._now()
        lease = self._leases.get(digest)
        if lease is None or lease.token != token:
            return False
        lease.deadline = self._now() + self.lease_s
        self._count(self._c_heartbeats)
        return True

    def take(self, digest: str, token: int) -> Optional[Lease]:
        """Validate-and-release for the commit path: the lease matching
        ``token`` exactly, or ``None`` (stale token → fenced + counted).

        This is the fencing decision.  The caller commits the result
        *only* when this returns the lease.
        """
        lease = self._leases.get(digest)
        if lease is None or lease.token != token:
            self._count(self._c_fenced)
            log.warning(
                "fleet: fenced stale result for %s (token %d, current %s)",
                digest, token,
                lease.token if lease is not None else "none")
            return None
        del self._leases[digest]
        worker = self._workers.get(lease.worker_id)
        if worker is not None:
            worker.leases.discard(digest)
            worker.jobs_done += 1
            worker.last_seen = self._now()
        self._count(self._c_released)
        return lease

    def expire(self) -> List[Lease]:
        """Pop every lease whose deadline has passed (monotonic clock).
        The caller re-routes each popped order through retry accounting."""
        now = self._now()
        expired = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in expired:
            del self._leases[lease.digest]
            worker = self._workers.get(lease.worker_id)
            if worker is not None:
                worker.leases.discard(lease.digest)
            self._count(self._c_expired)
            log.warning("fleet: lease on %s expired (worker %s silent "
                        "for %gs)", lease.digest, lease.worker_id,
                        self.lease_s)
        return expired

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def workers(self) -> int:
        return len(self._workers)

    def snapshot(self) -> Dict[str, Any]:
        now = self._now()
        return {
            "epoch": self._epoch,
            "workers": [
                {"worker_id": w.worker_id, "name": w.name, "addr": w.addr,
                 "leases": sorted(w.leases), "jobs_done": w.jobs_done,
                 "idle_s": round(now - w.last_seen, 3)}
                for w in self._workers.values()
            ],
            "leases": [
                {"digest": lease.digest, "worker_id": lease.worker_id,
                 "token": lease.token,
                 "expires_in_s": round(lease.deadline - now, 3)}
                for lease in self._leases.values()
            ],
        }

    @staticmethod
    def _count(counter) -> None:
        if counter is not None:
            counter.inc()
