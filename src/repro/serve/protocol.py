"""The serve wire format: one JSON object per line, both directions.

Line-delimited JSON keeps every layer inspectable with ``nc``/``socat``
and keeps framing trivial: a request is one line, its reply is one line.
Requests carry an ``op``; replies always carry ``ok``.  Error replies
are *typed* — a machine-readable ``error`` code plus a human ``message``
— so clients can distinguish "back off and retry" from "this will never
work":

* ``saturated`` — the daemon's bounded queue is full; the reply carries
  ``retry_after`` seconds (HTTP-429 semantics).
* ``unavailable`` — the daemon's durable journal cannot accept writes
  right now (disk full, I/O error); retryable with ``retry_after``,
  exactly like ``saturated``.
* ``draining`` — the daemon is shutting down gracefully; resubmit to
  its successor.
* ``bad-request`` — malformed line or unknown op; never retry.
* ``too-large`` — request line exceeded :data:`MAX_LINE`; never retry.

Client ops:

* ``submit`` — ``{"op": "submit", "cells": [specrec...], "wait": bool}``.
  With ``wait`` the reply arrives when every cell is terminal and
  carries per-cell ``status``/``value``/``cached``/``attempts``;
  without, it acknowledges acceptance counts immediately.
* ``status`` — queue depth, worker states, fleet leases, cache and
  counter snapshot.
* ``metrics`` — the daemon's registry in Prometheus exposition text.
* ``drain`` — begin graceful shutdown (same path as SIGTERM).
* ``clear-quarantine`` — operator op: forget every circuit-broken cell
  (in memory and in the durable journal) so resubmissions compute again.

Fleet ops (remote worker agents over the same TCP listener; see
:mod:`repro.serve.fleet`).  The handshake is versioned: a ``hello``
carries ``proto`` and the daemon refuses versions it does not speak, so
a fleet can be upgraded one side at a time without silent corruption:

* ``worker-hello`` — ``{"op": "worker-hello", "proto": FLEET_PROTO,
  "name": ...}`` → ``{"ok": true, "proto": ..., "worker_id": ...,
  "lease_s": ..., "hb_s": ...}``.  One hello per connection; the
  connection *is* the worker's session, and its loss revokes every
  lease the worker holds.
* ``lease-request`` — ask for one cell.  The grant carries the spec,
  seed, attempt, the lease's **fencing token**, and the watchdog
  deadline; an idle daemon replies ``{"lease": null, "retry_after": s}``.
* ``worker-heartbeat`` — ``{"digest": ..., "token": ...}`` renews the
  lease; the reply's ``lease`` field is ``"ok"`` or ``"revoked"`` (the
  agent must kill the job and discard its result on revocation).
* ``worker-result`` — deliver one outcome with the lease token.  The
  reply's ``accepted`` is false when the token is stale (the lease
  expired and was re-granted, or the daemon restarted); a stale result
  is *never* committed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_LINE",
    "FLEET_PROTO",
    "RETRYABLE",
    "E_SATURATED",
    "E_UNAVAILABLE",
    "E_DRAINING",
    "E_BAD_REQUEST",
    "E_TOO_LARGE",
    "encode",
    "decode",
    "error_reply",
]

#: Hard cap on one protocol line (requests *and* replies).  Big enough
#: for a full-table submit or a reply carrying attribution blocks, small
#: enough that a misbehaving client cannot balloon daemon memory.
MAX_LINE = 32 * 1024 * 1024

#: Fleet handshake version.  Bumped whenever the worker↔daemon message
#: shapes change incompatibly; a daemon refuses hellos it cannot speak.
FLEET_PROTO = 1

E_SATURATED = "saturated"
E_UNAVAILABLE = "unavailable"
E_DRAINING = "draining"
E_BAD_REQUEST = "bad-request"
E_TOO_LARGE = "too-large"

#: Error codes a client may retry with backoff (the condition is
#: transient); everything else is terminal for the request as sent.
RETRYABLE = frozenset({E_SATURATED, E_UNAVAILABLE})


def encode(obj: Dict[str, Any]) -> bytes:
    """One protocol line, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on anything that
    is not a JSON object."""
    obj = json.loads(line.decode("utf-8"))
    if not isinstance(obj, dict):
        raise ValueError("protocol line is not a JSON object")
    return obj


def error_reply(code: str, message: str,
                retry_after: Optional[float] = None) -> Dict[str, Any]:
    rep: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if retry_after is not None:
        rep["retry_after"] = round(float(retry_after), 3)
    return rep
