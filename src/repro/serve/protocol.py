"""The serve wire format: one JSON object per line, both directions.

Line-delimited JSON keeps every layer inspectable with ``nc``/``socat``
and keeps framing trivial: a request is one line, its reply is one line.
Requests carry an ``op``; replies always carry ``ok``.  Error replies
are *typed* — a machine-readable ``error`` code plus a human ``message``
— so clients can distinguish "back off and retry" from "this will never
work":

* ``saturated`` — the daemon's bounded queue is full; the reply carries
  ``retry_after`` seconds (HTTP-429 semantics).
* ``draining`` — the daemon is shutting down gracefully; resubmit to
  its successor.
* ``bad-request`` — malformed line or unknown op; never retry.
* ``too-large`` — request line exceeded :data:`MAX_LINE`; never retry.

Ops:

* ``submit`` — ``{"op": "submit", "cells": [specrec...], "wait": bool}``.
  With ``wait`` the reply arrives when every cell is terminal and
  carries per-cell ``status``/``value``/``cached``/``attempts``;
  without, it acknowledges acceptance counts immediately.
* ``status`` — queue depth, worker states, cache and counter snapshot.
* ``metrics`` — the daemon's registry in Prometheus exposition text.
* ``drain`` — begin graceful shutdown (same path as SIGTERM).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_LINE",
    "E_SATURATED",
    "E_DRAINING",
    "E_BAD_REQUEST",
    "E_TOO_LARGE",
    "encode",
    "decode",
    "error_reply",
]

#: Hard cap on one protocol line (requests *and* replies).  Big enough
#: for a full-table submit or a reply carrying attribution blocks, small
#: enough that a misbehaving client cannot balloon daemon memory.
MAX_LINE = 32 * 1024 * 1024

E_SATURATED = "saturated"
E_DRAINING = "draining"
E_BAD_REQUEST = "bad-request"
E_TOO_LARGE = "too-large"


def encode(obj: Dict[str, Any]) -> bytes:
    """One protocol line, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on anything that
    is not a JSON object."""
    obj = json.loads(line.decode("utf-8"))
    if not isinstance(obj, dict):
        raise ValueError("protocol line is not a JSON object")
    return obj


def error_reply(code: str, message: str,
                retry_after: Optional[float] = None) -> Dict[str, Any]:
    rep: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if retry_after is not None:
        rep["retry_after"] = round(float(retry_after), 3)
    return rep
