"""Blocking client for the serve daemon (CLI, scripts, tests).

One request per connection keeps the client trivially correct: connect,
write one line, read one line, close.  Submission replies can be large
(a full table's payloads), but ``makefile`` framing handles any length.
Typed daemon errors surface as :class:`ServeError` carrying the machine
code and the ``retry_after`` hint, so callers can distinguish "back off"
from "give up" without parsing prose.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.serve import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A typed failure reply (or transport failure) from the daemon."""

    def __init__(self, code: str, message: str,
                 retry_after: Optional[float] = None):
        self.code = code
        self.retry_after = retry_after
        hint = f" (retry_after {retry_after:g}s)" if retry_after else ""
        super().__init__(f"{code}: {message}{hint}")


class ServeClient:
    """Talk to one daemon over its unix socket or TCP endpoint."""

    def __init__(self, socket_path: Optional[str] = None,
                 tcp: Optional[Tuple[str, int]] = None,
                 timeout_s: Optional[float] = 600.0):
        if (socket_path is None) == (tcp is None):
            raise ValueError("pass exactly one of socket_path or tcp")
        self.socket_path = socket_path
        self.tcp = tcp
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = self.tcp
        sock.settimeout(self.timeout_s)
        sock.connect(target)
        return sock

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; raises :class:`ServeError` on any failure."""
        try:
            with self._connect() as sock:
                sock.sendall(protocol.encode(req))
                with sock.makefile("rb") as fp:
                    line = fp.readline()
        except socket.timeout as exc:
            raise ServeError("timeout", f"daemon did not reply: {exc}") \
                from exc
        except OSError as exc:
            raise ServeError(
                "unreachable",
                f"cannot reach daemon at "
                f"{self.socket_path or self.tcp}: {exc}") from exc
        if not line:
            raise ServeError(
                "disconnected", "daemon closed the connection mid-request "
                "(killed or draining?)")
        try:
            rep = protocol.decode(line)
        except ValueError as exc:
            raise ServeError("garbled", f"unparsable reply: {exc}") from exc
        if not rep.get("ok"):
            raise ServeError(
                str(rep.get("error", "error")),
                str(rep.get("message", "")), rep.get("retry_after"))
        return rep

    # -- ops ------------------------------------------------------------------
    def submit(self, cells: List[Dict[str, Any]],
               wait: bool = True) -> Dict[str, Any]:
        return self.request({"op": "submit", "cells": cells, "wait": wait})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def metrics(self) -> str:
        return self.request({"op": "metrics"})["prom"]

    def drain(self) -> Dict[str, Any]:
        return self.request({"op": "drain"})
