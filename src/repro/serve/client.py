"""Blocking client for the serve daemon (CLI, scripts, tests).

One request per connection keeps the client trivially correct: connect,
write one line, read one line, close.  Submission replies can be large
(a full table's payloads), but ``makefile`` framing handles any length.
Typed daemon errors surface as :class:`ServeError` carrying the machine
code and the ``retry_after`` hint, so callers can distinguish "back off"
from "give up" without parsing prose.

Retries use **decorrelated jitter** (:func:`decorrelated_jitter`):
each sleep is drawn uniformly from ``[base, 3 * previous_sleep]`` and
capped, so a thundering herd of clients bounced by one ``saturated``
reply desynchronizes instead of re-arriving in lockstep — plain
exponential backoff keeps the herd in phase, which is exactly how a
recovering daemon gets knocked over again.  A server-sent
``retry_after`` is honored as a *floor*: the daemon knows its queue
depth better than any client-side schedule does.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serve import protocol

__all__ = ["ServeClient", "ServeError", "decorrelated_jitter"]


def decorrelated_jitter(previous_s: float, base_s: float, cap_s: float,
                        floor_s: float = 0.0,
                        rng: Callable[[], float] = random.random) -> float:
    """The next backoff sleep: ``min(cap, uniform(base, 3 * previous))``,
    raised to ``floor_s`` (a server-sent ``retry_after``).

    ``rng`` returns uniform [0, 1) draws; injectable so tests can pin
    the schedule.  Shared by the client retry loop and the fleet
    agent's reconnect failure detector.
    """
    span = max(3.0 * previous_s - base_s, 0.0)
    return max(float(floor_s), min(float(cap_s), base_s + rng() * span))


class ServeError(RuntimeError):
    """A typed failure reply (or transport failure) from the daemon."""

    def __init__(self, code: str, message: str,
                 retry_after: Optional[float] = None):
        self.code = code
        self.retry_after = retry_after
        hint = f" (retry_after {retry_after:g}s)" if retry_after else ""
        super().__init__(f"{code}: {message}{hint}")


class ServeClient:
    """Talk to one daemon over its unix socket or TCP endpoint."""

    def __init__(self, socket_path: Optional[str] = None,
                 tcp: Optional[Tuple[str, int]] = None,
                 timeout_s: Optional[float] = 600.0):
        if (socket_path is None) == (tcp is None):
            raise ValueError("pass exactly one of socket_path or tcp")
        self.socket_path = socket_path
        self.tcp = tcp
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: Any = self.socket_path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = self.tcp
        sock.settimeout(self.timeout_s)
        sock.connect(target)
        return sock

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; raises :class:`ServeError` on any failure."""
        try:
            with self._connect() as sock:
                sock.sendall(protocol.encode(req))
                with sock.makefile("rb") as fp:
                    line = fp.readline()
        except socket.timeout as exc:
            raise ServeError("timeout", f"daemon did not reply: {exc}") \
                from exc
        except OSError as exc:
            raise ServeError(
                "unreachable",
                f"cannot reach daemon at "
                f"{self.socket_path or self.tcp}: {exc}") from exc
        if not line:
            raise ServeError(
                "disconnected", "daemon closed the connection mid-request "
                "(killed or draining?)")
        try:
            rep = protocol.decode(line)
        except ValueError as exc:
            raise ServeError("garbled", f"unparsable reply: {exc}") from exc
        if not rep.get("ok"):
            raise ServeError(
                str(rep.get("error", "error")),
                str(rep.get("message", "")), rep.get("retry_after"))
        return rep

    def request_retrying(self, req: Dict[str, Any], retries: int = 4,
                         base_s: float = 0.5, cap_s: float = 30.0,
                         sleep: Callable[[float], None] = time.sleep,
                         rng: Callable[[], float] = random.random,
                         ) -> Dict[str, Any]:
        """:meth:`request`, retried on *retryable* failures.

        Retries cover the typed transient codes (``saturated``,
        ``unavailable``) plus an unreachable daemon (it may be
        restarting); sleeps follow :func:`decorrelated_jitter` with any
        server-sent ``retry_after`` as the floor.  Safe for ``submit``
        — cells are digest-idempotent, so a resubmission coalesces or
        hits the cache, never double-computes.  Terminal codes
        (``bad-request``, ``draining``, …) raise immediately.
        """
        prev = base_s
        attempt = 0
        while True:
            try:
                return self.request(req)
            except ServeError as exc:
                retryable = (exc.code in protocol.RETRYABLE
                             or exc.code == "unreachable")
                if not retryable or attempt >= retries:
                    raise
                floor = exc.retry_after or 0.0
            attempt += 1
            prev = decorrelated_jitter(
                prev, base_s, cap_s, floor_s=floor, rng=rng)
            sleep(prev)

    # -- ops ------------------------------------------------------------------
    def submit(self, cells: List[Dict[str, Any]], wait: bool = True,
               retries: int = 0) -> Dict[str, Any]:
        req = {"op": "submit", "cells": cells, "wait": wait}
        if retries > 0:
            return self.request_retrying(req, retries=retries)
        return self.request(req)

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def metrics(self) -> str:
        return self.request({"op": "metrics"})["prom"]

    def drain(self) -> Dict[str, Any]:
        return self.request({"op": "drain"})

    def clear_quarantine(self) -> Dict[str, Any]:
        return self.request({"op": "clear-quarantine"})
