"""repro.serve — sweep-as-a-service.

The paper's tables are deterministic functions of a
:class:`~repro.runx.spec.CellSpec`: same executor, params, and seed ⇒
bit-identical payload.  That makes serving them at scale a caching
problem, not a compute problem — identical requests from a million users
cost one simulation.  This package turns the one-shot ``repro-smm`` CLI
into a long-lived daemon built for exactly that, with robustness as the
headline feature:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire format
  (unix socket + optional TCP) and its typed error replies, including
  HTTP-429-style ``retry_after`` backpressure;
* :mod:`repro.serve.cache` — a persistent content-addressed result
  cache keyed by ``CellSpec.digest()``; entries are written atomically
  and **re-verified on read** (payload checksum + spec digest +
  calibration provenance), so truncated or bit-flipped payloads are
  detected, evicted, and recomputed — never served;
* :mod:`repro.serve.queue` — a durable fsync'd job journal in the
  `repro.runx.journal` record format: ``kill -9`` of the daemon loses no
  accepted job, and a restart replays exactly the unfinished work;
* :mod:`repro.serve.workproc` — the long-lived worker subprocess
  (heartbeats while executing, chaos-plan hooks for drills);
* :mod:`repro.serve.pool` — asyncio worker supervision: heartbeat
  monitoring, per-cell watchdog timeouts, bounded exponential-backoff
  restarts;
* :mod:`repro.serve.daemon` — the daemon itself: in-flight request
  coalescing, a circuit breaker that quarantines poisoned cells instead
  of crash-looping the pool, bounded queues, graceful drain on SIGTERM;
* :mod:`repro.serve.client` — the blocking client the CLI
  (``repro-smm serve | submit | status``) and tests use, with
  decorrelated-jitter retry honoring the server's ``retry_after``;
* :mod:`repro.serve.fleet` — daemon-side multi-host scheduling: cells
  leased to remote workers under monotonic-clock deadlines and
  **fencing tokens**, so heartbeat loss re-grants work and a zombie's
  stale result can never be committed twice;
* :mod:`repro.serve.agent` — the remote worker
  (``repro-smm worker --connect HOST:PORT``) that dials the daemon,
  pulls leases, runs them in a supervised workproc child, and
  reconnects with bounded decorrelated-jitter backoff.
"""

from repro.serve.agent import AgentConfig, WorkerAgent
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError, decorrelated_jitter
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.fleet import FleetScheduler
from repro.serve.queue import DurableQueue, JournalWriteError, QueueState

__all__ = [
    "AgentConfig",
    "WorkerAgent",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "decorrelated_jitter",
    "ServeConfig",
    "ServeDaemon",
    "FleetScheduler",
    "DurableQueue",
    "JournalWriteError",
    "QueueState",
]
