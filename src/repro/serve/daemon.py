"""The sweep-serving daemon: accept, dedup, shard, cache, survive.

``ServeDaemon`` is the long-lived composition of the package's parts:
an asyncio server (unix socket + optional TCP) feeding a supervised
worker pool through a durable queue, with a content-addressed cache in
front.  The life of a submitted cell:

1. **Quarantine check** — a digest the circuit breaker has tripped on
   answers immediately with its quarantine record; it never reaches the
   pool again until the operator clears the state directory.
2. **Cache probe** — a verified cache entry answers immediately
   (``cached: true``); corruption is evicted and falls through to 4.
3. **Coalesce** — if the digest is already in flight, the submission
   becomes one more waiter on the existing job (``coalesced: true``):
   a thousand identical requests cost one simulation.
4. **Accept** — the job is fsync'd to the durable queue *before* the
   client hears "accepted", then enqueued to the pool.  If accepting
   would push outstanding work past ``max_pending``, the whole submit
   is refused with ``saturated`` + ``retry_after`` instead (bounded
   queues: the daemon sheds load, it does not fall over).

Results flow back through :meth:`_on_result`: success writes the cache
entry, then the ``done`` record (write-then-ack: a crash between the
two replays the job, finds the cache entry, and completes it without
recompute — at-least-once execution, exactly-once effect).  An
infrastructure failure (worker death, watchdog, lost heartbeat)
requeues the attempt with the *same seed* — cells are deterministic, so
a retried kill is byte-identical to an uninterrupted run.  A cell that
keeps poisoning workers trips the circuit breaker after
``max_attempts`` and is durably quarantined rather than allowed to
crash-loop the pool.

``kill -9`` of the daemon is a designed-for event, not an error path:
the lock dies with the process, the next boot replays the queue journal,
completes anything the cache already holds, and re-runs the rest.
SIGTERM instead drains gracefully: stop accepting, finish in-flight
work, compact the journal, release everything.

Remote workers (:mod:`repro.serve.agent`) are admitted over the same
listeners through the fleet ops (``worker-hello`` / ``lease-request`` /
``worker-heartbeat`` / ``worker-result``) and compete with the local
pool for the same queue — local slots take precedence when idle, remote
agents absorb the overflow, and with zero agents connected the daemon
degrades to exactly the single-host pool with no configuration change
(``--workers 0`` runs a pure-fleet daemon).  :mod:`repro.serve.fleet`
owns the lease table and fencing tokens; this module routes expired
leases and fenced results through the same retry/quarantine accounting
a local worker death takes, so a cell's observable fate is identical
wherever it ran.  During a SIGTERM drain leases keep being granted and
renewed — accepted work is finished by whoever holds capacity — while
new submits are refused.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import socket
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.runx.journal import JournalWriteError
from repro.runx.lock import SingleWriterLock
from repro.runx.spec import CellSpec
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.fleet import FleetScheduler
from repro.serve.pool import Outcome, WorkOrder, WorkerPool
from repro.serve.queue import DurableQueue, QueueState

__all__ = ["ServeConfig", "ServeDaemon", "run"]

log = logging.getLogger(__name__)


def _engine_name() -> str:
    """The rate engine workers will run (``py``/``vec``), for status
    output; an unusable ``$REPRO_ENGINE`` is reported, not raised."""
    from repro.simx.rate import SimulationError, current_engine

    try:
        return current_engine()
    except SimulationError as exc:
        return f"invalid ({exc})"


@dataclass
class ServeConfig:
    """Everything the daemon needs to know, CLI-shaped."""

    state_dir: str = "serve-state"
    socket_path: Optional[str] = None  # default: <state_dir>/serve.sock
    tcp: Optional[Tuple[str, int]] = None
    #: local pool size; 0 runs a pure-fleet daemon (remote workers only).
    workers: int = 2
    timeout_s: Optional[float] = 300.0
    hb_timeout_s: float = 10.0
    max_attempts: int = 3
    max_pending: int = 256
    restart_backoff_s: float = 0.1
    max_backoff_s: float = 5.0
    #: revoke a remote lease after this long without a heartbeat
    #: (monotonic clock; must comfortably exceed the agent's hb_s).
    lease_s: float = 15.0
    #: crude per-cell cost estimate behind ``retry_after`` hints.
    est_cell_s: float = 2.0

    def resolved_socket(self) -> str:
        return self.socket_path or os.path.join(self.state_dir, "serve.sock")


class _Job:
    """One in-flight digest and everyone waiting on it."""

    __slots__ = ("digest", "spec", "failures", "waiters", "order")

    def __init__(self, digest: str, spec: CellSpec):
        self.digest = digest
        self.spec = spec
        self.failures = 0  # infra-failed attempts so far
        self.waiters: List[asyncio.Future] = []
        self.order: Optional[WorkOrder] = None


class ServeDaemon:
    """See the module docstring; one instance per state directory."""

    def __init__(self, config: ServeConfig,
                 metrics: Optional[MetricsRegistry] = None):
        from repro.obs.attr.baseline import BaselineStore

        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Daemon-lifetime pool of zero-SMI baseline profiles.  Workers
        #: return every baseline they compute (Outcome.baselines); the
        #: daemon ships the accumulated set back out with each
        #: attribution job, so one (bench, class, shape, seed) config
        #: pays for its baseline once per daemon, not once per cell.
        self.baselines = BaselineStore()
        self._baseline_hits = 0
        self._baseline_misses = 0
        #: Aggregated warm-prefix cache tallies from the worker pool
        #: (repro.runx.forkshare).  Unlike baselines, the warm prefixes
        #: themselves are live simulations and cannot cross process
        #: boundaries — each workproc keeps its own store; the daemon
        #: only sums the accounting for ``repro-smm status``.
        self._snapshot_stats = {"hits": 0, "misses": 0,
                                "evictions": 0, "forks": 0}
        self._lock = SingleWriterLock(
            os.path.join(config.state_dir, "daemon.lock"))
        self.cache: Optional[ResultCache] = None
        self.queue_journal: Optional[DurableQueue] = None
        self.pool: Optional[WorkerPool] = None
        self.fleet: Optional[FleetScheduler] = None
        self._lease_reaper_task: Optional[asyncio.Task] = None
        self._jobs_q: "asyncio.Queue[WorkOrder]" = asyncio.Queue()
        self._inflight: Dict[str, _Job] = {}
        self._quarantined: Dict[str, Dict[str, Any]] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started_monotonic = 0.0
        m = self.metrics
        self._c_submits = m.counter(
            "serve.submits", "submit requests handled")
        self._c_accepted = m.counter(
            "serve.jobs.accepted", "jobs durably accepted")
        self._c_completed = m.counter(
            "serve.jobs.completed", "jobs completed ok")
        self._c_failed = m.counter(
            "serve.jobs.failed", "jobs terminally failed (e.g. in-sim)")
        self._c_quarantined = m.counter(
            "serve.jobs.quarantined", "jobs circuit-broken after "
            "poisoning the pool repeatedly")
        self._c_requeued = m.counter(
            "serve.jobs.requeued", "attempts requeued after an "
            "infrastructure failure")
        self._c_replayed = m.counter(
            "serve.jobs.replayed", "jobs recovered from the durable "
            "queue at boot")
        self._c_coalesced = m.counter(
            "serve.coalesced", "submissions folded onto an in-flight "
            "identical job")
        self._c_saturated = m.counter(
            "serve.rejected.saturated", "submits refused with retry_after "
            "because the queue was full")
        self._c_rej_drain = m.counter(
            "serve.rejected.draining", "submits refused during drain")
        self._c_conns = m.counter(
            "serve.connections", "client connections accepted")
        self._c_journal_errors = m.counter(
            "serve.journal.write_errors", "journal appends refused by "
            "the disk (ENOSPC, I/O error) and mapped to retryable "
            "replies or logged")
        self._c_q_cleared = m.counter(
            "serve.quarantine.cleared", "quarantined cells forgotten by "
            "the clear-quarantine operator op")

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        os.makedirs(cfg.state_dir, exist_ok=True)
        self._lock.acquire()  # LockHeldError if another daemon owns the dir
        self.cache = ResultCache(
            os.path.join(cfg.state_dir, "cache"), metrics=self.metrics)
        self.queue_journal = DurableQueue(
            os.path.join(cfg.state_dir, "queue.jsonl"))
        state = self.queue_journal.replay()
        self._quarantined = dict(state.quarantined)
        self.queue_journal.compact(state)
        # The fencing epoch is claimed before any lease can be granted:
        # tokens must already beat every pre-restart token by the time a
        # partitioned worker from the previous life reconnects.
        self.fleet = FleetScheduler(
            cfg.state_dir, lease_s=cfg.lease_s, metrics=self.metrics)
        if cfg.workers > 0:
            self.pool = WorkerPool(
                self._jobs_q, self._on_result, size=cfg.workers,
                timeout_s=cfg.timeout_s, hb_timeout_s=cfg.hb_timeout_s,
                restart_backoff_s=cfg.restart_backoff_s,
                max_backoff_s=cfg.max_backoff_s, metrics=self.metrics,
                baseline_source=self._baselines_for,
            )
        self._replay_pending(state.pending)
        if self.pool is not None:
            await self.pool.start()
        self._lease_reaper_task = asyncio.create_task(
            self._lease_reaper(), name="serve-lease-reaper")
        sock = cfg.resolved_socket()
        if os.path.exists(sock):
            # We hold the state-dir lock, so a leftover socket is from a
            # dead daemon: safe to clear.
            os.unlink(sock)
        self._servers.append(
            await asyncio.start_unix_server(
                self._handle_conn, path=sock, limit=protocol.MAX_LINE))
        if cfg.tcp is not None:
            host, port = cfg.tcp
            self._servers.append(
                await asyncio.start_server(
                    self._handle_conn, host=host, port=port,
                    limit=protocol.MAX_LINE))
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain()))
        self._started_monotonic = time.monotonic()
        log.info("serving on %s (%d workers, %d jobs replayed)",
                 sock, cfg.workers, len(state.pending))

    def _replay_pending(self, pending: Dict[str, Dict[str, Any]]) -> None:
        """Boot-time recovery: every accepted-but-unfinished job either
        completes from the cache (the crash hit between cache write and
        journal ack) or re-enters the queue."""
        assert self.cache is not None and self.queue_journal is not None
        for digest, spec_rec in pending.items():
            try:
                spec = CellSpec.from_record(spec_rec)
            except (KeyError, TypeError, ValueError):
                log.warning("replay: dropping malformed job %s", digest)
                self.queue_journal.record_failed(
                    digest, "malformed spec in queue journal")
                continue
            if self.cache.get(spec) is not None:
                self.queue_journal.record_done(digest)
                continue
            job = _Job(digest, spec)
            job.order = WorkOrder(digest, spec.to_record(), spec.base_seed)
            self._inflight[digest] = job
            self._idle.clear()
            self._jobs_q.put_nowait(job.order)
            self._c_replayed.inc()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish what is accepted,
        compact, release.  Idempotent; SIGTERM/SIGINT and the ``drain``
        op all land here."""
        if self._draining:
            return
        self._draining = True
        log.info("drain: %d jobs in flight (%d leased to the fleet)",
                 len(self._inflight),
                 len(self.fleet) if self.fleet is not None else 0)
        # Leases keep being granted, renewed, and reaped while we wait:
        # remotely leased work is accepted work, and expiry mid-drain
        # must still requeue it to whoever has capacity.
        await self._idle.wait()
        if self._lease_reaper_task is not None:
            self._lease_reaper_task.cancel()
            await asyncio.gather(self._lease_reaper_task,
                                 return_exceptions=True)
            self._lease_reaper_task = None
        if self.pool is not None:
            await self.pool.stop()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []
        if self.queue_journal is not None:
            state = self.queue_journal.replay()
            self.queue_journal.compact(state)
        sock = self.config.resolved_socket()
        try:
            os.unlink(sock)
        except OSError:
            pass
        self._lock.release()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling --------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._c_conns.inc()
        # One mutable session per connection: a worker-hello binds a
        # worker_id to it, and losing the connection *is* the fleet's
        # fast failure detector — every lease the worker held is revoked
        # and requeued without waiting out the heartbeat deadline.
        conn: Dict[str, Any] = {"worker_id": None, "peer": "?"}
        try:
            peer = writer.get_extra_info("peername")
            if peer:
                conn["peer"] = (f"{peer[0]}:{peer[1]}"
                                if isinstance(peer, tuple) else str(peer))
        except OSError:  # pragma: no cover
            pass
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, protocol.error_reply(
                        protocol.E_TOO_LARGE,
                        f"request line exceeds {protocol.MAX_LINE} bytes"))
                    break
                if not line:
                    break
                try:
                    req = protocol.decode(line)
                except ValueError as exc:
                    await self._reply(writer, protocol.error_reply(
                        protocol.E_BAD_REQUEST, f"unparsable request: {exc}"))
                    continue
                await self._reply(writer, await self._dispatch(req, conn))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing owed
        finally:
            if conn["worker_id"] is not None and self.fleet is not None:
                for order in self.fleet.disconnect(conn["worker_id"]):
                    await self._on_result(order, Outcome(
                        error=f"remote worker {conn['worker_id']} "
                              "disconnected mid-lease", infra=True))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, rep: Dict) -> None:
        writer.write(protocol.encode(rep))
        await writer.drain()

    async def _dispatch(self, req: Dict[str, Any],
                        conn: Dict[str, Any]) -> Dict[str, Any]:
        op = req.get("op")
        if op == "submit":
            return await self._op_submit(req)
        if op == "status":
            return self._op_status()
        if op == "metrics":
            return {"ok": True, "prom": self.metrics.render_prom()}
        if op == "drain":
            asyncio.ensure_future(self.drain())
            return {"ok": True, "draining": True}
        if op == "clear-quarantine":
            return self._op_clear_quarantine()
        if op == "worker-hello":
            return self._op_worker_hello(req, conn)
        if op == "lease-request":
            return self._op_lease_request(conn)
        if op == "worker-heartbeat":
            return self._op_worker_heartbeat(req, conn)
        if op == "worker-result":
            return await self._op_worker_result(req, conn)
        return protocol.error_reply(
            protocol.E_BAD_REQUEST, f"unknown op {op!r}")

    # -- submit ---------------------------------------------------------------
    async def _op_submit(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self._c_submits.inc()
        if self._draining:
            self._c_rej_drain.inc()
            return protocol.error_reply(
                protocol.E_DRAINING, "daemon is draining; resubmit to its "
                "successor")
        raw_cells = req.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "submit needs a non-empty 'cells' "
                "list of CellSpec records")
        try:
            specs = [CellSpec.from_record(rec) for rec in raw_cells]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, f"malformed cell spec: {exc}")
        assert self.cache is not None and self.queue_journal is not None

        # Classify every cell before accepting any: backpressure is
        # all-or-nothing so a refused submit has no side effects.
        entries: List[Dict[str, Any]] = []
        to_wait: List[Tuple[Dict[str, Any], asyncio.Future]] = []
        new_jobs: List[Tuple[CellSpec, str]] = []
        seen_new: Dict[str, _Job] = {}
        stats = {"cached": 0, "coalesced": 0, "submitted": 0,
                 "quarantined": 0}
        for spec in specs:
            digest = spec.digest()
            entry: Dict[str, Any] = {"id": spec.id, "digest": digest}
            if digest in self._quarantined:
                qrec = self._quarantined[digest]
                entry.update(status="quarantined",
                             error=qrec.get("error", "quarantined"),
                             attempts=qrec.get("attempts"))
                stats["quarantined"] += 1
                entries.append(entry)
                continue
            job = self._inflight.get(digest) or seen_new.get(digest)
            if job is None:
                value = self.cache.get(spec)
                if value is not None:
                    entry.update(status="ok", value=value, cached=True)
                    stats["cached"] += 1
                    entries.append(entry)
                    continue
                job = _Job(digest, spec)
                seen_new[digest] = job
                new_jobs.append((spec, digest))
                stats["submitted"] += 1
            else:
                entry["coalesced"] = True
                stats["coalesced"] += 1
                self._c_coalesced.inc()
            if req.get("wait", True):
                fut = asyncio.get_running_loop().create_future()
                job.waiters.append(fut)
                to_wait.append((entry, fut))
            entries.append(entry)

        outstanding = len(self._inflight) + len(new_jobs)
        if new_jobs and outstanding > self.config.max_pending:
            self._c_saturated.inc()
            retry = (outstanding * self.config.est_cell_s
                     / max(1, self.config.workers))
            return protocol.error_reply(
                protocol.E_SATURATED,
                f"{len(self._inflight)} jobs outstanding (max "
                f"{self.config.max_pending}); retry later",
                retry_after=retry)

        try:
            for spec, digest in new_jobs:
                job = seen_new[digest]
                # Durability first: the journal record is fsync'd before
                # the job exists anywhere volatile.
                self.queue_journal.record_job(digest, spec.to_record())
                job.order = WorkOrder(digest, spec.to_record(),
                                      spec.base_seed)
                self._inflight[digest] = job
                self._idle.clear()
                self._jobs_q.put_nowait(job.order)
                self._c_accepted.inc()
        except JournalWriteError as exc:
            # The disk refused the fsync (full, read-only, dying).  Cells
            # journaled before the failure stay accepted — they are
            # durable and a retried submit coalesces onto them — but the
            # submit as a whole is refused with retryable backpressure
            # rather than letting the accept loop crash.
            self._c_journal_errors.inc()
            log.error("submit: durable queue refused a write (%s); "
                      "shedding load", exc)
            return protocol.error_reply(
                protocol.E_UNAVAILABLE,
                f"durable queue cannot accept writes ({exc}); retry later",
                retry_after=5.0)

        if not req.get("wait", True):
            return {"ok": True, "stats": stats,
                    "pending": len(self._inflight)}
        for entry, fut in to_wait:
            entry.update(await fut)
        return {"ok": True, "cells": entries, "stats": stats}

    def _baselines_for(self, spec_rec: Dict[str, Any]) -> Optional[list]:
        """Pool dispatch hook: seed an attribution job with every
        baseline record the daemon has accumulated.  Non-attr cells get
        nothing — they could not use the records and the job line stays
        small."""
        if not (spec_rec.get("params") or {}).get("attr"):
            return None
        return self.baselines.export_all() or None

    # -- result flow ----------------------------------------------------------
    def _journal_safe(self, write, what: str) -> None:
        """Best-effort *terminal*-record append: a full disk must not
        turn a finished result into a daemon crash.  The cache (or the
        in-memory quarantine map) already holds the state; losing the
        record costs at worst one replayed-and-cache-satisfied job after
        the next restart."""
        try:
            write()
        except JournalWriteError as exc:
            self._c_journal_errors.inc()
            log.error("journal %s record lost (result kept): %s", what, exc)

    async def _on_result(self, order: WorkOrder, outcome: Outcome) -> None:
        # Harvest baselines before any terminal-state checks: even a
        # result that raced a quarantine carries profiles worth keeping.
        if outcome.baselines:
            self.baselines.absorb(outcome.baselines)
        if outcome.baseline_stats:
            self._baseline_hits += int(outcome.baseline_stats.get("hits", 0))
            self._baseline_misses += int(
                outcome.baseline_stats.get("misses", 0))
        if outcome.snapshot_stats:
            for k in self._snapshot_stats:
                self._snapshot_stats[k] += int(
                    outcome.snapshot_stats.get(k, 0))
        job = self._inflight.get(order.digest)
        if job is None or job.order is not order:
            return  # already terminal (e.g. quarantine raced a kill)
        assert self.cache is not None and self.queue_journal is not None
        if outcome.ok:
            # Cache write *then* journal ack: a crash between the two
            # replays the job and completes it from the cache.
            self.cache.put(job.spec, outcome.value,
                           provenance={"attempts": job.failures + 1})
            self._journal_safe(
                lambda: self.queue_journal.record_done(order.digest),
                "done")
            self._c_completed.inc()
            self._resolve(job, {"status": "ok", "value": outcome.value,
                                "cached": False,
                                "attempts": job.failures + 1})
            return
        if outcome.failed_in_sim:
            self._journal_safe(
                lambda: self.queue_journal.record_failed(
                    order.digest, outcome.error or ""), "failed")
            self._c_failed.inc()
            res = {"status": "failed-in-sim", "error": outcome.error,
                   "attempts": job.failures + 1}
            if outcome.fault is not None:
                res["fault"] = outcome.fault
            self._resolve(job, res)
            return
        job.failures += 1
        if job.failures >= self.config.max_attempts:
            self._journal_safe(
                lambda: self.queue_journal.record_quarantine(
                    order.digest, job.failures, outcome.error or ""),
                "quarantine")
            self._quarantined[order.digest] = {
                "kind": "quarantine", "id": order.digest,
                "attempts": job.failures, "error": outcome.error or ""}
            self._c_quarantined.inc()
            log.warning("quarantined %s after %d poisoned attempts: %s",
                        order.digest, job.failures, outcome.error)
            self._resolve(job, {"status": "quarantined",
                                "error": outcome.error,
                                "attempts": job.failures})
            return
        # Infrastructure failure: requeue with the SAME seed — cells are
        # deterministic, so the eventual value is byte-identical to a
        # run that was never interrupted.
        order.attempt = job.failures
        self._c_requeued.inc()
        log.info("requeue %s (attempt %d): %s",
                 order.digest, order.attempt, outcome.error)
        self._jobs_q.put_nowait(order)

    def _resolve(self, job: _Job, result: Dict[str, Any]) -> None:
        self._inflight.pop(job.digest, None)
        if job.order is not None:
            job.order.dead = True
        for fut in job.waiters:
            if not fut.done():
                fut.set_result(result)
        job.waiters = []
        if not self._inflight:
            self._idle.set()

    # -- fleet (remote worker agents) ------------------------------------------
    async def _lease_reaper(self) -> None:
        """Revoke leases whose holders went silent.  Runs for the whole
        daemon life (including drain: remotely leased work is accepted
        work, and expiry mid-drain must still requeue it); each expired
        order re-enters the exact retry/quarantine accounting a local
        worker death takes."""
        interval = max(0.05, min(1.0, self.config.lease_s / 4))
        while True:
            await asyncio.sleep(interval)
            if self.fleet is None:
                continue
            for lease in self.fleet.expire():
                await self._on_result(lease.order, Outcome(
                    error=f"lease expired (worker {lease.worker_id} silent "
                          f"for {self.config.lease_s:g}s)", infra=True))

    def _op_worker_hello(self, req: Dict[str, Any],
                         conn: Dict[str, Any]) -> Dict[str, Any]:
        if self.fleet is None:
            return protocol.error_reply(
                protocol.E_UNAVAILABLE, "fleet scheduler not started",
                retry_after=1.0)
        proto = req.get("proto")
        if proto != protocol.FLEET_PROTO:
            # Versioned handshake: refuse rather than mis-speak, so a
            # fleet can be upgraded one side at a time.
            return protocol.error_reply(
                protocol.E_BAD_REQUEST,
                f"unsupported fleet proto {proto!r} "
                f"(daemon speaks {protocol.FLEET_PROTO})")
        if conn["worker_id"] is not None:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "connection already said hello")
        worker = self.fleet.register(
            str(req.get("name") or ""), conn["peer"])
        conn["worker_id"] = worker.worker_id
        return {"ok": True, "proto": protocol.FLEET_PROTO,
                "worker_id": worker.worker_id,
                "lease_s": self.config.lease_s,
                "hb_s": max(0.2, self.config.lease_s / 5)}

    def _next_order(self) -> Optional[WorkOrder]:
        """The next live order, or ``None`` — tombstoned orders (killed
        by a racing quarantine or terminal result) are skipped, exactly
        as the local pool skips them."""
        while True:
            try:
                order = self._jobs_q.get_nowait()
            except asyncio.QueueEmpty:
                return None
            if not order.dead:
                return order

    def _op_lease_request(self, conn: Dict[str, Any]) -> Dict[str, Any]:
        wid = conn["worker_id"]
        if wid is None or self.fleet is None:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "lease-request before worker-hello")
        order = self._next_order()
        if order is None:
            return {"ok": True, "lease": None, "retry_after": 0.5}
        lease = self.fleet.grant(wid, order)
        if lease is None:  # worker dropped between readline and here
            self._jobs_q.put_nowait(order)
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, f"unknown worker {wid}")
        body: Dict[str, Any] = {
            "digest": order.digest, "spec": order.spec_rec,
            "seed": order.seed, "attempt": order.attempt,
            "token": lease.token, "lease_s": self.config.lease_s,
        }
        if self.config.timeout_s:
            body["timeout_s"] = self.config.timeout_s
        baselines = self._baselines_for(order.spec_rec)
        if baselines:
            body["baselines"] = baselines
        return {"ok": True, "lease": body}

    def _op_worker_heartbeat(self, req: Dict[str, Any],
                             conn: Dict[str, Any]) -> Dict[str, Any]:
        wid = conn["worker_id"]
        if wid is None or self.fleet is None:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "heartbeat before worker-hello")
        try:
            token = int(req.get("token") or 0)
        except (TypeError, ValueError):
            return protocol.error_reply(protocol.E_BAD_REQUEST, "bad token")
        alive = self.fleet.heartbeat(
            wid, str(req.get("digest") or ""), token)
        return {"ok": True, "lease": "ok" if alive else "revoked"}

    async def _op_worker_result(self, req: Dict[str, Any],
                                conn: Dict[str, Any]) -> Dict[str, Any]:
        wid = conn["worker_id"]
        if wid is None or self.fleet is None:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "worker-result before worker-hello")
        digest = str(req.get("digest") or "")
        try:
            token = int(req.get("token") or 0)
        except (TypeError, ValueError):
            return protocol.error_reply(protocol.E_BAD_REQUEST, "bad token")
        # THE fencing decision: commit only under the current token.  A
        # stale token (lease expired and re-granted, or granted by a
        # pre-restart epoch) is acknowledged but never committed —
        # exactly-once effect regardless of how many hosts raced.
        lease = self.fleet.take(digest, token)
        if lease is None:
            return {"ok": True, "accepted": False}
        result = req.get("result")
        if not isinstance(result, dict):
            result = {"infra": True, "error": "malformed worker result"}
        await self._on_result(lease.order, Outcome(
            ok=bool(result.get("ok")),
            value=result.get("value"),
            error=result.get("error"),
            failed_in_sim=bool(result.get("failed_in_sim")),
            fault=result.get("fault"),
            infra=bool(result.get("infra")),
            baselines=result.get("baselines"),
            baseline_stats=result.get("baseline_stats"),
            snapshot_stats=result.get("snapshot_stats")))
        return {"ok": True, "accepted": True}

    # -- operator ops ----------------------------------------------------------
    def _op_clear_quarantine(self) -> Dict[str, Any]:
        """Forget every circuit-broken cell — in memory *and* in the
        durable journal, so the next boot cannot resurrect them — and
        let resubmissions compute again."""
        assert self.queue_journal is not None
        cleared = sorted(self._quarantined)
        self._quarantined = {}
        state = QueueState(pending={
            digest: job.spec.to_record()
            for digest, job in self._inflight.items()})
        try:
            self.queue_journal.compact(state)
        except OSError as exc:
            self._c_journal_errors.inc()
            return protocol.error_reply(
                protocol.E_UNAVAILABLE,
                f"could not rewrite the queue journal: {exc}",
                retry_after=5.0)
        if cleared:
            self._c_q_cleared.inc(len(cleared))
            log.info("quarantine cleared: %d cell(s) forgotten",
                     len(cleared))
        return {"ok": True, "cleared": len(cleared), "digests": cleared}

    def tcp_endpoint(self) -> Optional[Tuple[str, int]]:
        """The actually-bound TCP address — resolves a requested port 0,
        which tests and the smoke drills use to avoid port races."""
        for server in self._servers:
            for sock in server.sockets or []:
                if sock.family in (socket.AF_INET, socket.AF_INET6):
                    addr = sock.getsockname()
                    return addr[0], addr[1]
        return None

    # -- status ---------------------------------------------------------------
    def _op_status(self) -> Dict[str, Any]:
        assert self.cache is not None
        counters = {
            name: inst.value
            for name, inst in (
                (n, self.metrics.get(n)) for n in self.metrics.names())
            if name.startswith("serve.") and hasattr(inst, "value")
        }
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "inflight": len(self._inflight),
            "queued": self._jobs_q.qsize(),
            "quarantined": len(self._quarantined),
            "workers": self.pool.snapshot() if self.pool is not None else [],
            "fleet": (self.fleet.snapshot()
                      if self.fleet is not None else None),
            "cache": {"entries": len(self.cache), "root": self.cache.root},
            "engine": {
                "name": _engine_name(),
                "baseline_cache": {
                    "entries": len(self.baselines),
                    "hits": self._baseline_hits,
                    "misses": self._baseline_misses,
                    "evictions": self.baselines.evictions,
                },
                "snapshot_cache": dict(self._snapshot_stats),
            },
            "counters": counters,
        }


def run(config: ServeConfig) -> int:
    """Blocking entry point behind ``repro-smm serve``."""

    async def _amain() -> None:
        daemon = ServeDaemon(config)
        await daemon.start()
        print(f"serve: listening on {config.resolved_socket()}",
              file=sys.stderr, flush=True)
        await daemon.wait_stopped()

    asyncio.run(_amain())
    return 0
