"""The sweep-serving daemon: accept, dedup, shard, cache, survive.

``ServeDaemon`` is the long-lived composition of the package's parts:
an asyncio server (unix socket + optional TCP) feeding a supervised
worker pool through a durable queue, with a content-addressed cache in
front.  The life of a submitted cell:

1. **Quarantine check** — a digest the circuit breaker has tripped on
   answers immediately with its quarantine record; it never reaches the
   pool again until the operator clears the state directory.
2. **Cache probe** — a verified cache entry answers immediately
   (``cached: true``); corruption is evicted and falls through to 4.
3. **Coalesce** — if the digest is already in flight, the submission
   becomes one more waiter on the existing job (``coalesced: true``):
   a thousand identical requests cost one simulation.
4. **Accept** — the job is fsync'd to the durable queue *before* the
   client hears "accepted", then enqueued to the pool.  If accepting
   would push outstanding work past ``max_pending``, the whole submit
   is refused with ``saturated`` + ``retry_after`` instead (bounded
   queues: the daemon sheds load, it does not fall over).

Results flow back through :meth:`_on_result`: success writes the cache
entry, then the ``done`` record (write-then-ack: a crash between the
two replays the job, finds the cache entry, and completes it without
recompute — at-least-once execution, exactly-once effect).  An
infrastructure failure (worker death, watchdog, lost heartbeat)
requeues the attempt with the *same seed* — cells are deterministic, so
a retried kill is byte-identical to an uninterrupted run.  A cell that
keeps poisoning workers trips the circuit breaker after
``max_attempts`` and is durably quarantined rather than allowed to
crash-loop the pool.

``kill -9`` of the daemon is a designed-for event, not an error path:
the lock dies with the process, the next boot replays the queue journal,
completes anything the cache already holds, and re-runs the rest.
SIGTERM instead drains gracefully: stop accepting, finish in-flight
work, compact the journal, release everything.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.runx.lock import SingleWriterLock
from repro.runx.spec import CellSpec
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.pool import Outcome, WorkOrder, WorkerPool
from repro.serve.queue import DurableQueue

__all__ = ["ServeConfig", "ServeDaemon", "run"]

log = logging.getLogger(__name__)


def _engine_name() -> str:
    """The rate engine workers will run (``py``/``vec``), for status
    output; an unusable ``$REPRO_ENGINE`` is reported, not raised."""
    from repro.simx.rate import SimulationError, current_engine

    try:
        return current_engine()
    except SimulationError as exc:
        return f"invalid ({exc})"


@dataclass
class ServeConfig:
    """Everything the daemon needs to know, CLI-shaped."""

    state_dir: str = "serve-state"
    socket_path: Optional[str] = None  # default: <state_dir>/serve.sock
    tcp: Optional[Tuple[str, int]] = None
    workers: int = 2
    timeout_s: Optional[float] = 300.0
    hb_timeout_s: float = 10.0
    max_attempts: int = 3
    max_pending: int = 256
    restart_backoff_s: float = 0.1
    max_backoff_s: float = 5.0
    #: crude per-cell cost estimate behind ``retry_after`` hints.
    est_cell_s: float = 2.0

    def resolved_socket(self) -> str:
        return self.socket_path or os.path.join(self.state_dir, "serve.sock")


class _Job:
    """One in-flight digest and everyone waiting on it."""

    __slots__ = ("digest", "spec", "failures", "waiters", "order")

    def __init__(self, digest: str, spec: CellSpec):
        self.digest = digest
        self.spec = spec
        self.failures = 0  # infra-failed attempts so far
        self.waiters: List[asyncio.Future] = []
        self.order: Optional[WorkOrder] = None


class ServeDaemon:
    """See the module docstring; one instance per state directory."""

    def __init__(self, config: ServeConfig,
                 metrics: Optional[MetricsRegistry] = None):
        from repro.obs.attr.baseline import BaselineStore

        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Daemon-lifetime pool of zero-SMI baseline profiles.  Workers
        #: return every baseline they compute (Outcome.baselines); the
        #: daemon ships the accumulated set back out with each
        #: attribution job, so one (bench, class, shape, seed) config
        #: pays for its baseline once per daemon, not once per cell.
        self.baselines = BaselineStore()
        self._baseline_hits = 0
        self._baseline_misses = 0
        #: Aggregated warm-prefix cache tallies from the worker pool
        #: (repro.runx.forkshare).  Unlike baselines, the warm prefixes
        #: themselves are live simulations and cannot cross process
        #: boundaries — each workproc keeps its own store; the daemon
        #: only sums the accounting for ``repro-smm status``.
        self._snapshot_stats = {"hits": 0, "misses": 0,
                                "evictions": 0, "forks": 0}
        self._lock = SingleWriterLock(
            os.path.join(config.state_dir, "daemon.lock"))
        self.cache: Optional[ResultCache] = None
        self.queue_journal: Optional[DurableQueue] = None
        self.pool: Optional[WorkerPool] = None
        self._jobs_q: "asyncio.Queue[WorkOrder]" = asyncio.Queue()
        self._inflight: Dict[str, _Job] = {}
        self._quarantined: Dict[str, Dict[str, Any]] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started_monotonic = 0.0
        m = self.metrics
        self._c_submits = m.counter(
            "serve.submits", "submit requests handled")
        self._c_accepted = m.counter(
            "serve.jobs.accepted", "jobs durably accepted")
        self._c_completed = m.counter(
            "serve.jobs.completed", "jobs completed ok")
        self._c_failed = m.counter(
            "serve.jobs.failed", "jobs terminally failed (e.g. in-sim)")
        self._c_quarantined = m.counter(
            "serve.jobs.quarantined", "jobs circuit-broken after "
            "poisoning the pool repeatedly")
        self._c_requeued = m.counter(
            "serve.jobs.requeued", "attempts requeued after an "
            "infrastructure failure")
        self._c_replayed = m.counter(
            "serve.jobs.replayed", "jobs recovered from the durable "
            "queue at boot")
        self._c_coalesced = m.counter(
            "serve.coalesced", "submissions folded onto an in-flight "
            "identical job")
        self._c_saturated = m.counter(
            "serve.rejected.saturated", "submits refused with retry_after "
            "because the queue was full")
        self._c_rej_drain = m.counter(
            "serve.rejected.draining", "submits refused during drain")
        self._c_conns = m.counter(
            "serve.connections", "client connections accepted")

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        os.makedirs(cfg.state_dir, exist_ok=True)
        self._lock.acquire()  # LockHeldError if another daemon owns the dir
        self.cache = ResultCache(
            os.path.join(cfg.state_dir, "cache"), metrics=self.metrics)
        self.queue_journal = DurableQueue(
            os.path.join(cfg.state_dir, "queue.jsonl"))
        state = self.queue_journal.replay()
        self._quarantined = dict(state.quarantined)
        self.queue_journal.compact(state)
        self.pool = WorkerPool(
            self._jobs_q, self._on_result, size=cfg.workers,
            timeout_s=cfg.timeout_s, hb_timeout_s=cfg.hb_timeout_s,
            restart_backoff_s=cfg.restart_backoff_s,
            max_backoff_s=cfg.max_backoff_s, metrics=self.metrics,
            baseline_source=self._baselines_for,
        )
        self._replay_pending(state.pending)
        await self.pool.start()
        sock = cfg.resolved_socket()
        if os.path.exists(sock):
            # We hold the state-dir lock, so a leftover socket is from a
            # dead daemon: safe to clear.
            os.unlink(sock)
        self._servers.append(
            await asyncio.start_unix_server(
                self._handle_conn, path=sock, limit=protocol.MAX_LINE))
        if cfg.tcp is not None:
            host, port = cfg.tcp
            self._servers.append(
                await asyncio.start_server(
                    self._handle_conn, host=host, port=port,
                    limit=protocol.MAX_LINE))
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain()))
        self._started_monotonic = time.monotonic()
        log.info("serving on %s (%d workers, %d jobs replayed)",
                 sock, cfg.workers, len(state.pending))

    def _replay_pending(self, pending: Dict[str, Dict[str, Any]]) -> None:
        """Boot-time recovery: every accepted-but-unfinished job either
        completes from the cache (the crash hit between cache write and
        journal ack) or re-enters the queue."""
        assert self.cache is not None and self.queue_journal is not None
        for digest, spec_rec in pending.items():
            try:
                spec = CellSpec.from_record(spec_rec)
            except (KeyError, TypeError, ValueError):
                log.warning("replay: dropping malformed job %s", digest)
                self.queue_journal.record_failed(
                    digest, "malformed spec in queue journal")
                continue
            if self.cache.get(spec) is not None:
                self.queue_journal.record_done(digest)
                continue
            job = _Job(digest, spec)
            job.order = WorkOrder(digest, spec.to_record(), spec.base_seed)
            self._inflight[digest] = job
            self._idle.clear()
            self._jobs_q.put_nowait(job.order)
            self._c_replayed.inc()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish what is accepted,
        compact, release.  Idempotent; SIGTERM/SIGINT and the ``drain``
        op all land here."""
        if self._draining:
            return
        self._draining = True
        log.info("drain: %d jobs in flight", len(self._inflight))
        await self._idle.wait()
        if self.pool is not None:
            await self.pool.stop()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []
        if self.queue_journal is not None:
            state = self.queue_journal.replay()
            self.queue_journal.compact(state)
        sock = self.config.resolved_socket()
        try:
            os.unlink(sock)
        except OSError:
            pass
        self._lock.release()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling --------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._c_conns.inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, protocol.error_reply(
                        protocol.E_TOO_LARGE,
                        f"request line exceeds {protocol.MAX_LINE} bytes"))
                    break
                if not line:
                    break
                try:
                    req = protocol.decode(line)
                except ValueError as exc:
                    await self._reply(writer, protocol.error_reply(
                        protocol.E_BAD_REQUEST, f"unparsable request: {exc}"))
                    continue
                await self._reply(writer, await self._dispatch(req))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing owed
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, rep: Dict) -> None:
        writer.write(protocol.encode(rep))
        await writer.drain()

    async def _dispatch(self, req: Dict[str, Any]) -> Dict[str, Any]:
        op = req.get("op")
        if op == "submit":
            return await self._op_submit(req)
        if op == "status":
            return self._op_status()
        if op == "metrics":
            return {"ok": True, "prom": self.metrics.render_prom()}
        if op == "drain":
            asyncio.ensure_future(self.drain())
            return {"ok": True, "draining": True}
        return protocol.error_reply(
            protocol.E_BAD_REQUEST, f"unknown op {op!r}")

    # -- submit ---------------------------------------------------------------
    async def _op_submit(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self._c_submits.inc()
        if self._draining:
            self._c_rej_drain.inc()
            return protocol.error_reply(
                protocol.E_DRAINING, "daemon is draining; resubmit to its "
                "successor")
        raw_cells = req.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, "submit needs a non-empty 'cells' "
                "list of CellSpec records")
        try:
            specs = [CellSpec.from_record(rec) for rec in raw_cells]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            return protocol.error_reply(
                protocol.E_BAD_REQUEST, f"malformed cell spec: {exc}")
        assert self.cache is not None and self.queue_journal is not None

        # Classify every cell before accepting any: backpressure is
        # all-or-nothing so a refused submit has no side effects.
        entries: List[Dict[str, Any]] = []
        to_wait: List[Tuple[Dict[str, Any], asyncio.Future]] = []
        new_jobs: List[Tuple[CellSpec, str]] = []
        seen_new: Dict[str, _Job] = {}
        stats = {"cached": 0, "coalesced": 0, "submitted": 0,
                 "quarantined": 0}
        for spec in specs:
            digest = spec.digest()
            entry: Dict[str, Any] = {"id": spec.id, "digest": digest}
            if digest in self._quarantined:
                qrec = self._quarantined[digest]
                entry.update(status="quarantined",
                             error=qrec.get("error", "quarantined"),
                             attempts=qrec.get("attempts"))
                stats["quarantined"] += 1
                entries.append(entry)
                continue
            job = self._inflight.get(digest) or seen_new.get(digest)
            if job is None:
                value = self.cache.get(spec)
                if value is not None:
                    entry.update(status="ok", value=value, cached=True)
                    stats["cached"] += 1
                    entries.append(entry)
                    continue
                job = _Job(digest, spec)
                seen_new[digest] = job
                new_jobs.append((spec, digest))
                stats["submitted"] += 1
            else:
                entry["coalesced"] = True
                stats["coalesced"] += 1
                self._c_coalesced.inc()
            if req.get("wait", True):
                fut = asyncio.get_running_loop().create_future()
                job.waiters.append(fut)
                to_wait.append((entry, fut))
            entries.append(entry)

        outstanding = len(self._inflight) + len(new_jobs)
        if new_jobs and outstanding > self.config.max_pending:
            self._c_saturated.inc()
            retry = (outstanding * self.config.est_cell_s
                     / max(1, self.config.workers))
            return protocol.error_reply(
                protocol.E_SATURATED,
                f"{len(self._inflight)} jobs outstanding (max "
                f"{self.config.max_pending}); retry later",
                retry_after=retry)

        for spec, digest in new_jobs:
            job = seen_new[digest]
            # Durability first: the journal record is fsync'd before the
            # job exists anywhere volatile.
            self.queue_journal.record_job(digest, spec.to_record())
            job.order = WorkOrder(digest, spec.to_record(), spec.base_seed)
            self._inflight[digest] = job
            self._idle.clear()
            self._jobs_q.put_nowait(job.order)
            self._c_accepted.inc()

        if not req.get("wait", True):
            return {"ok": True, "stats": stats,
                    "pending": len(self._inflight)}
        for entry, fut in to_wait:
            entry.update(await fut)
        return {"ok": True, "cells": entries, "stats": stats}

    def _baselines_for(self, spec_rec: Dict[str, Any]) -> Optional[list]:
        """Pool dispatch hook: seed an attribution job with every
        baseline record the daemon has accumulated.  Non-attr cells get
        nothing — they could not use the records and the job line stays
        small."""
        if not (spec_rec.get("params") or {}).get("attr"):
            return None
        return self.baselines.export_all() or None

    # -- result flow ----------------------------------------------------------
    async def _on_result(self, order: WorkOrder, outcome: Outcome) -> None:
        # Harvest baselines before any terminal-state checks: even a
        # result that raced a quarantine carries profiles worth keeping.
        if outcome.baselines:
            self.baselines.absorb(outcome.baselines)
        if outcome.baseline_stats:
            self._baseline_hits += int(outcome.baseline_stats.get("hits", 0))
            self._baseline_misses += int(
                outcome.baseline_stats.get("misses", 0))
        if outcome.snapshot_stats:
            for k in self._snapshot_stats:
                self._snapshot_stats[k] += int(
                    outcome.snapshot_stats.get(k, 0))
        job = self._inflight.get(order.digest)
        if job is None or job.order is not order:
            return  # already terminal (e.g. quarantine raced a kill)
        assert self.cache is not None and self.queue_journal is not None
        if outcome.ok:
            # Cache write *then* journal ack: a crash between the two
            # replays the job and completes it from the cache.
            self.cache.put(job.spec, outcome.value,
                           provenance={"attempts": job.failures + 1})
            self.queue_journal.record_done(order.digest)
            self._c_completed.inc()
            self._resolve(job, {"status": "ok", "value": outcome.value,
                                "cached": False,
                                "attempts": job.failures + 1})
            return
        if outcome.failed_in_sim:
            self.queue_journal.record_failed(order.digest, outcome.error or "")
            self._c_failed.inc()
            res = {"status": "failed-in-sim", "error": outcome.error,
                   "attempts": job.failures + 1}
            if outcome.fault is not None:
                res["fault"] = outcome.fault
            self._resolve(job, res)
            return
        job.failures += 1
        if job.failures >= self.config.max_attempts:
            self.queue_journal.record_quarantine(
                order.digest, job.failures, outcome.error or "")
            self._quarantined[order.digest] = {
                "kind": "quarantine", "id": order.digest,
                "attempts": job.failures, "error": outcome.error or ""}
            self._c_quarantined.inc()
            log.warning("quarantined %s after %d poisoned attempts: %s",
                        order.digest, job.failures, outcome.error)
            self._resolve(job, {"status": "quarantined",
                                "error": outcome.error,
                                "attempts": job.failures})
            return
        # Infrastructure failure: requeue with the SAME seed — cells are
        # deterministic, so the eventual value is byte-identical to a
        # run that was never interrupted.
        order.attempt = job.failures
        self._c_requeued.inc()
        log.info("requeue %s (attempt %d): %s",
                 order.digest, order.attempt, outcome.error)
        self._jobs_q.put_nowait(order)

    def _resolve(self, job: _Job, result: Dict[str, Any]) -> None:
        self._inflight.pop(job.digest, None)
        if job.order is not None:
            job.order.dead = True
        for fut in job.waiters:
            if not fut.done():
                fut.set_result(result)
        job.waiters = []
        if not self._inflight:
            self._idle.set()

    # -- status ---------------------------------------------------------------
    def _op_status(self) -> Dict[str, Any]:
        assert self.cache is not None
        counters = {
            name: inst.value
            for name, inst in (
                (n, self.metrics.get(n)) for n in self.metrics.names())
            if name.startswith("serve.") and hasattr(inst, "value")
        }
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "inflight": len(self._inflight),
            "queued": self._jobs_q.qsize(),
            "quarantined": len(self._quarantined),
            "workers": self.pool.snapshot() if self.pool is not None else [],
            "cache": {"entries": len(self.cache), "root": self.cache.root},
            "engine": {
                "name": _engine_name(),
                "baseline_cache": {
                    "entries": len(self.baselines),
                    "hits": self._baseline_hits,
                    "misses": self._baseline_misses,
                    "evictions": self.baselines.evictions,
                },
                "snapshot_cache": dict(self._snapshot_stats),
            },
            "counters": counters,
        }


def run(config: ServeConfig) -> int:
    """Blocking entry point behind ``repro-smm serve``."""

    async def _amain() -> None:
        daemon = ServeDaemon(config)
        await daemon.start()
        print(f"serve: listening on {config.resolved_socket()}",
              file=sys.stderr, flush=True)
        await daemon.wait_stopped()

    asyncio.run(_amain())
    return 0
