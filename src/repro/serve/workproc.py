"""The long-lived serve worker: ``python -m repro.serve.workproc``.

Where `repro.runx.worker` is one-shot (one subprocess per cell attempt),
a serve worker is a loop: the supervising pool keeps it alive across
jobs and only pays interpreter start-up on (re)spawn.  The protocol is
line-delimited JSON, mirroring the daemon's own wire format:

stdin  ← ``{"kind": "job", "id": ..., "spec": {...CellSpec...},
            "seed": ..., "attempt": ...}``
stdout → ``{"kind": "ready", "pid": ...}`` once at start,
         ``{"kind": "hb", "id": ...}`` every beat *while a job runs*,
         ``{"kind": "result", "id": ..., "ok": ...}`` per job.

Heartbeats are the supervisor's liveness signal: a worker that stops
beating mid-job is frozen (not merely slow — slow cells keep beating)
and gets killed and respawned.  EOF on stdin is the graceful-shutdown
signal; the worker finishes nothing (the pool only closes stdin when
the worker is idle) and exits 0.

Chaos composes here exactly as it does for runx workers: each job
consults ``$REPRO_CHAOS_PLAN`` before executing, so the same
kill/hang/corrupt/flake drills that prove the sweep runner prove the
daemon's supervision (``scripts/chaos_smoke.py --serve``).  A fault
that kills or wedges the process is *supposed* to — surviving that is
the pool's job, not ours.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import traceback
from typing import Any, Dict, Optional

__all__ = ["HEARTBEAT_S", "spawn_argv", "main"]

#: Seconds between heartbeats while a job is executing.  The pool's
#: heartbeat timeout must be a comfortable multiple of this.
HEARTBEAT_S = 0.5


def spawn_argv() -> list:
    """The argv that launches one of these workers — shared by the
    daemon's local pool and the remote fleet agent, so both drive the
    exact same worker implementation (one protocol, one set of chaos
    hooks, byte-identical cells wherever they run)."""
    return [sys.executable, "-m", "repro.serve.workproc"]


class _Emitter:
    """Serialized line writer: heartbeat thread and main loop share
    stdout, so every line must go out whole."""

    def __init__(self, stream):
        self._stream = stream
        self._lock = threading.Lock()

    def emit(self, rec: Dict[str, Any]) -> None:
        line = json.dumps(rec, separators=(",", ":")) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()


def _heartbeat(emitter: _Emitter, active: Dict[str, Optional[str]],
               stop: threading.Event, interval_s: float) -> None:
    while not stop.wait(interval_s):
        job_id = active.get("id")
        if job_id is not None:
            try:
                emitter.emit({"kind": "hb", "id": job_id})
            except (OSError, ValueError):  # pragma: no cover — pipe gone
                return


def _baseline_stats() -> tuple:
    """Current (hits, misses) of the process-wide baseline store, without
    importing it into jobs that never touch attribution."""
    mod = sys.modules.get("repro.obs.attr.baseline")
    if mod is None:
        return 0, 0
    store = mod.global_store()
    return store.hits, store.misses


def _attach_baselines(result: Dict[str, Any], h0: int, m0: int) -> None:
    """Add freshly computed baseline records and this job's hit/miss
    delta (the store is long-lived here, unlike a one-shot runx worker,
    so the tally must be differenced per job)."""
    mod = sys.modules.get("repro.obs.attr.baseline")
    if mod is None:
        return
    store = mod.global_store()
    new = store.drain_new()
    if new:
        result["baselines"] = new
    dh, dm = store.hits - h0, store.misses - m0
    if dh or dm:
        result["baseline_stats"] = {"hits": dh, "misses": dm}


def _snapshot_stats() -> Dict[str, int]:
    """Current warm-prefix cache tally (repro.runx.forkshare), without
    importing it into jobs that never touch the fork path.  The store —
    and the live simulations it holds — survives across this worker's
    jobs, so an interval sweep dispatched to one worker forks the same
    warm prefix job after job."""
    mod = sys.modules.get("repro.runx.forkshare")
    if mod is None:
        return {}
    return mod.global_store().stats()


def _attach_snapshot_stats(result: Dict[str, Any],
                           s0: Dict[str, int]) -> None:
    """Add this job's warm-prefix cache delta (hits/misses/evictions/
    forks) to the result line."""
    s1 = _snapshot_stats()
    if not s1:
        return
    delta = {k: s1[k] - s0.get(k, 0)
             for k in ("hits", "misses", "evictions", "forks")}
    if any(delta.values()):
        result["snapshot_stats"] = delta


def _run_job(req: Dict[str, Any], emitter: _Emitter) -> None:
    job_id = req.get("id", "?")
    spec = req.get("spec") or {}
    try:
        seed = int(req["seed"])
        attempt = int(req.get("attempt", 0))
        fn = spec["fn"]
    except (KeyError, TypeError, ValueError) as exc:
        emitter.emit({"kind": "result", "id": job_id, "ok": False,
                      "error": f"bad job request: {exc}"})
        return

    from repro.runx.chaos import FaultPlan, apply_fault

    plan = FaultPlan.from_env()
    if plan is not None:
        rule = plan.fault_for(spec.get("id", job_id), attempt)
        if rule is not None:
            apply_fault(rule)  # kill never returns; others raise SystemExit

    from repro.faults import FaultedRunError
    from repro.runx.cells import run_cell

    # Shared-baseline seeding: the daemon attaches every baseline record
    # its sweep history holds; attr cells then skip the zero-SMI replay
    # (repro.obs.attr.baseline).  New records and the hit/miss tally ride
    # back on the result line.
    if req.get("baselines"):
        from repro.obs.attr.baseline import global_store

        global_store().absorb(req["baselines"])
    h0, m0 = _baseline_stats()
    s0 = _snapshot_stats()

    try:
        value = run_cell(fn, spec.get("params", {}), seed)
        result = {"kind": "result", "id": job_id, "ok": True,
                  "value": value}
        _attach_baselines(result, h0, m0)
        _attach_snapshot_stats(result, s0)
        emitter.emit(result)
    except FaultedRunError as exc:
        # Deterministic in-sim death: terminal, never worth a retry.
        emitter.emit({"kind": "result", "id": job_id, "ok": False,
                      "failed_in_sim": True, "error": str(exc),
                      "fault": {"events": exc.events}})
    except Exception:
        emitter.emit({"kind": "result", "id": job_id, "ok": False,
                      "error": traceback.format_exc(limit=8)})


def main() -> int:
    emitter = _Emitter(sys.stdout)
    active: Dict[str, Optional[str]] = {"id": None}
    stop = threading.Event()
    interval = float(os.environ.get("REPRO_SERVE_HB", HEARTBEAT_S))
    beater = threading.Thread(
        target=_heartbeat, args=(emitter, active, stop, interval),
        name="serve-hb", daemon=True)
    beater.start()
    emitter.emit({"kind": "ready", "pid": os.getpid()})
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            req = json.loads(line)
        except ValueError:
            print("serve worker: unparsable job line", file=sys.stderr)
            continue
        if req.get("kind") == "shutdown":
            break
        if req.get("kind") != "job":
            continue
        active["id"] = str(req.get("id", "?"))
        try:
            _run_job(req, emitter)
        finally:
            active["id"] = None
    stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    sys.exit(main())
