"""The content-addressed result cache: self-healing, never-trusting.

A cell's payload is a pure function of its :class:`~repro.runx.spec.CellSpec`
digest, so the cache is a plain directory keyed by digest:
``<root>/<digest[:2]>/<digest>.json``.  What makes it production-grade
is that a read **never trusts the bytes on disk**; every entry is an
envelope that is re-verified layer by layer:

1. it must parse as JSON (truncation, torn writes),
2. its ``schema`` must match (old or foreign envelopes),
3. its recorded spec must re-digest to the filename digest
   (schema-mismatched or mislabeled payloads),
4. the payload must re-hash to the recorded ``value_sha256``
   (bit flips anywhere in the value),
5. its ``calibration_sha256`` must match the running code's calibration
   constants (a cache produced by a different model is not *corrupt*,
   but it is *stale* — its numbers are not this code's numbers).

Any failure evicts the entry (counted in ``serve.cache.corrupt`` or
``serve.cache.stale``) and reports a miss, so the daemon transparently
recomputes instead of serving garbage.  Writes go through
:func:`repro.obs.atomic.atomic_write_text`, so a crash mid-``put``
leaves either the old entry or the new one, never a truncation — but
the read-side verification stands on its own, catching even damage the
write path could never cause (disk corruption, manual tampering).

Every envelope also carries provenance (package version, python,
creation time) so a served result can say where its bytes came from —
the same Hunold & Carpen-Amarie argument the run manifests make.

The store is **bounded**: ``REPRO_SERVE_CACHE_MAX`` (or the
``max_entries`` argument) caps the entry count with LRU eviction,
mirroring the `BaselineStore`/`SnapshotStore` pattern — recency is
tracked in an in-memory index (seeded from file mtimes at boot, bumped
on every verified hit) and overflow evicts the coldest entries, counted
in ``serve.cache.evictions``.  The default is unbounded: evicting a
deterministic result only ever costs a recompute, so the cap is an
operator disk-budget knob, not a correctness feature.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.obs.atomic import atomic_write_text
from repro.runx.spec import CellSpec

__all__ = ["CACHE_SCHEMA", "ResultCache", "value_sha256", "calibration_sha256"]

log = logging.getLogger(__name__)

#: Bumped whenever the envelope layout changes incompatibly; entries
#: with any other schema are treated as corrupt and recomputed.
CACHE_SCHEMA = 1

#: ``REPRO_SERVE_CACHE_MAX`` ≤ 0 (the default) means unbounded.
DEFAULT_CACHE_MAX = 0


def value_sha256(value: Any) -> str:
    """Canonical content hash of a JSON-able payload."""
    blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def calibration_sha256() -> str:
    """Content hash of the running code's calibration constants — the
    provenance key that keeps a cache from outliving the model that
    filled it."""
    from repro.obs.manifest import calibration_constants

    return value_sha256(calibration_constants())


class ResultCache:
    """Persistent digest-keyed result store with read-time verification."""

    def __init__(self, root: str, metrics=None,
                 max_entries: Optional[int] = None):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._calibration = calibration_sha256()
        if max_entries is None:
            max_entries = int(os.environ.get(
                "REPRO_SERVE_CACHE_MAX", DEFAULT_CACHE_MAX))
        #: LRU cap on entry count; <= 0 disables eviction.
        self.max_entries = max_entries
        self.evictions = 0
        #: digest -> True in least-recently-used-first order, seeded
        #: from on-disk mtimes so the LRU survives daemon restarts.
        self._lru: "OrderedDict[str, bool]" = self._scan()
        if metrics is not None:
            self._c_hits = metrics.counter(
                "serve.cache.hits", "verified cache reads served")
            self._c_misses = metrics.counter(
                "serve.cache.misses", "cache reads that found no entry")
            self._c_corrupt = metrics.counter(
                "serve.cache.corrupt",
                "entries evicted because verification failed")
            self._c_stale = metrics.counter(
                "serve.cache.stale",
                "entries evicted because calibration constants changed")
            self._c_writes = metrics.counter(
                "serve.cache.writes", "entries written")
            self._c_evictions = metrics.counter(
                "serve.cache.evictions",
                "entries LRU-evicted past REPRO_SERVE_CACHE_MAX")
        else:
            self._c_hits = self._c_misses = self._c_corrupt = None
            self._c_stale = self._c_writes = self._c_evictions = None

    # -- paths ----------------------------------------------------------------
    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".json")

    def __len__(self) -> int:
        return len(self._lru)

    def _scan(self) -> "OrderedDict[str, bool]":
        """Seed the LRU index from disk, coldest (oldest mtime) first."""
        found = []
        for shard in os.listdir(self.root):
            sub = os.path.join(self.root, shard)
            if not os.path.isdir(sub):
                continue
            for name in os.listdir(sub):
                if not name.endswith(".json"):
                    continue
                try:
                    mtime = os.path.getmtime(os.path.join(sub, name))
                except OSError:
                    continue
                found.append((mtime, name[:-len(".json")]))
        found.sort()
        return OrderedDict((digest, True) for _, digest in found)

    def _touch(self, digest: str) -> None:
        self._lru[digest] = True
        self._lru.move_to_end(digest)

    def _evict_over_cap(self) -> None:
        if self.max_entries <= 0:
            return
        while len(self._lru) > self.max_entries:
            coldest, _ = self._lru.popitem(last=False)
            self._evict(self.path_for(coldest))
            self.evictions += 1
            self._count(self._c_evictions)

    # -- read -----------------------------------------------------------------
    def get(self, spec: CellSpec) -> Optional[Dict[str, Any]]:
        """The verified payload for ``spec``, or ``None`` (miss).

        A failed verification evicts the entry and reports a miss — the
        caller recomputes, and the recompute's ``put`` heals the cache.
        """
        value, _ = self.get_with_provenance(spec)
        return value

    def get_with_provenance(
        self, spec: CellSpec,
    ) -> Tuple[Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
        digest = spec.digest()
        path = self.path_for(digest)
        try:
            with open(path, encoding="utf-8") as fp:
                raw = fp.read()
        except FileNotFoundError:
            self._lru.pop(digest, None)
            self._count(self._c_misses)
            return None, None
        except OSError as exc:  # pragma: no cover — I/O error mid-read
            log.warning("cache %s: unreadable (%s)", path, exc)
            self._count(self._c_misses)
            return None, None
        why = self._verify(raw, digest)
        if why is not None:
            kind = "stale" if why == "calibration drift" else "corrupt"
            log.warning("cache %s: %s (%s); evicting", path, kind, why)
            self._evict(path)
            self._lru.pop(digest, None)
            self._count(self._c_stale if kind == "stale" else self._c_corrupt)
            self._count(self._c_misses)
            return None, None
        env = json.loads(raw)
        self._touch(digest)
        self._count(self._c_hits)
        return env["value"], env.get("provenance")

    def _verify(self, raw: str, digest: str) -> Optional[str]:
        """``None`` if the envelope is trustworthy, else the reason."""
        try:
            env = json.loads(raw)
        except ValueError:
            return "unparsable envelope (truncated or torn)"
        if not isinstance(env, dict):
            return "envelope is not an object"
        if env.get("schema") != CACHE_SCHEMA:
            return f"schema mismatch ({env.get('schema')!r} != {CACHE_SCHEMA})"
        spec_rec = env.get("spec")
        if not isinstance(spec_rec, dict):
            return "missing spec record"
        try:
            rebuilt = CellSpec.from_record(spec_rec).digest()
        except (KeyError, TypeError, ValueError):
            return "malformed spec record"
        if rebuilt != digest:
            return f"spec re-digest mismatch ({rebuilt} != {digest})"
        if "value" not in env:
            return "missing value"
        if value_sha256(env["value"]) != env.get("value_sha256"):
            return "payload checksum mismatch (bit flip?)"
        if env.get("calibration_sha256") != self._calibration:
            return "calibration drift"
        return None

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover — already gone / perms
            pass

    # -- write ----------------------------------------------------------------
    def put(self, spec: CellSpec, value: Dict[str, Any],
            provenance: Optional[Dict[str, Any]] = None) -> str:
        """Store ``value`` for ``spec``; returns the entry path."""
        import repro

        digest = spec.digest()
        path = self.path_for(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        env = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "spec": spec.to_record(),
            "value": value,
            "value_sha256": value_sha256(value),
            "calibration_sha256": self._calibration,
            "provenance": {
                "version": repro.__version__,
                "created_unix": round(time.time(), 3),
                **(provenance or {}),
            },
        }
        atomic_write_text(
            path, lambda fp: json.dump(env, fp, separators=(",", ":")))
        self._touch(digest)
        self._evict_over_cap()
        self._count(self._c_writes)
        return path

    @staticmethod
    def _count(counter) -> None:
        if counter is not None:
            counter.inc()
