"""CPU topology: sockets, physical cores, logical CPUs, and hotplug.

Reproduces the experimental control used in §IV.A of the paper:

    "To vary the logical threads per core, we used the Linux *sysfs*
    interface to selectively offline specific logical cores ...  We tested
    1–4 logical processor cores with all HTT siblings offlined, then
    selectively onlined the HTT siblings to test 5–8 logical processor
    cores."

:meth:`Topology.set_logical_cpus` implements exactly that onlining order:
``k <= cores`` onlines one sibling on each of the first ``k`` physical
cores (similar to HTT disabled); ``k > cores`` additionally onlines
``k - cores`` HTT siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.machine.cache import CacheHierarchy, CacheSpec, nehalem_hierarchy, paper_r410_hierarchy

__all__ = ["MachineSpec", "LogicalCpuState", "PhysicalCore", "Topology", "WYEAST_SPEC", "R410_SPEC"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one node's hardware."""

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    base_hz: float  # work units (useful ops) per second per logical cpu at efficiency 1
    memory_bytes: int
    cache_levels: Sequence[CacheSpec] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and core")
        if self.threads_per_core not in (1, 2):
            raise ValueError("threads_per_core must be 1 or 2 (HTT)")
        if self.base_hz <= 0:
            raise ValueError("base_hz must be positive")

    @property
    def n_physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def n_logical_cpus(self) -> int:
        return self.n_physical_cores * self.threads_per_core

    def hierarchy(self) -> CacheHierarchy:
        if self.cache_levels:
            return CacheHierarchy(self.cache_levels)
        return nehalem_hierarchy()


class LogicalCpuState:
    """Identity + hotplug state of one logical CPU.

    The *execution* model lives in :class:`repro.machine.cpu.LogicalCpu`;
    this class is the pure-topology view so topology logic is testable
    without an engine.
    """

    __slots__ = ("index", "core", "thread_slot", "online")

    def __init__(self, index: int, core: "PhysicalCore", thread_slot: int):
        self.index = index
        self.core = core
        self.thread_slot = thread_slot  # 0 = primary, 1 = HTT sibling
        self.online = True

    @property
    def sibling(self) -> Optional["LogicalCpuState"]:
        """The other logical CPU on the same physical core (None if SMT=1)."""
        for s in self.core.threads:
            if s is not self:
                return s
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<cpu{self.index} core{self.core.index} slot{self.thread_slot} {'on' if self.online else 'off'}>"


class PhysicalCore:
    """A physical core holding one or two logical CPUs (HTT siblings)."""

    __slots__ = ("index", "socket", "threads")

    def __init__(self, index: int, socket: int):
        self.index = index
        self.socket = socket
        self.threads: List[LogicalCpuState] = []

    @property
    def online_threads(self) -> List[LogicalCpuState]:
        return [t for t in self.threads if t.online]


class Topology:
    """All cores/CPUs of a node with Linux-style hotplug semantics.

    CPU numbering follows Linux on Nehalem: logical CPUs 0..C-1 are the
    first siblings of cores 0..C-1, and CPUs C..2C-1 are their HTT
    siblings (cpu ``i`` and ``i+C`` share a core).  CPU 0 cannot be
    offlined (as on stock Linux).
    """

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.cores: List[PhysicalCore] = []
        self.cpus: List[LogicalCpuState] = []
        ncores = spec.n_physical_cores
        for c in range(ncores):
            core = PhysicalCore(c, socket=c // spec.cores_per_socket)
            self.cores.append(core)
        # slot-0 threads first, then slot-1 (HTT) threads — Linux order.
        for slot in range(spec.threads_per_core):
            for c in range(ncores):
                cpu = LogicalCpuState(len(self.cpus), self.cores[c], slot)
                self.cores[c].threads.append(cpu)
                self.cpus.append(cpu)
        self._listeners = []

    # -- hotplug ---------------------------------------------------------
    def add_listener(self, fn) -> None:
        """``fn(cpu_state)`` called after any online/offline transition."""
        self._listeners.append(fn)

    def set_online(self, cpu_index: int, online: bool) -> None:
        """Online/offline one logical CPU (sysfs
        ``/sys/devices/system/cpu/cpuN/online``)."""
        if cpu_index == 0 and not online:
            raise ValueError("cpu0 cannot be offlined")
        cpu = self.cpus[cpu_index]
        if cpu.online == online:
            return
        cpu.online = online
        for fn in self._listeners:
            fn(cpu)

    def set_logical_cpus(self, k: int) -> None:
        """Configure exactly ``k`` online logical CPUs using the paper's
        onlining order (primaries first, then HTT siblings)."""
        if not (1 <= k <= self.spec.n_logical_cpus):
            raise ValueError(f"k must be in 1..{self.spec.n_logical_cpus}")
        # Desired online set: cpus [0..min(k,C)-1] plus siblings [C..C+max(0,k-C)-1].
        ncores = self.spec.n_physical_cores
        desired = set(range(min(k, ncores)))
        desired |= set(range(ncores, ncores + max(0, k - ncores)))
        for cpu in self.cpus:
            want = cpu.index in desired
            if cpu.online != want:
                if cpu.index == 0 and not want:
                    continue
                cpu.online = want
                for fn in self._listeners:
                    fn(cpu)

    def set_htt(self, enabled: bool) -> None:
        """BIOS-style HTT toggle: online/offline all slot-1 siblings."""
        for cpu in self.cpus:
            if cpu.thread_slot == 1:
                want = enabled
                if cpu.online != want:
                    cpu.online = want
                    for fn in self._listeners:
                        fn(cpu)

    # -- queries ---------------------------------------------------------
    @property
    def online_cpus(self) -> List[LogicalCpuState]:
        return [c for c in self.cpus if c.online]

    @property
    def n_online(self) -> int:
        return sum(1 for c in self.cpus if c.online)

    def htt_active(self) -> bool:
        """True if any physical core has two online siblings."""
        return any(len(core.online_threads) > 1 for core in self.cores)


# ---------------------------------------------------------------------------
# The paper's two machines.  base_hz values come from
# repro.core.calibration (fit to the paper's SMM-0 base times); the Wyeast
# rate is expressed in "useful ops" per second and is close to the chip's
# nominal 2.27 GHz.
# ---------------------------------------------------------------------------

#: Wyeast cluster node (§III.A): Xeon E5520 @ 2.27 GHz, 4C/8T, 8 MB cache, 12 GB.
WYEAST_SPEC = MachineSpec(
    name="wyeast-e5520",
    sockets=1,
    cores_per_socket=4,
    threads_per_core=2,
    base_hz=2.27e9,
    memory_bytes=12 << 30,
    cache_levels=(
        CacheSpec("L1d", 32 << 10, "core"),
        CacheSpec("L2", 256 << 10, "core"),
        CacheSpec("L3", 8 << 20, "socket"),
    ),
)

#: Dell R410 node (§IV.A): Xeon E5620, 4C/8T, paper-reported cache sizes, 12 GB.
R410_SPEC = MachineSpec(
    name="r410-e5620",
    sockets=1,
    cores_per_socket=4,
    threads_per_core=2,
    base_hz=2.4e9,
    memory_bytes=12 << 30,
    cache_levels=(
        CacheSpec("L1", 4 << 20, "core"),
        CacheSpec("L2", 8 << 20, "core"),
        CacheSpec("L3", 24 << 20, "socket"),
    ),
)
