"""Interrupt controller: priority, maskability, and SMM deferral.

Encodes the x86 interrupt taxonomy the paper leans on (§II.A, §II.C):

* **SMI** — highest priority, unmaskable, broadcast; routed straight to
  the SMM controller.  Nothing preempts SMM.
* **NMI** — unmaskable by the OS, but *cannot be delivered during SMM*;
  it pends and is handled at SMM exit.
* **Timer / device IRQs** — maskable by the OS; also pend during SMM.

The controller records per-interrupt delivery latency so tests and
benchmarks can demonstrate the paper's point that "other device
interrupts will only be handled after [SMM] has finished its work" — the
very effect that makes the OS timer interrupt studied by Beckman et al.
[12] itself a victim of SMI noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["IrqClass", "IrqRecord", "InterruptController"]


class IrqClass(IntEnum):
    """Interrupt classes in decreasing priority order."""

    SMI = 0
    NMI = 1
    TIMER = 2
    DEVICE = 3


@dataclass
class IrqRecord:
    """Bookkeeping for one delivered interrupt."""

    irq_class: IrqClass
    vector: int
    raised_at: int
    delivered_at: int = -1

    @property
    def latency_ns(self) -> int:
        return self.delivered_at - self.raised_at if self.delivered_at >= 0 else -1


@dataclass
class _Pending:
    record: IrqRecord
    payload: object


class InterruptController:
    """Per-node interrupt routing."""

    def __init__(self, node: "Node"):
        self.node = node
        self.engine = node.engine
        self._handlers: Dict[int, Callable[[IrqRecord, object], None]] = {}
        self._masked: set[int] = set()
        self._masked_pending: List[_Pending] = []
        self.history: List[IrqRecord] = []
        self.deferred_by_smm = 0

    # -- configuration ----------------------------------------------------
    def register(self, vector: int, handler: Callable[[IrqRecord, object], None]) -> None:
        """Install a handler for a vector.  One handler per vector."""
        self._handlers[vector] = handler

    def mask(self, vector: int) -> None:
        """OS-level masking.  Only TIMER/DEVICE interrupts honour masks;
        the mask set is consulted at delivery time."""
        self._masked.add(vector)

    def unmask(self, vector: int) -> None:
        self._masked.discard(vector)
        still_pending: List[_Pending] = []
        for p in self._masked_pending:
            if p.record.vector in self._masked:
                still_pending.append(p)
            else:
                self._route(p)
        self._masked_pending = still_pending

    # -- raising --------------------------------------------------------------
    def raise_irq(
        self,
        irq_class: IrqClass,
        vector: int = 0,
        payload: object = None,
        smi_duration_ns: Optional[int] = None,
    ) -> IrqRecord:
        """Assert an interrupt.  For ``IrqClass.SMI`` the payload is the
        handler residency (``smi_duration_ns`` required)."""
        rec = IrqRecord(irq_class, vector, raised_at=self.engine.now)
        if irq_class is IrqClass.SMI:
            if smi_duration_ns is None:
                raise ValueError("SMI requires smi_duration_ns")
            rec.delivered_at = self.engine.now  # SMIs are never deferred
            self.history.append(rec)
            self.node.smm.trigger(smi_duration_ns, source=f"irq{vector}")
            return rec
        if irq_class in (IrqClass.TIMER, IrqClass.DEVICE) and vector in self._masked:
            self._masked_pending.append(_Pending(rec, payload))
            self.history.append(rec)
            return rec
        pend = _Pending(rec, payload)
        if self.node.frozen:
            # NMI and IRQ alike pend until SMM exit: SMIs outrank them.
            self.deferred_by_smm += 1
            self.node.deliver(lambda: self._route(pend))
        else:
            self.engine.schedule(0, self._route, pend)
        self.history.append(rec)
        return rec

    def _route(self, pending: _Pending) -> None:
        rec = pending.record
        if rec.vector in self._masked and rec.irq_class in (IrqClass.TIMER, IrqClass.DEVICE):
            self._masked_pending.append(pending)
            return
        rec.delivered_at = self.engine.now
        tl = self.node.timeline
        if tl.enabled:
            tl.record(
                rec.delivered_at,
                "irq.deliver",
                self.node.name,
                irq_class=rec.irq_class.name,
                vector=rec.vector,
                latency_ns=rec.latency_ns,
            )
        handler = self._handlers.get(rec.vector)
        if handler is not None:
            handler(rec, pending.payload)

    # -- statistics --------------------------------------------------------
    def max_delivery_latency_ns(self, irq_class: Optional[IrqClass] = None) -> int:
        """Worst observed raise→deliver latency (−1 if nothing delivered)."""
        worst = -1
        for r in self.history:
            if irq_class is not None and r.irq_class is not irq_class:
                continue
            if r.delivered_at >= 0:
                worst = max(worst, r.latency_ns)
        return worst
