"""Logical-CPU execution: processor sharing + HTT coupling + SMM freeze.

Each online logical CPU serves the compute segments of the tasks placed on
it through a :class:`repro.simx.rate.RateExecutor`.  The rate assigned to
a task's current segment is::

    rate = gross_hz(cpu) / n_tasks_on_cpu * cache_efficiency(task)

where ``gross_hz`` implements Hyper-Threading coupling:

* 0 if the node is frozen in SMM, or the CPU is offline;
* ``base_hz`` if this CPU is the only busy sibling on its physical core;
* ``base_hz * htt_yield / 2`` if both siblings are busy — the pair
  together delivers ``htt_yield`` (in single-sibling units), split evenly.
  ``htt_yield`` is averaged over the workload profiles of every task on
  the two siblings, because the SMT benefit depends on the *mix* of
  co-scheduled instruction streams (§II.B).

``cache_efficiency`` comes from :class:`repro.machine.cache.CacheHierarchy`
using the working sets of tasks co-resident at each sharing level.

Rates are recomputed only at discrete transitions (see
:meth:`repro.machine.node.Node.recompute`), never per-instruction: the
fluid model (DESIGN.md §5.1) is exact between transitions.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.simx.engine import Engine
from repro.simx.rate import WorkItem, make_rate_executor
from repro.machine.profile import WorkloadProfile
from repro.machine.topology import LogicalCpuState

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["LogicalCpu"]


class LogicalCpu:
    """Execution model of one logical CPU on a node."""

    def __init__(self, node: "Node", state: LogicalCpuState):
        self.node = node
        self.state = state
        self.engine: Engine = node.engine
        self.executor = make_rate_executor(
            self.engine, self._on_item_complete, self._busy_changed)
        #: callback(work_item) invoked when a segment finishes (set by scheduler)
        self.on_segment_done: Optional[Callable[[WorkItem], None]] = None
        #: persistent rate multiplier in (0, 1]; < 1 models a straggler
        #: CPU (thermal throttling, a sick core).  ``x * 1.0 == x``
        #: exactly in IEEE-754, so the default changes no computed rate.
        self.degradation: float = 1.0

    # -- identity ----------------------------------------------------------
    @property
    def index(self) -> int:
        return self.state.index

    @property
    def online(self) -> bool:
        return self.state.online

    @property
    def busy(self) -> bool:
        """True if at least one compute segment is currently placed here."""
        return len(self.executor) > 0

    @property
    def n_tasks(self) -> int:
        return len(self.executor)

    def profiles(self) -> List[WorkloadProfile]:
        """Profiles of segments currently placed on this CPU."""
        return [item.meta.profile for item in self.executor.items]

    # -- placement ----------------------------------------------------------
    def add_segment(self, item: WorkItem) -> None:
        """Place a compute segment here.  ``item.meta`` must expose a
        ``profile`` attribute (the owning task).  Caller must follow with
        :meth:`Node.apply_rates` (after a :meth:`Node.sync`)."""
        if not self.state.online:
            raise RuntimeError(f"placing work on offline cpu{self.index}")
        self.executor.add(item, rate=0.0)

    def remove_segment(self, item: WorkItem) -> None:
        """Evict a segment (migration / cancellation)."""
        self.executor.remove(item)

    def _on_item_complete(self, item: WorkItem) -> None:
        # The executor already evicted the item; tell the scheduler so it
        # can update run queues.  The owning task wakes via item.done.
        if self.on_segment_done is not None:
            self.on_segment_done(item)

    def _busy_changed(self, busy: bool) -> None:
        # Executor 0↔nonzero membership transition: keep the node's
        # busy-CPU list current (the basis of every O(busy) rate pass).
        self.node._cpu_busy_changed(self, busy)

    # -- fault injection ----------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Persistently scale this CPU's deliverable rate by ``factor``
        (a straggler fault).  Takes effect at the current instant for all
        resident and future segments."""
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"degradation factor must be in (0, 1]: {factor}")
        self.degradation = float(factor)
        self.node.recompute()

    # -- rate computation ---------------------------------------------------
    def gross_hz(self) -> float:
        """Deliverable throughput of this CPU (work units/second) before
        per-task sharing and cache efficiency."""
        if self.node.frozen or not self.state.online or not self.busy:
            return 0.0
        base = self.node.spec.base_hz * self.degradation
        sib_state = self.state.sibling
        if sib_state is None or not sib_state.online:
            return base
        sib = self.node.cpu(sib_state.index)
        if not sib.busy:
            return base
        # Both siblings busy: aggregate yield from the combined task mix.
        mix = self.profiles() + sib.profiles()
        combined_yield = sum(p.htt_yield for p in mix) / len(mix)
        return base * combined_yield / 2.0

    def compute_rates(self, ctx=None) -> List[float]:
        """New rate (work units per *nanosecond*) for every resident
        segment, positionally aligned with ``executor.items`` (feed the
        result to :meth:`repro.simx.rate.RateExecutor.set_rates_seq`).

        ``ctx`` is an optional ``(per_cpu_profiles, per_socket_profiles)``
        pair precomputed by :meth:`repro.machine.node.Node.apply_rates`;
        without it the per-CPU scans below rebuild the same lists (same
        element order, so the arithmetic is identical either way).
        """
        items = self.executor.items
        if not items:
            return []
        if ctx is None:
            gross = self.gross_hz()
            if gross <= 0.0:
                return [0.0] * len(items)
            # Cache context: co-residents at core level (this cpu + sibling)
            # and socket level (all cpus of the socket).
            core_profiles = self._core_profiles()
            socket_profiles = self._socket_profiles()
        else:
            # ctx maps busy-cpu index -> profile list; idle CPUs are absent
            # (their contribution to every list below is empty anyway).
            profs, socket_profs = ctx
            if self.node._frozen or not self.state.online:
                return [0.0] * len(items)
            sib_state = self.state.sibling
            sib_profiles = (
                profs.get(sib_state.index)
                if sib_state is not None and sib_state.online
                else None
            )
            base = self.node.spec.base_hz * self.degradation
            if sib_profiles:
                # Both siblings busy: aggregate yield from the combined mix
                # (same mix list as _core_profiles in this configuration).
                core_profiles = profs[self.index] + sib_profiles
                combined_yield = (
                    sum(p.htt_yield for p in core_profiles) / len(core_profiles)
                )
                gross = base * combined_yield / 2.0
            else:
                core_profiles = list(profs[self.index])
                gross = base
            if gross <= 0.0:
                return [0.0] * len(items)
            socket_profiles = socket_profs.get(self.state.core.socket, [])
        share_hz = gross / len(items)
        hier = self.node.cache_hierarchy
        effs = hier.efficiencies(
            [item.meta.profile for item in items], core_profiles, socket_profiles)
        return [share_hz * eff / 1e9 for eff in effs]

    def compute_rates_solo(self) -> List[float]:
        """Rates when this is the only busy CPU on its node: the sibling
        is necessarily idle (gross = base) and this CPU's residents are
        the entire core *and* socket profile context.  Must only be called
        with a non-empty executor.  Positionally aligned with
        ``executor.items``, like :meth:`compute_rates`."""
        items = self.executor.items
        if self.node._frozen or not self.state.online:
            return [0.0] * len(items)
        node = self.node
        if len(items) == 1:
            # One segment on the node's one busy CPU — the hot state of
            # every one-rank-per-node sweep.  sum(ws for [p]) == p.ws
            # exactly, so the memo key (and the rate) is unchanged.
            eff = node.cache_hierarchy.efficiency_solo(items[0].meta.profile)
            return [node.spec.base_hz * self.degradation * eff / 1e9]
        profiles = [item.meta.profile for item in items]
        share_hz = node.spec.base_hz * self.degradation / len(items)
        effs = node.cache_hierarchy.efficiencies(profiles, profiles, profiles)
        return [share_hz * eff / 1e9 for eff in effs]

    def _core_profiles(self) -> List[WorkloadProfile]:
        out = list(self.profiles())
        sib_state = self.state.sibling
        if sib_state is not None and sib_state.online:
            out += self.node.cpu(sib_state.index).profiles()
        return out

    def _socket_profiles(self) -> List[WorkloadProfile]:
        out: List[WorkloadProfile] = []
        my_socket = self.state.core.socket
        for cpu in self.node.cpus:
            if cpu.state.core.socket == my_socket and cpu.state.online:
                out += cpu.profiles()
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LogicalCpu {self.node.name}:cpu{self.index} tasks={self.n_tasks}>"
