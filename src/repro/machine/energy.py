"""Node energy accounting.

The paper's predecessor study (Delgado & Karavanic [7]) found that SMIs
"increase energy usage": the machine burns near-active power inside the
SMM handler while doing no application work, and the stretched runtime
multiplies the platform's idle draw.  This module prices a finished run
with the standard linear server power model::

    P(t) = P_idle + (P_active − P_idle) × utilization(t)

where SMM residency counts as *active* draw (the cores execute handler
microcode at full tilt).  Energy-to-solution and energy-per-useful-op
are the reported figures of merit.

Defaults approximate a 2009 dual-socket Xeon E5520 node (idle ~150 W,
loaded ~280 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["PowerModel", "EnergyReport", "energy_report"]


@dataclass(frozen=True)
class PowerModel:
    """Linear utilization → power mapping for one node."""

    idle_w: float = 150.0
    active_w: float = 280.0

    def __post_init__(self) -> None:
        if not (0 < self.idle_w <= self.active_w):
            raise ValueError("need 0 < idle_w <= active_w")

    def power(self, utilization: float) -> float:
        u = min(1.0, max(0.0, utilization))
        return self.idle_w + (self.active_w - self.idle_w) * u


@dataclass
class EnergyReport:
    """Energy breakdown of one node over an observation window."""

    window_s: float
    busy_cpu_s: float      # Σ per-CPU busy seconds (useful service)
    smm_s: float           # SMM residency (all cores, full draw)
    n_cpus: int
    model: PowerModel

    @property
    def utilization(self) -> float:
        """Useful-work utilization over the window (0..1)."""
        cap = self.window_s * self.n_cpus
        return self.busy_cpu_s / cap if cap > 0 else 0.0

    @property
    def energy_j(self) -> float:
        """Total energy: useful draw + full-draw SMM residency + idle."""
        useful = self.model.power(self.utilization) * (self.window_s - self.smm_s)
        handler = self.model.active_w * self.smm_s
        return useful + handler

    def energy_per_op(self, ops: float) -> float:
        """Joules per useful operation (rises under SMI noise both from
        handler draw and from runtime stretch)."""
        if ops <= 0:
            raise ValueError("ops must be positive")
        return self.energy_j / ops


def energy_report(node: "Node", window_s: float,
                  model: PowerModel | None = None) -> EnergyReport:
    """Price a finished run on ``node`` over ``[0, window_s]``."""
    busy = 0.0
    if node.scheduler is not None:
        busy = sum(t.acct.true_ns for t in node.scheduler.tasks) / 1e9
    return EnergyReport(
        window_s=window_s,
        busy_cpu_s=busy,
        smm_s=node.smm.stats.total_ns / 1e9,
        n_cpus=node.topology.n_online,
        model=model if model is not None else PowerModel(),
    )
