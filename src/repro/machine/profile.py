"""Workload execution profiles.

A :class:`WorkloadProfile` tells the fluid CPU model how a task's
instruction stream interacts with the micro-architecture — the three
knobs the paper's workloads exercise:

``htt_yield``
    Combined throughput of a physical core when *both* HTT siblings are
    busy, in units of single-sibling throughput.  ``1.0`` means
    Hyper-Threading buys nothing (the paper's FP-intensive case, citing
    Leng et al. [4]); ``1.3`` means +30 % aggregate (typical mixed code);
    values < 1.0 model destructive cache interference between siblings
    (Cieslewicz [6]).

``working_set_bytes`` / ``base_miss_rate`` / ``mem_ref_fraction``
    Feed the cache model (:mod:`repro.machine.cache`): the fraction of
    operations that reference memory, the miss rate when the working set
    fits, and the occupancy pressure the task puts on shared caches.

The two Convolve configurations of §IV.B are expressed directly as
profiles: CacheFriendly (~1 % misses of ~20 M references) and
CacheUnfriendly (~70 % misses) — see :mod:`repro.apps.convolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "WorkloadProfile",
    "COMPUTE_BOUND",
    "MEMORY_BOUND",
    "OS_INTENSIVE",
]


@dataclass(frozen=True)
class WorkloadProfile:
    """Micro-architectural behaviour of a task's compute segments.

    Attributes
    ----------
    name:
        Label for traces and reports.
    htt_yield:
        Aggregate two-sibling throughput relative to one busy sibling
        (see module docstring).  Must be in ``(0, 2]``.
    working_set_bytes:
        Bytes the task actively touches; drives shared-cache pressure.
    base_miss_rate:
        Cache miss probability per memory reference when the working set
        fits in cache (``0..1``).
    mem_ref_fraction:
        Fraction of work units that are memory references (``0..1``).
    miss_penalty_ops:
        Cost of a miss that goes to DRAM, measured in work-unit times.
    hit2_penalty_ops:
        Cost of an L1 miss that hits a lower cache level.
    """

    name: str
    htt_yield: float = 1.25
    working_set_bytes: int = 1 << 20
    base_miss_rate: float = 0.01
    mem_ref_fraction: float = 0.25
    miss_penalty_ops: float = 60.0
    hit2_penalty_ops: float = 6.0
    #: Fraction of the occupancy-model miss inflation this workload
    #: actually feels (0..1).  Blocked/tiled kernels (NAS solvers) have
    #: short reuse distances and shrug off shared-cache pressure;
    #: pointer-chasing code feels all of it.  Applied by
    #: :meth:`repro.machine.cache.CacheHierarchy.contention`.
    cache_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.htt_yield <= 2.0):
            raise ValueError(f"htt_yield out of range: {self.htt_yield}")
        if not (0.0 <= self.base_miss_rate <= 1.0):
            raise ValueError(f"base_miss_rate out of range: {self.base_miss_rate}")
        if not (0.0 <= self.mem_ref_fraction <= 1.0):
            raise ValueError(f"mem_ref_fraction out of range: {self.mem_ref_fraction}")
        if self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be >= 0")
        if self.miss_penalty_ops < 0 or self.hit2_penalty_ops < 0:
            raise ValueError("penalties must be >= 0")
        if not (0.0 <= self.cache_sensitivity <= 1.0):
            raise ValueError(f"cache_sensitivity out of range: {self.cache_sensitivity}")

    def with_(self, **kw) -> "WorkloadProfile":
        """Return a modified copy (convenience over dataclasses.replace)."""
        return replace(self, **kw)

    def cost_per_op(self, extra_dram: float = 0.0, extra_mid: float = 0.0) -> float:
        """Average cost of one work unit, in work-unit times.

        ``cost = 1 + mem_ref × ((base_miss + extra_dram)·miss_penalty
        + extra_mid·hit2_penalty)``

        ``base_miss_rate`` is the *solo* DRAM miss rate (what cachegrind
        measures when the task runs alone — the paper's CF ≈ 1 % and CU
        ≈ 70 % configurations plug in directly).  ``extra_dram`` /
        ``extra_mid`` are contention deltas computed by
        :class:`repro.machine.cache.CacheHierarchy`: additional misses
        that go all the way to DRAM (LLC pressure) vs. misses absorbed by
        the LLC (core-level cache pressure from an HTT sibling).
        """
        dram = min(1.0, self.base_miss_rate + max(0.0, extra_dram))
        mid = min(1.0, max(0.0, extra_mid))
        return 1.0 + self.mem_ref_fraction * (
            dram * self.miss_penalty_ops + mid * self.hit2_penalty_ops
        )

    def efficiency(self, extra_dram: float = 0.0, extra_mid: float = 0.0) -> float:
        """Throughput multiplier (``1/cost_per_op``)."""
        return 1.0 / self.cost_per_op(extra_dram, extra_mid)

    def solo_rate(self, base_hz: float) -> float:
        """Work units per second when running alone on one logical CPU of
        a machine with ``base_hz``.  Calibration uses this to convert the
        paper's wall times into work-unit demands."""
        return base_hz * self.efficiency()


# ---------------------------------------------------------------------------
# Canonical profiles used across experiments.
# ---------------------------------------------------------------------------

#: FP/compute-intensive kernel: saturates execution units, HTT buys nothing
#: (Leng et al. [4]; Saini et al. [5] for structured, cache-optimized codes).
COMPUTE_BOUND = WorkloadProfile(
    name="compute-bound",
    htt_yield=1.0,
    working_set_bytes=4 << 20,
    base_miss_rate=0.005,
    mem_ref_fraction=0.15,
)

#: Streaming / cache-thrashing kernel: stalls leave gaps, but when *both*
#: siblings thrash, cache interference eats the gain — the paper's
#: CacheUnfriendly Convolve "did not benefit greatly from HTT".
MEMORY_BOUND = WorkloadProfile(
    name="memory-bound",
    htt_yield=1.1,
    working_set_bytes=64 << 20,
    base_miss_rate=0.7,
    mem_ref_fraction=0.35,
)

#: Mixed OS/syscall-heavy work (UnixBench profile): latency gaps abound,
#: HTT shows clear gains (Figure 2 shows HTT benefit for UnixBench).
OS_INTENSIVE = WorkloadProfile(
    name="os-intensive",
    htt_yield=1.35,
    working_set_bytes=256 << 10,
    base_miss_rate=0.03,
    mem_ref_fraction=0.3,
)
