"""Main-memory capacity accounting.

The paper's Table 3 has missing cells ("-") for FT class C at 1 and 2 MPI
ranks with one rank per node: the per-rank footprint of FT-C does not fit
the 12 GB Wyeast nodes in that configuration.  This module provides the
fit check the run matrix uses to mark those configurations infeasible
(reported as ``None`` / rendered as "-"), rather than silently producing
numbers the paper could not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel", "OutOfMemory"]

#: Memory the OS and runtime keep for themselves on the paper's nodes.
OS_RESERVED_BYTES = 2 << 30


class OutOfMemory(RuntimeError):
    """Raised when a workload's resident footprint exceeds node memory."""


@dataclass
class MemoryModel:
    """Tracks allocations against a node's physical capacity."""

    capacity_bytes: int
    reserved_bytes: int = OS_RESERVED_BYTES
    allocated_bytes: int = 0

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.reserved_bytes - self.allocated_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.available_bytes

    def allocate(self, nbytes: int, what: str = "buffer") -> None:
        """Reserve ``nbytes``; raises :class:`OutOfMemory` on overcommit
        (the simulator has no swap — the paper's runs would have died or
        thrashed unusably, which is why those cells are blank)."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        if not self.fits(nbytes):
            raise OutOfMemory(
                f"cannot allocate {nbytes / 2**30:.2f} GiB for {what}: "
                f"only {self.available_bytes / 2**30:.2f} GiB available"
            )
        self.allocated_bytes += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.allocated_bytes:
            raise ValueError("bad free")
        self.allocated_bytes -= nbytes
