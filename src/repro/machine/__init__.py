"""repro.machine — the simulated hardware platform.

Models the two machines used in the paper:

* **Wyeast node** — Intel Xeon E5520 @ 2.27 GHz, 4 physical cores × 2 HTT
  siblings, 8 MB cache, 12 GB RAM (the 16-node MPI cluster, §III.A).
* **Dell PowerEdge R410** — Intel Xeon E5620 quad-core with HTT,
  4 MB L1 / 8 MB L2 / 24 MB L3 (as reported by the paper, §IV.A), 12 GB RAM
  (the multithreaded study).

Components:

* :mod:`topology` — sockets / cores / logical CPUs, sysfs-style hotplug.
* :mod:`profile` — workload execution profiles (HTT yield, working set,
  miss rates) that parameterize the fluid CPU model.
* :mod:`cache` — occupancy-based cache contention model.
* :mod:`cpu` — logical-CPU execution via :class:`repro.simx.rate.RateExecutor`.
* :mod:`clock` — TSC / CLOCK_MONOTONIC / jiffies (all keep ticking in SMM).
* :mod:`interrupts` — interrupt controller with SMI > NMI > IRQ priority.
* :mod:`smm` — the System Management Mode engine (global core freeze).
* :mod:`memory` — main-memory capacity accounting (OOM gating of runs).
* :mod:`node` — composition of all of the above plus the wake-up gate.
"""

from repro.machine.profile import WorkloadProfile, COMPUTE_BOUND, MEMORY_BOUND, OS_INTENSIVE
from repro.machine.topology import MachineSpec, Topology, WYEAST_SPEC, R410_SPEC
from repro.machine.cache import CacheSpec, CacheHierarchy
from repro.machine.clock import Clock, JIFFY_NS
from repro.machine.smm import SmmController, SmmStats
from repro.machine.interrupts import InterruptController, IrqClass
from repro.machine.node import Node

__all__ = [
    "WorkloadProfile",
    "COMPUTE_BOUND",
    "MEMORY_BOUND",
    "OS_INTENSIVE",
    "MachineSpec",
    "Topology",
    "WYEAST_SPEC",
    "R410_SPEC",
    "CacheSpec",
    "CacheHierarchy",
    "Clock",
    "JIFFY_NS",
    "SmmController",
    "SmmStats",
    "InterruptController",
    "IrqClass",
    "Node",
]
