"""Model-specific registers relevant to SMM observation.

Real Nehalem-era Intel CPUs expose ``MSR_SMI_COUNT`` (0x34): a read-only
counter of SMIs since reset.  It is the *only* architectural visibility
the OS has into SMM — the count, never the time.  Tools like
``turbostat`` read it; hwlat-style detectors use it to attribute a
measured gap to an SMI rather than to scheduler preemption.

This module models the MSR file of a node.  Reads execute from host
software, so reading during SMM is impossible by construction (the reader
is frozen) — the count is always observed at rest.

Also modeled: ``IA32_TIME_STAMP_COUNTER`` (0x10) for completeness, and
the BIOS-controlled ``MSR_SMM_DELAYED``/`BLOCKED`` pair as always-zero
stubs (they only matter for SMM-transfer-monitor setups).
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["Msr", "MSR_SMI_COUNT", "IA32_TIME_STAMP_COUNTER"]

MSR_SMI_COUNT = 0x34
IA32_TIME_STAMP_COUNTER = 0x10
MSR_SMM_DELAYED = 0x31
MSR_SMM_BLOCKED = 0x32


class Msr:
    """The MSR read interface of one node (``rdmsr`` by register index)."""

    def __init__(self, node: "Node"):
        self.node = node
        self._readers: Dict[int, Callable[[], int]] = {
            MSR_SMI_COUNT: lambda: self.node.smm.stats.entries,
            IA32_TIME_STAMP_COUNTER: lambda: self.node.clock.rdtsc(),
            MSR_SMM_DELAYED: lambda: 0,
            MSR_SMM_BLOCKED: lambda: 0,
        }

    def rdmsr(self, index: int) -> int:
        """Read an MSR; raises like the #GP fault for unknown registers."""
        try:
            reader = self._readers[index]
        except KeyError:
            raise ValueError(f"rdmsr: unimplemented MSR {index:#x}") from None
        if self.node.frozen:
            raise RuntimeError(
                "rdmsr executed while the node is in SMM — host software "
                "cannot run during SMM; read through a gated task instead"
            )
        return reader()

    def smi_count(self) -> int:
        """Convenience: MSR_SMI_COUNT (what turbostat's SMI column shows)."""
        return self.rdmsr(MSR_SMI_COUNT)
