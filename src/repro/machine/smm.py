"""The System Management Mode engine.

Reproduces the SMM semantics described in §II.A of the paper:

* An SMI is broadcast: **all logical CPUs of the node enter SMM
  simultaneously** and stay there until the handler finishes ("Because all
  CPU threads stay in SMM until the completion of the SMI's work, the
  severity of the impact increases with the number of cores").
* SMIs are **unmaskable** and higher priority than NMIs and device
  interrupts; other interrupts are only handled after SMM exits (the
  deferral itself is implemented by the node wake-up gate and the
  interrupt controller).
* SMM is **invisible to the OS**: free-running clocks advance, and the
  kernel's process accounting charges the frozen interval to whatever was
  running (see :mod:`repro.sched.accounting`).
* An SMI arriving *while already in SMM* is latched (the x86 SMI latch
  holds at most one pending SMI) and re-delivered shortly after exit.

The controller also self-measures per-SMI latency via the node TSC,
exactly like the "Blackbox SMI" driver the paper uses (§III.B), so the
driver model in :mod:`repro.core.driver` can report measured latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.simx.engine import Engine, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["SmmController", "SmmStats"]

#: Re-delivery gap for a latched SMI after SMM exit (handler-to-handler
#: turnaround; microseconds on real chipsets).
RELATCH_GAP_NS = 2_000

#: Cost of the entry rendezvous: the time from SMI assertion until all
#: cores have saved state and entered SMM.  Folded into the residency
#: window (cores are effectively lost for it as well).
ENTRY_LATENCY_NS = 5_000


@dataclass
class SmmStats:
    """Aggregate SMM residency statistics for one node."""

    entries: int = 0
    total_ns: int = 0
    latched: int = 0
    durations_ns: List[int] = field(default_factory=list)
    #: TSC-measured latency of each SMI, as the Blackbox driver reports it.
    measured_latency_ns: List[int] = field(default_factory=list)

    @property
    def mean_latency_ns(self) -> float:
        if not self.measured_latency_ns:
            return 0.0
        return sum(self.measured_latency_ns) / len(self.measured_latency_ns)


class SmmController:
    """Per-node SMM state machine."""

    def __init__(self, node: "Node"):
        self.node = node
        self.engine: Engine = node.engine
        self.in_smm = False
        self.stats = SmmStats()
        self._pending_ns: Optional[int] = None
        self._exit_waiters: List[Event] = []
        self._enter_tsc = 0
        m = node.metrics
        if m is not None:
            self._m_entries = m.counter("smm.entries", "SMM entries (all nodes)")
            self._m_latched = m.counter(
                "smm.latched", "SMIs latched while already in SMM")
            self._m_residency = m.histogram(
                "smm.residency_ns", "TSC-measured residency per SMM entry")
        else:
            self._m_entries = None
            self._m_latched = None
            self._m_residency = None

    # -- triggering ------------------------------------------------------------
    def trigger(self, duration_ns: int, source: str = "smi") -> bool:
        """Assert an SMI whose handler will run for ``duration_ns``.

        Returns True if SMM was entered now; False if the SMI was latched
        because the node is already in SMM (at most one pending — further
        assertions are absorbed, as on real hardware).
        """
        if duration_ns <= 0:
            raise ValueError("SMI duration must be positive")
        if self.node._failed or self.node._hung:
            # Dead silicon: a crashed node asserts nothing, and a hung
            # node is already (permanently) in its handler — further SMIs
            # are absorbed without latching.
            return False
        if self.in_smm:
            self.stats.latched += 1
            if self._m_latched is not None:
                self._m_latched.value += 1
            if self._pending_ns is None or duration_ns > self._pending_ns:
                self._pending_ns = int(duration_ns)
            return False
        self._enter(int(duration_ns), source)
        return True

    def wait_exit(self) -> Event:
        """Event that succeeds at the next SMM exit (immediately if the
        node is not in SMM)."""
        ev = self.engine.event(name=f"{self.node.name}.smm_exit")
        if not self.in_smm:
            ev.succeed()
        else:
            self._exit_waiters.append(ev)
        return ev

    # -- state machine ---------------------------------------------------------
    def _enter(self, duration_ns: int, source: str) -> None:
        self.in_smm = True
        self._enter_tsc = self.node.clock.rdtsc()
        residency = ENTRY_LATENCY_NS + duration_ns
        self.node.freeze()
        tl = self.node.timeline
        if tl.enabled:
            tl.record(
                self.engine.now, "smm.enter", self.node.name,
                duration_ns=duration_ns, source=source,
            )
        self.engine.schedule(residency, self._exit)

    def _exit(self) -> None:
        now = self.engine.now
        exit_tsc = self.node.clock.rdtsc()
        measured = self.node.clock.tsc_to_ns(exit_tsc - self._enter_tsc)
        self.stats.entries += 1
        self.stats.measured_latency_ns.append(measured)
        self.stats.durations_ns.append(measured)
        self.stats.total_ns += measured
        if self._m_entries is not None:
            self._m_entries.value += 1
            self._m_residency.observe(measured)
        self.in_smm = False
        self.node.unfreeze()
        tl = self.node.timeline
        if tl.enabled:
            tl.record(now, "smm.exit", self.node.name, measured_ns=measured)
        waiters, self._exit_waiters = self._exit_waiters, []
        for ev in waiters:
            ev.succeed()
        if self._pending_ns is not None:
            pending, self._pending_ns = self._pending_ns, None
            self.engine.schedule(RELATCH_GAP_NS, self._relatch, pending)

    def _relatch(self, duration_ns: int) -> None:
        # The latched SMI may race with a fresh trigger; trigger() handles
        # the already-in-SMM case by re-latching.
        self.trigger(duration_ns, source="latched")

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        st = self.stats
        return {
            "in_smm": self.in_smm,
            "pending_ns": self._pending_ns,
            "enter_tsc": self._enter_tsc,
            "entries": st.entries,
            "total_ns": st.total_ns,
            "latched": st.latched,
            "n_durations": len(st.durations_ns),
            "n_measured": len(st.measured_latency_ns),
            "_exit_waiters": list(self._exit_waiters),
        }

    def __restore__(self, state: dict) -> None:
        self.in_smm = state["in_smm"]
        self._pending_ns = state["pending_ns"]
        self._enter_tsc = state["enter_tsc"]
        st = self.stats
        st.entries = state["entries"]
        st.total_ns = state["total_ns"]
        st.latched = state["latched"]
        del st.durations_ns[state["n_durations"]:]
        del st.measured_latency_ns[state["n_measured"]:]
        self._exit_waiters[:] = state["_exit_waiters"]
