"""A node: the composition point of the hardware model.

A :class:`Node` owns a topology, per-CPU executors, caches, clocks, the
SMM controller, an interrupt controller, a memory model, and — crucially —
the **wake-up gate** that implements SMM's "all host software stops"
semantics for every process hosted on the node:

* Task processes are created with ``gate=node``.  Every resumption of such
  a process (a sleep expiring, a message arriving, an event triggering)
  goes through :meth:`Node.deliver`, which queues the wake-up while the
  node is frozen and flushes the queue in FIFO order at SMM exit.
* Compute segments cannot make progress during the freeze because every
  CPU's gross rate is 0 while ``frozen``.

Hardware-level processes (the SMM exit timer, the SMI source, in-flight
NIC transfers) are *not* gated — DMA and timers below the host keep
running during SMM, as on real machines; only their visibility to host
software is delayed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.simx.engine import Engine
from repro.simx.timeline import Timeline
from repro.machine.cache import CacheHierarchy
from repro.machine.clock import Clock
from repro.machine.cpu import LogicalCpu
from repro.machine.interrupts import InterruptController
from repro.machine.memory import MemoryModel
from repro.machine.smm import SmmController
from repro.machine.topology import MachineSpec, Topology

__all__ = ["Node"]


def _cpu_index(cpu: "LogicalCpu") -> int:
    """Sort key for batch-flush ordering (module-level: no per-call
    closure allocation on the batch exit path)."""
    return cpu.index


class Node:
    """One simulated machine."""

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        name: str = "node0",
        timeline: Optional[Timeline] = None,
        boot_offset_ns: int = 0,
        metrics=None,
    ):
        self.engine = engine
        self.spec = spec
        self.name = name
        self.timeline = timeline if timeline is not None else Timeline()
        # Observability: instruments cached per node (None when disabled,
        # leaving the gate hot path with a single attribute check).
        self.metrics = metrics
        if metrics is not None:
            self._m_deferred = metrics.counter(
                "node.wakeups.deferred", "wake-ups queued while frozen in SMM")
            self._m_flush = metrics.histogram(
                "node.wakeups.flush_batch",
                "deferred wake-ups coalesced per SMM exit",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
        else:
            self._m_deferred = None
            self._m_flush = None
        self.topology = Topology(spec)
        self.cache_hierarchy: CacheHierarchy = spec.hierarchy()
        self.clock = Clock(engine, tsc_hz=spec.base_hz, boot_offset_ns=boot_offset_ns)
        self.memory = MemoryModel(capacity_bytes=spec.memory_bytes)
        self.cpus: List[LogicalCpu] = [LogicalCpu(self, st) for st in self.topology.cpus]
        self.smm = SmmController(self)
        self.irq = InterruptController(self)
        self.nic = None  # attached by repro.mpi.cluster when clustered
        self.scheduler = None  # attached by repro.sched (see repro.system)
        self._frozen = False
        self._failed = False
        self._hung = False
        self._deferred: List[Callable[[], None]] = []
        self._unfreeze_listeners: List[Callable[[], None]] = []
        self._batch_depth = 0
        # Busy-CPU set, maintained by executor membership callbacks and
        # kept in ascending CPU-index order: every rate pass (sync /
        # apply_rates / batch flush) walks exactly the CPUs that hold
        # work, in the same order the full-topology scans they replace
        # visited them.  On a 16-CPU node running one rank, that is 1
        # visit instead of 16 on each of the hottest paths.
        self._busy: List[LogicalCpu] = []
        self._batch_flush: Optional[List[LogicalCpu]] = None
        self.topology.add_listener(self._on_hotplug)

    # -- basic accessors -------------------------------------------------------
    def cpu(self, index: int) -> LogicalCpu:
        return self.cpus[index]

    @property
    def frozen(self) -> bool:
        """True while all cores are in System Management Mode."""
        return self._frozen

    @property
    def failed(self) -> bool:
        """True once :meth:`fail` has been called (permanent)."""
        return self._failed

    @property
    def hung(self) -> bool:
        """True once :meth:`hang` has been called (permanent)."""
        return self._hung

    @property
    def dead(self) -> bool:
        """True when the node can never again make host-software progress."""
        return self._failed or self._hung

    @property
    def online_cpus(self) -> List[LogicalCpu]:
        return [c for c in self.cpus if c.state.online]

    # -- rate bookkeeping --------------------------------------------------
    def _cpu_busy_changed(self, cpu: LogicalCpu, busy: bool) -> None:
        """Executor membership callback: maintain the busy-CPU list (in
        CPU index order) and, mid-batch, extend timer deferral to CPUs
        that become busy after the batch opened."""
        busy_list = self._busy
        if busy:
            i = len(busy_list)
            idx = cpu.index
            while i > 0 and busy_list[i - 1].index > idx:
                i -= 1
            busy_list.insert(i, cpu)
            if self._batch_depth > 0:
                ex = cpu.executor
                if not ex._defer:
                    ex._defer = True
                    self._batch_flush.append(cpu)
        else:
            busy_list.remove(cpu)

    def sync(self) -> None:
        """Integrate all executors and the accounting up to *now* at the
        currently-assigned rates.  Must be called *before* any mutation
        that changes rates (placement, freeze, hotplug)."""
        if self.scheduler is not None:
            self.scheduler.accounting.advance()
        # Empty executors have nothing to integrate, and add() syncs
        # before admitting — their clocks cannot go stale.  Iterate a
        # snapshot: completions inside sync() shrink the busy list.
        busy = self._busy
        if not busy:
            return
        if len(busy) == 1:
            busy[0].executor.sync()
        else:
            for cpu in busy[:]:
                cpu.executor.sync()

    def begin_rate_batch(self) -> None:
        """Open a rate-coalescing batch (pair with :meth:`end_rate_batch`
        in a ``finally``; re-entrant — nested batches are absorbed into
        the outermost one).

        Inside the batch every busy executor defers its
        next-completion-timer rescheduling (CPUs that *become* busy
        mid-batch join via :meth:`_cpu_busy_changed`); the outermost exit
        flushes dirty executors in CPU index order.  Work integration
        (sync) stays eager, so completions and their follow-up events are
        unaffected; the flush order equals the order the legacy code
        issued its *final* (surviving) timer pushes, so the event
        sequence is byte-identical.  Plain calls rather than a
        contextmanager: the generator protocol is measurable on this path
        (one batch per placement/completion/freeze).
        """
        depth = self._batch_depth
        self._batch_depth = depth + 1
        if depth == 0:
            flush = self._busy[:]
            for cpu in flush:
                cpu.executor._defer = True
            self._batch_flush = flush

    def end_rate_batch(self) -> None:
        depth = self._batch_depth - 1
        self._batch_depth = depth
        if depth == 0:
            flush = self._batch_flush
            self._batch_flush = None
            if len(flush) > 1:
                # Mid-batch joiners append out of order; the flush (and
                # hence surviving-timer push) order must be CPU index
                # order to match the all-CPUs scan this replaces.
                flush.sort(key=_cpu_index)
            for cpu in flush:
                ex = cpu.executor
                ex._defer = False
                if ex._dirty:
                    ex._dirty = False
                    ex._reschedule()

    @contextmanager
    def rate_batch(self):
        """Contextmanager sugar over begin/end_rate_batch (cold paths)."""
        self.begin_rate_batch()
        try:
            yield
        finally:
            self.end_rate_batch()

    def apply_rates(self) -> None:
        """Recompute and install the rate assignment for every CPU.

        The per-CPU profile lists and per-socket concatenations are built
        once per pass (list order follows CPU index order, matching the
        per-CPU scans they replace, so float summation order — and hence
        every computed rate — is bit-identical).
        """
        busy = self._busy
        if not busy:
            return
        if len(busy) == 1:
            # Only one CPU busy (the common state for one-rank-per-node
            # sweeps): its sibling is idle and it alone populates its
            # socket's profile list — skip the context build entirely.
            cpu = busy[0]
            cpu.executor.set_rates_seq(cpu.compute_rates_solo())
            return
        busy = busy[:]  # the per-CPU installs below must see one snapshot
        profs: Dict[int, List] = {}
        for cpu in busy:
            profs[cpu.index] = [item.meta.profile for item in cpu.executor.items]
        # Idle CPUs contribute nothing to a socket's profile list, so
        # accumulating over busy CPUs (still in index order) matches the
        # all-online-CPUs scan this replaces element for element.
        socket_profs: Dict[object, List] = {}
        for cpu in busy:
            if cpu.state.online:
                sock = cpu.state.core.socket
                acc = socket_profs.get(sock)
                if acc is None:
                    socket_profs[sock] = acc = []
                acc += profs[cpu.index]
        ctx = (profs, socket_profs)
        for cpu in busy:
            cpu.executor.set_rates_seq(cpu.compute_rates(ctx))

    def recompute(self) -> None:
        """sync + apply_rates — the one call sites use after any change."""
        self.begin_rate_batch()
        try:
            self.sync()
            self.apply_rates()
        finally:
            self.end_rate_batch()

    # -- SMM freeze protocol ----------------------------------------------------
    def freeze(self) -> None:
        """Called by the SMM controller at SMI entry."""
        self.begin_rate_batch()
        try:
            self.sync()
            self._frozen = True
            self.apply_rates()
        finally:
            self.end_rate_batch()

    def unfreeze(self) -> None:
        """Called by the SMM controller at SMM exit: resume execution,
        flush deferred wake-ups (FIFO), notify listeners (scheduler
        re-balance, detectors)."""
        if self._hung or self._failed:
            return  # a dead node never thaws — not even at SMM exit
        self.begin_rate_batch()
        try:
            self.sync()
            self._frozen = False
            self.apply_rates()
        finally:
            self.end_rate_batch()
        deferred, self._deferred = self._deferred, []
        if self._m_flush is not None:
            self._m_flush.observe(len(deferred))
        engine = self.engine
        for fn in deferred:
            engine._post(0, fn, (), False)
        for fn in self._unfreeze_listeners:
            fn()

    def add_unfreeze_listener(self, fn: Callable[[], None]) -> None:
        self._unfreeze_listeners.append(fn)

    # -- fault transitions ------------------------------------------------------
    def hang(self, reason: str = "injected hang") -> None:
        """Permanent SMM-style freeze: the node enters the frozen state and
        never exits.  Task processes stay alive but make no progress;
        wake-ups defer forever.  Used to model a firmware hang (an SMI
        handler that never returns).  Idempotent; a no-op on a failed node.
        """
        if self._failed or self._hung:
            return
        self._hung = True
        if not self._frozen:
            self.freeze()

    def fail(self, reason: str = "injected failure") -> None:
        """Hard node failure (crash / power loss) at the current instant.

        Work is accounted up to *now*, every resident compute segment is
        evicted, and every task process hosted here is aborted with
        :class:`~repro.simx.errors.NodeFailedError` — the error path, so
        joiners (and the MPI completion callbacks) observe a *failed*
        rank, not a finished one.  Idempotent.
        """
        if self._failed:
            return
        from repro.simx.errors import NodeFailedError

        self.begin_rate_batch()
        try:
            self.sync()
            self._failed = True
            self._frozen = True  # gross_hz == 0 for anything left behind
            for cpu in self.cpus:
                for item in list(cpu.executor.items):
                    cpu.executor.remove(item)
            self.apply_rates()
        finally:
            self.end_rate_batch()
        self._deferred.clear()
        if self.timeline.enabled:
            self.timeline.record(self.engine.now, "node.fail", self.name,
                                 reason=reason)
        if self.scheduler is not None:
            exc_reason = f"node {self.name} failed: {reason}"
            for task in self.scheduler.tasks:
                task.cpu = None
                proc = task.proc
                if proc is not None and proc.alive:
                    proc.abort(NodeFailedError(exc_reason))

    # -- the wake-up gate (simx Process gate protocol) ------------------------
    def deliver(self, fn: Callable[[], None]) -> None:
        """Deliver a wake-up to host software: immediate (scheduled at +0)
        when running, deferred to SMM exit when frozen.  A failed node
        drops wake-ups entirely (dead silicon wakes nothing); a hung node
        defers them forever (the queue that would flush at an SMM exit
        that never comes)."""
        if self._frozen:
            if self._failed:
                return
            self._deferred.append(fn)
            if self._m_deferred is not None:
                self._m_deferred.value += 1
        else:
            self.engine._post(0, fn, (), False)

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        """Freeze/fault flags, the deferred-wakeup queue (by reference —
        the queued callables are closures over live processes), and the
        busy-CPU set.  Executor columns are captured by the per-CPU
        executors' own ``__snapshot__``."""
        return {
            "frozen": self._frozen,
            "failed": self._failed,
            "hung": self._hung,
            "busy": [c.index for c in self._busy],
            "n_deferred": len(self._deferred),
            "_deferred": list(self._deferred),
        }

    def __restore__(self, state: dict) -> None:
        self._frozen = state["frozen"]
        self._failed = state["failed"]
        self._hung = state["hung"]
        self._busy[:] = [self.cpus[i] for i in state["busy"]]
        self._deferred[:] = state["_deferred"]

    # -- hotplug ----------------------------------------------------------
    def _on_hotplug(self, cpu_state) -> None:
        cpu = self.cpus[cpu_state.index]
        if not cpu_state.online and cpu.busy:
            raise RuntimeError(
                f"cannot offline cpu{cpu_state.index} with work resident; "
                "migrate tasks first (the scheduler does this via sysfs.offline)"
            )
        self.recompute()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Node {self.name} spec={self.spec.name} online={self.topology.n_online} "
            f"frozen={self._frozen}>"
        )
