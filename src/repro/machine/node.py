"""A node: the composition point of the hardware model.

A :class:`Node` owns a topology, per-CPU executors, caches, clocks, the
SMM controller, an interrupt controller, a memory model, and — crucially —
the **wake-up gate** that implements SMM's "all host software stops"
semantics for every process hosted on the node:

* Task processes are created with ``gate=node``.  Every resumption of such
  a process (a sleep expiring, a message arriving, an event triggering)
  goes through :meth:`Node.deliver`, which queues the wake-up while the
  node is frozen and flushes the queue in FIFO order at SMM exit.
* Compute segments cannot make progress during the freeze because every
  CPU's gross rate is 0 while ``frozen``.

Hardware-level processes (the SMM exit timer, the SMI source, in-flight
NIC transfers) are *not* gated — DMA and timers below the host keep
running during SMM, as on real machines; only their visibility to host
software is delayed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simx.engine import Engine
from repro.simx.timeline import Timeline
from repro.machine.cache import CacheHierarchy
from repro.machine.clock import Clock
from repro.machine.cpu import LogicalCpu
from repro.machine.interrupts import InterruptController
from repro.machine.memory import MemoryModel
from repro.machine.smm import SmmController
from repro.machine.topology import MachineSpec, Topology

__all__ = ["Node"]


class Node:
    """One simulated machine."""

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        name: str = "node0",
        timeline: Optional[Timeline] = None,
        boot_offset_ns: int = 0,
        metrics=None,
    ):
        self.engine = engine
        self.spec = spec
        self.name = name
        self.timeline = timeline if timeline is not None else Timeline()
        # Observability: instruments cached per node (None when disabled,
        # leaving the gate hot path with a single attribute check).
        self.metrics = metrics
        if metrics is not None:
            self._m_deferred = metrics.counter(
                "node.wakeups.deferred", "wake-ups queued while frozen in SMM")
            self._m_flush = metrics.histogram(
                "node.wakeups.flush_batch",
                "deferred wake-ups coalesced per SMM exit",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
        else:
            self._m_deferred = None
            self._m_flush = None
        self.topology = Topology(spec)
        self.cache_hierarchy: CacheHierarchy = spec.hierarchy()
        self.clock = Clock(engine, tsc_hz=spec.base_hz, boot_offset_ns=boot_offset_ns)
        self.memory = MemoryModel(capacity_bytes=spec.memory_bytes)
        self.cpus: List[LogicalCpu] = [LogicalCpu(self, st) for st in self.topology.cpus]
        self.smm = SmmController(self)
        self.irq = InterruptController(self)
        self.nic = None  # attached by repro.mpi.cluster when clustered
        self.scheduler = None  # attached by repro.sched (see repro.system)
        self._frozen = False
        self._deferred: List[Callable[[], None]] = []
        self._unfreeze_listeners: List[Callable[[], None]] = []
        self.topology.add_listener(self._on_hotplug)

    # -- basic accessors -------------------------------------------------------
    def cpu(self, index: int) -> LogicalCpu:
        return self.cpus[index]

    @property
    def frozen(self) -> bool:
        """True while all cores are in System Management Mode."""
        return self._frozen

    @property
    def online_cpus(self) -> List[LogicalCpu]:
        return [c for c in self.cpus if c.state.online]

    # -- rate bookkeeping --------------------------------------------------
    def sync(self) -> None:
        """Integrate all executors and the accounting up to *now* at the
        currently-assigned rates.  Must be called *before* any mutation
        that changes rates (placement, freeze, hotplug)."""
        if self.scheduler is not None:
            self.scheduler.accounting.advance()
        for cpu in self.cpus:
            cpu.executor.sync()

    def apply_rates(self) -> None:
        """Recompute and install the rate assignment for every CPU."""
        for cpu in self.cpus:
            rates = cpu.compute_rates()
            if rates or len(cpu.executor):
                cpu.executor.set_rates(rates)

    def recompute(self) -> None:
        """sync + apply_rates — the one call sites use after any change."""
        self.sync()
        self.apply_rates()

    # -- SMM freeze protocol ----------------------------------------------------
    def freeze(self) -> None:
        """Called by the SMM controller at SMI entry."""
        self.sync()
        self._frozen = True
        self.apply_rates()

    def unfreeze(self) -> None:
        """Called by the SMM controller at SMM exit: resume execution,
        flush deferred wake-ups (FIFO), notify listeners (scheduler
        re-balance, detectors)."""
        self.sync()
        self._frozen = False
        self.apply_rates()
        deferred, self._deferred = self._deferred, []
        if self._m_flush is not None:
            self._m_flush.observe(len(deferred))
        for fn in deferred:
            self.engine.schedule(0, fn)
        for fn in self._unfreeze_listeners:
            fn()

    def add_unfreeze_listener(self, fn: Callable[[], None]) -> None:
        self._unfreeze_listeners.append(fn)

    # -- the wake-up gate (simx Process gate protocol) ------------------------
    def deliver(self, fn: Callable[[], None]) -> None:
        """Deliver a wake-up to host software: immediate (scheduled at +0)
        when running, deferred to SMM exit when frozen."""
        if self._frozen:
            self._deferred.append(fn)
            if self._m_deferred is not None:
                self._m_deferred.value += 1
        else:
            self.engine.schedule(0, fn)

    # -- hotplug ----------------------------------------------------------
    def _on_hotplug(self, cpu_state) -> None:
        cpu = self.cpus[cpu_state.index]
        if not cpu_state.online and cpu.busy:
            raise RuntimeError(
                f"cannot offline cpu{cpu_state.index} with work resident; "
                "migrate tasks first (the scheduler does this via sysfs.offline)"
            )
        self.recompute()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Node {self.name} spec={self.spec.name} online={self.topology.n_online} "
            f"frozen={self._frozen}>"
        )
