"""Time sources of a node: TSC, CLOCK_MONOTONIC, and jiffies.

The defining property reproduced here is §II.A of the paper: *time keeps
flowing during SMM but the host software doesn't run*.  The TSC and the
monotonic clock are free-running counters — a task that reads the clock
before and after an SMI sees the full gap (this is exactly how the
detector in :mod:`repro.core.detector` and the Intel BIOSBITS 150 µs check
work) — whereas anything that requires the kernel to execute (jiffy
updates on a non-tickless kernel, timer callbacks) is delayed until SMM
exit (modeled by the node wake-up gate, not by this module).

The paper's systems use 1 jiffy = 1 ms ("In our system, one jiffy equals
one millisecond", §III.B); the SMI driver interval is configured in
jiffies.
"""

from __future__ import annotations

from repro.simx.engine import Engine

__all__ = ["Clock", "JIFFY_NS"]

#: 1 jiffy = 1 ms on both of the paper's systems (HZ=1000).
JIFFY_NS = 1_000_000


class Clock:
    """Per-node time sources.

    All nodes share the engine's global simulated time; per-node offsets
    model independent boot times (so TSC values differ across nodes, as on
    a real cluster, even though there is no drift model).
    """

    def __init__(self, engine: Engine, tsc_hz: float = 2.27e9, boot_offset_ns: int = 0):
        if tsc_hz <= 0:
            raise ValueError("tsc_hz must be positive")
        self.engine = engine
        self.tsc_hz = tsc_hz
        self.boot_offset_ns = int(boot_offset_ns)
        # Injected clock-skew fault (see repro.faults): the node's clocks
        # run fast/slow by ``_skew_ppm`` parts-per-million from the instant
        # the skew was set; ``_skew_accum_ns`` folds in drift accumulated
        # under previous skew settings.  Both zero (no arithmetic change)
        # unless a fault plan sets them.
        self._skew_ppm = 0.0
        self._skew_base_ns = 0
        self._skew_accum_ns = 0

    def set_skew(self, ppm: float) -> None:
        """Start drifting this node's clocks by ``ppm`` parts-per-million
        relative to true (engine) time.  Drift already accumulated under a
        previous setting is preserved."""
        now = self.engine.now
        if self._skew_ppm:
            self._skew_accum_ns += int(
                (now - self._skew_base_ns) * (self._skew_ppm * 1e-6))
        self._skew_base_ns = now
        self._skew_ppm = float(ppm)

    # -- raw counters -------------------------------------------------------
    def monotonic_ns(self) -> int:
        """CLOCK_MONOTONIC: nanoseconds since node boot.  Ticks in SMM."""
        ns = self.engine.now + self.boot_offset_ns
        if self._skew_ppm:
            ns += self._skew_accum_ns + int(
                (self.engine.now - self._skew_base_ns) * (self._skew_ppm * 1e-6))
        elif self._skew_accum_ns:
            ns += self._skew_accum_ns
        return ns

    def rdtsc(self) -> int:
        """Time-stamp counter value.  Free-running; ticks in SMM.  This is
        what the SMI driver uses to self-measure SMI latency (§III.B)."""
        return int(self.monotonic_ns() * self.tsc_hz / 1e9)

    def tsc_to_ns(self, tsc_delta: int) -> int:
        """Convert a TSC delta to nanoseconds."""
        return int(tsc_delta * 1e9 / self.tsc_hz)

    def jiffies(self) -> int:
        """Jiffy counter (1 kHz).  NOTE: real jiffies are incremented by
        the timer interrupt and therefore *stall* during SMM on a
        non-tickless kernel; this accessor returns the ideal value, and
        the interrupt-deferral effect is modeled where it matters (timer
        callbacks route through the node gate)."""
        return self.monotonic_ns() // JIFFY_NS

    def seconds(self) -> float:
        """Monotonic time as float seconds (convenience for reports)."""
        return self.monotonic_ns() / 1e9

    # -- snapshot/restore protocol (DESIGN.md §11) --------------------------
    def __snapshot__(self) -> dict:
        return {
            "skew_ppm": self._skew_ppm,
            "skew_base_ns": self._skew_base_ns,
            "skew_accum_ns": self._skew_accum_ns,
        }

    def __restore__(self, state: dict) -> None:
        self._skew_ppm = state["skew_ppm"]
        self._skew_base_ns = state["skew_base_ns"]
        self._skew_accum_ns = state["skew_accum_ns"]
