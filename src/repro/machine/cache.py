"""Occupancy-based cache contention model.

The paper selects Convolve configurations by *measured* miss rate (~1 %
vs ~70 % of ~20 M references, via cachegrind) and attributes part of the
HTT story to siblings sharing a cache (§II.B: "two cache-friendly threads
can compete with one another and cause more cache misses than would
otherwise occur").

Model
-----
A profile's ``base_miss_rate`` is its miss rate **when running alone** —
exactly what cachegrind measures and what the paper reports.  The solo
behaviour therefore needs no hierarchy math; the hierarchy only computes
*contention deltas* when tasks share cache levels:

* Each level has a capacity and a *sharing domain*: ``"core"`` (the HTT
  pair, like L1/L2 on Nehalem) or ``"socket"`` (LLC).
* Occupancy pressure of a task set at a level = Σ working sets / size.
  With LRU-like replacement a task keeps roughly ``1/pressure`` of its
  working set resident, so the miss rate inflates as

  ``miss(p) = base                       if p <= 1``
  ``miss(p) = base + (1-base)·(1 − 1/p)  if p  > 1``

* The *extra* misses caused by co-residents are
  ``miss(shared pressure) − miss(solo pressure)`` — zero for a task
  running alone, by construction.
* Extra misses at the **last** level (LLC) go to DRAM (full penalty);
  extra misses at **core** levels are caught by the LLC (medium
  penalty).  The worst core level dominates (taking the max keeps the
  model monotone: more co-residents never speed a task up — property-
  tested in ``tests/machine/test_cache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.machine.profile import WorkloadProfile

__all__ = ["CacheSpec", "CacheHierarchy", "pressure_miss_rate",
           "nehalem_hierarchy", "paper_r410_hierarchy"]

_DOMAINS = ("core", "socket")


@dataclass(frozen=True)
class CacheSpec:
    """One cache level: name, capacity in bytes, sharing domain."""

    name: str
    size_bytes: int
    domain: str  # "core" | "socket"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.domain not in _DOMAINS:
            raise ValueError(f"unknown sharing domain {self.domain!r}")


def pressure_miss_rate(base_miss: float, pressure: float) -> float:
    """Inflate ``base_miss`` by occupancy ``pressure`` (Σws / capacity)."""
    if pressure <= 1.0:
        return base_miss
    return base_miss + (1.0 - base_miss) * (1.0 - 1.0 / pressure)


class CacheHierarchy:
    """The stack of cache levels of one socket."""

    def __init__(self, levels: Sequence[CacheSpec]):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = tuple(levels)
        if not any(lv.domain == "socket" for lv in levels):
            raise ValueError("hierarchy needs a socket-level (last) cache")
        # Efficiency is a pure function of (profile, Σcore ws, Σsocket ws)
        # and the level geometry; sweeps revisit the same handful of keys
        # millions of times, so memoize (returns the exact float computed
        # on first sight — bit-identical to the uncached path).
        self._eff_cache: dict = {}

    def contention(
        self,
        profile: WorkloadProfile,
        core_coresidents: Iterable[WorkloadProfile],
        socket_coresidents: Iterable[WorkloadProfile],
    ) -> Tuple[float, float]:
        """Extra miss fractions ``(extra_dram, extra_mid)`` for ``profile``
        given the profiles sharing its core- and socket-level caches (both
        iterables *include* the task itself).
        """
        core_ws = sum(p.working_set_bytes for p in core_coresidents)
        socket_ws = sum(p.working_set_bytes for p in socket_coresidents)
        return self._contention_ws(profile, core_ws, socket_ws)

    def _contention_ws(
        self, profile: WorkloadProfile, core_ws: float, socket_ws: float
    ) -> Tuple[float, float]:
        own_ws = profile.working_set_bytes
        base = profile.base_miss_rate
        extra_dram = 0.0
        extra_mid = 0.0
        for level in self.levels:
            shared_ws = core_ws if level.domain == "core" else socket_ws
            solo = pressure_miss_rate(base, own_ws / level.size_bytes)
            shared = pressure_miss_rate(base, shared_ws / level.size_bytes)
            extra = max(0.0, shared - solo)
            if level.domain == "socket":
                extra_dram = max(extra_dram, extra)
            else:
                extra_mid = max(extra_mid, extra)
        s = profile.cache_sensitivity
        return extra_dram * s, extra_mid * s

    def efficiency(
        self,
        profile: WorkloadProfile,
        core_coresidents: Iterable[WorkloadProfile],
        socket_coresidents: Iterable[WorkloadProfile],
    ) -> float:
        """Absolute throughput multiplier for ``profile`` in this cache
        context: ``1 / cost_per_op`` including both the profile's solo
        behaviour and the contention extras.  A pure-register profile
        running alone gets 1.0; a 70 %-miss streaming profile gets its
        solo memory-bound efficiency even with no co-residents."""
        core_ws = sum(p.working_set_bytes for p in core_coresidents)
        socket_ws = sum(p.working_set_bytes for p in socket_coresidents)
        key = (profile, core_ws, socket_ws)
        eff = self._eff_cache.get(key)
        if eff is None:
            extra_dram, extra_mid = self._contention_ws(profile, core_ws, socket_ws)
            eff = 1.0 / profile.cost_per_op(extra_dram, extra_mid)
            self._eff_cache[key] = eff
        return eff

    def efficiency_solo(self, profile: WorkloadProfile) -> float:
        """:meth:`efficiency` for a profile that is alone at both sharing
        levels — the steady state of one-rank-per-node sweeps.  The
        context sums collapse to the profile's own working set, so the
        memo key is ``(profile, ws, ws)``: the same key (and the same
        float) the general path produces for this configuration."""
        ws = profile.working_set_bytes
        key = (profile, ws, ws)
        eff = self._eff_cache.get(key)
        if eff is None:
            extra_dram, extra_mid = self._contention_ws(profile, ws, ws)
            eff = 1.0 / profile.cost_per_op(extra_dram, extra_mid)
            self._eff_cache[key] = eff
        return eff

    def efficiencies(
        self,
        profiles: Sequence[WorkloadProfile],
        core_coresidents: Iterable[WorkloadProfile],
        socket_coresidents: Iterable[WorkloadProfile],
    ) -> list:
        """:meth:`efficiency` for every profile of one CPU's resident
        set, sharing one context.  The working-set sums — identical for
        every item on the CPU — are folded once instead of once per item
        (same left-to-right ``sum`` order, so each returned float is the
        exact value :meth:`efficiency` computes)."""
        core_ws = sum(p.working_set_bytes for p in core_coresidents)
        socket_ws = sum(p.working_set_bytes for p in socket_coresidents)
        cache = self._eff_cache
        out = []
        for profile in profiles:
            key = (profile, core_ws, socket_ws)
            eff = cache.get(key)
            if eff is None:
                extra_dram, extra_mid = self._contention_ws(
                    profile, core_ws, socket_ws)
                eff = 1.0 / profile.cost_per_op(extra_dram, extra_mid)
                cache[key] = eff
            out.append(eff)
        return out


def nehalem_hierarchy(l1_kb: int = 32, l2_kb: int = 256, l3_mb: int = 8) -> CacheHierarchy:
    """A realistic Nehalem-generation hierarchy (E5520/E5620 family):
    32 KB L1 + 256 KB L2 per core, shared L3 per socket."""
    return CacheHierarchy(
        [
            CacheSpec("L1d", l1_kb << 10, "core"),
            CacheSpec("L2", l2_kb << 10, "core"),
            CacheSpec("L3", l3_mb << 20, "socket"),
        ]
    )


def paper_r410_hierarchy() -> CacheHierarchy:
    """The hierarchy exactly as the paper reports it for the R410 servers
    (§IV.A): "4MB L1, 8MB L2, and 24MB L3 caches".  Those numbers read as
    per-chip aggregates rather than per-core sizes, but we honour the
    paper's description for the multithreaded experiments."""
    return CacheHierarchy(
        [
            CacheSpec("L1", 4 << 20, "core"),
            CacheSpec("L2", 8 << 20, "core"),
            CacheSpec("L3", 24 << 20, "socket"),
        ]
    )
