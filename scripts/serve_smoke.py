#!/usr/bin/env python
"""CI serve smoke: the sweep-serving daemon survives what CI throws at it.

Four drills against a real daemon (real unix socket, real worker
subprocesses), mirroring the acceptance criteria verbatim:

1. kill -9 one worker mid-cell: the in-flight attempt is retried on a
   respawned worker and the submission still succeeds (attempts=2).
2. serve a sweep, then resubmit it: the resubmission must be >= 90%
   cache hits and the two ``--out`` result documents byte-identical.
3. kill -9 the *daemon* mid-sweep, restart it on the same state dir:
   the journal replays the accepted jobs and a resubmit completes with
   a result document byte-identical to an uninterrupted serve.
4. a poisoned cell is quarantined after bounded retries without taking
   the pool down; the daemon keeps serving other cells.

Usage: serve_smoke.py [WORKDIR]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(HERE, "src")
if os.path.isdir(os.path.join(SRC, "repro")):
    sys.path.insert(0, SRC)

from repro.runx import CellSpec  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402


def _env(**extra):
    env = dict(os.environ)
    if os.path.isdir(os.path.join(SRC, "repro")):
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS_PLAN", None)
    env.pop("REPRO_FAULT_PLAN", None)
    env.update(extra)
    return env


def _cli(args, **kw):
    return subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                          capture_output=True, text=True, **kw)


def start_daemon(work, state, **flags):
    args = [sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", state, "--workers", "2"]
    for flag, value in flags.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    sock = os.path.join(state, "serve.sock")
    # After a kill -9 the old socket file survives; clear it so the wait
    # below can only be satisfied by the *new* daemon actually answering.
    try:
        os.unlink(os.path.join(work, sock))
    except OSError:
        pass
    log = open(os.path.join(work, os.path.basename(state) + ".log"), "ab")
    proc = subprocess.Popen(args, env=_env(), cwd=work,
                            stdout=log, stderr=log)
    probe = ServeClient(socket_path=os.path.join(work, sock), timeout_s=5)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        try:
            probe.status()
            return proc, sock
        except ServeError:
            pass
        assert proc.poll() is None, f"daemon died at boot (see {log.name})"
        time.sleep(0.1)
    raise AssertionError("daemon never answered on its socket")


def stop_daemon(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)


def counters(client):
    return client.status()["counters"]


def main(argv):
    work = os.path.abspath(argv[1] if len(argv) > 1
                           else tempfile.mkdtemp(prefix="serve-smoke-"))
    os.makedirs(work, exist_ok=True)

    print("== drill 1: kill -9 a worker mid-cell; the retry succeeds ==")
    daemon, sock = start_daemon(work, "state1", max_attempts=3)
    client = ServeClient(socket_path=os.path.join(work, sock))
    slow = CellSpec(id="smoke slow", fn="synthetic",
                    params={"sleep_s": 5.0, "value": 2.0}, base_seed=11)
    fast = CellSpec(id="smoke fast", fn="synthetic",
                    params={"value": 3.0}, base_seed=12)
    client.submit([slow.to_record()], wait=False)
    victim = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and victim is None:
        for w in client.status()["workers"]:
            if w["state"] == "busy" and w["pid"]:
                victim = w["pid"]
        time.sleep(0.05)
    assert victim is not None, "no worker ever went busy"
    os.kill(victim, signal.SIGKILL)
    # waiting resubmission coalesces onto the replayed-after-kill attempt
    rep = client.submit([slow.to_record(), fast.to_record()])
    by_id = {c["id"]: c for c in rep["cells"]}
    assert by_id["smoke slow"]["status"] == "ok", by_id
    assert by_id["smoke slow"]["attempts"] == 2, \
        f"expected the killed attempt retried once: {by_id['smoke slow']}"
    assert by_id["smoke fast"]["status"] == "ok"
    c = counters(client)
    assert c["serve.jobs.requeued"] >= 1, c
    assert c["serve.workers.restarts"] >= 1, c
    print(f"   worker pid {victim} killed; attempt retried on a fresh "
          f"worker (restarts={c['serve.workers.restarts']})")

    print("== drill 2: resubmission served from cache, byte-identical ==")
    r1, r2 = os.path.join(work, "r1.json"), os.path.join(work, "r2.json")
    sub1 = _cli(["submit", "table2", "--quick", "--socket", sock,
                 "--out", r1], env=_env(), cwd=work)
    assert sub1.returncode == 0, (sub1.stdout, sub1.stderr)
    before = counters(client)["serve.jobs.completed"]
    sub2 = _cli(["submit", "table2", "--quick", "--socket", sock,
                 "--out", r2], env=_env(), cwd=work)
    assert sub2.returncode == 0, (sub2.stdout, sub2.stderr)
    cells = json.load(open(r2))["cells"]
    c = counters(client)
    recomputed = c["serve.jobs.completed"] - before
    assert recomputed <= 0.1 * len(cells), \
        f"resubmission recomputed {recomputed}/{len(cells)} cells"
    assert c["serve.cache.hits"] >= 0.9 * len(cells), c
    assert open(r1, "rb").read() == open(r2, "rb").read(), \
        "served result documents must be byte-identical"
    assert sub1.stdout == sub2.stdout, "rendered tables must match"
    stop_daemon(daemon)
    print(f"   {len(cells)} cells: 100% served from cache, byte-identical")

    print("== drill 3: kill -9 the daemon mid-sweep; restart; resubmit ==")
    daemon, sock = start_daemon(work, "state3")
    client = ServeClient(socket_path=os.path.join(work, sock))
    mid = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "submit", "table2", "--quick",
         "--socket", sock, "--out", os.path.join(work, "doomed.json")],
        env=_env(), cwd=work,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    cache3 = os.path.join(work, "state3", "cache")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        done = sum(len(fs) for _, _, fs in os.walk(cache3))
        if done >= 3:
            break
        time.sleep(0.05)
    assert done >= 3, "no cells completed before the kill"
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()
    mid.wait(timeout=120)
    assert mid.returncode != 0, "client must notice its daemon died"
    journal = os.path.join(work, "state3", "queue.jsonl")
    pending = sum(1 for line in open(journal)
                  if json.loads(line).get("kind") == "job")
    daemon, sock = start_daemon(work, "state3")
    client = ServeClient(socket_path=os.path.join(work, sock))
    replayed = counters(client)["serve.jobs.replayed"]
    r3 = os.path.join(work, "r3.json")
    sub3 = _cli(["submit", "table2", "--quick", "--socket", sock,
                 "--out", r3], env=_env(), cwd=work)
    assert sub3.returncode == 0, (sub3.stdout, sub3.stderr)
    assert open(r3, "rb").read() == open(r1, "rb").read(), \
        "post-crash results must be byte-identical to an undisturbed serve"
    assert sub3.stdout == sub1.stdout
    print(f"   daemon killed with {pending} accepted jobs journaled; "
          f"restart replayed {replayed}, results byte-identical")

    print("== drill 4: poisoned cell quarantined; the pool survives ==")
    bad = CellSpec(id="smoke poison", fn="synthetic",
                   params={"raise": "poisoned"}, base_seed=13)
    stop_daemon(daemon)
    daemon, sock = start_daemon(work, "state4", max_attempts=2)
    client = ServeClient(socket_path=os.path.join(work, sock))
    rep = client.submit([bad.to_record()])
    assert rep["cells"][0]["status"] == "quarantined", rep
    assert rep["cells"][0]["attempts"] == 2
    rep = client.submit([bad.to_record(), fast.to_record()])
    by_id = {c["id"]: c for c in rep["cells"]}
    assert by_id["smoke poison"]["status"] == "quarantined"
    assert rep["stats"]["quarantined"] == 1
    assert by_id["smoke fast"]["status"] == "ok", \
        "the daemon must keep serving around a quarantined cell"
    c = counters(client)
    assert c["serve.jobs.quarantined"] == 1, c
    stop_daemon(daemon)

    print("ok: worker kill retried, resubmission 100% cached and "
          "byte-identical, daemon crash replayed and matched, poisoned "
          "cell circuit-broken")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
