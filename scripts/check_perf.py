#!/usr/bin/env python
"""Perf gate: fail CI when the simulator's hot loops regress.

Compares a fresh ``BENCH_perf.json`` (from ``scripts/bench_perf.py``)
against the committed baseline
(``benchmarks/results/BENCH_perf_baseline.json``) and exits nonzero if
any gated bench's wall clock regressed more than the allowed fraction.
Three kinds of gate:

* **Churn benches** (``engine_churn``, ``rate_churn``; default budget
  20%) — deterministic, allocation-light, dominated by the interpreter,
  so a >20% move on a warm runner is a real code regression, not
  scheduling noise.

* **Cell benches** (``bt_cell``, ``ft_cell``; default budget 35% via
  ``--max-cell-regression``) — full Table-1/3 cells.  Noisier (imports,
  allocator pressure, real heap churn), hence the looser tolerance;
  their *correctness* is already pinned by the golden-cell identity
  tests, this gate only catches a hot-path collapse.

* **Speedup floors** (``--min-speedup``, default ``fork_sweep=1.5``) —
  benches whose whole point is to beat the baseline: the committed
  ``fork_sweep`` baseline entry was recorded with ``REPRO_SNAPSHOT=off``
  (every interval cold), so the current run must clear the floor for
  the warmup-prefix fork path to be pulling its weight.  A floor is
  skipped with a note when either side lacks the bench (pre-fork
  baselines stay usable).

The two documents must be comparable: same ``quick`` flag (quick mode
scales the workloads down 10×) — mismatches are an error, not a pass.

Usage::

    python scripts/bench_perf.py --reps 3 -o BENCH_gate.json
    python scripts/check_perf.py BENCH_gate.json

Exit codes: 0 within budget, 1 regression, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    "benchmarks", "results", "BENCH_perf_baseline.json")
DEFAULT_GATED = ("engine_churn", "rate_churn")
DEFAULT_CELL_GATED = ("bt_cell", "ft_cell")
DEFAULT_MIN_SPEEDUP = ("fork_sweep=1.5",)


def _parse_floors(entries) -> dict:
    floors = {}
    for e in entries:
        name, _, ratio = e.partition("=")
        floors[name.strip()] = float(ratio) if ratio else 1.0
    return floors


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_perf.json to check")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--max-regression", type=float,
                    default=float(os.environ.get(
                        "REPRO_PERF_MAX_REGRESSION", "0.20")),
                    help="allowed fractional wall-clock regression for "
                         "churn benches (default 0.20; env "
                         "REPRO_PERF_MAX_REGRESSION)")
    ap.add_argument("--max-cell-regression", type=float,
                    default=float(os.environ.get(
                        "REPRO_PERF_MAX_CELL_REGRESSION", "0.35")),
                    help="allowed fractional regression for the noisier "
                         "cell benches (default 0.35; env "
                         "REPRO_PERF_MAX_CELL_REGRESSION)")
    ap.add_argument("--bench", action="append", default=None,
                    help="gate this churn bench (repeatable; default "
                         f"{', '.join(DEFAULT_GATED)})")
    ap.add_argument("--cell-bench", action="append", default=None,
                    help="gate this cell bench at the looser tolerance "
                         "(repeatable; default "
                         f"{', '.join(DEFAULT_CELL_GATED)})")
    ap.add_argument("--min-speedup", action="append", default=None,
                    metavar="NAME=RATIO",
                    help="require current to be RATIO× faster than the "
                         "baseline for NAME (repeatable; default "
                         f"{', '.join(DEFAULT_MIN_SPEEDUP)})")
    args = ap.parse_args(argv)

    try:
        with open(args.current, encoding="utf-8") as fp:
            cur = json.load(fp)
        with open(args.baseline, encoding="utf-8") as fp:
            base = json.load(fp)
    except (OSError, ValueError) as exc:
        print(f"check_perf: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if bool(cur.get("quick")) != bool(base.get("quick")):
        print("check_perf: quick/full mismatch between current "
              f"(quick={cur.get('quick')}) and baseline "
              f"(quick={base.get('quick')}); workloads are not comparable",
              file=sys.stderr)
        return 2

    gated = [(n, args.max_regression)
             for n in (args.bench or list(DEFAULT_GATED))]
    gated += [(n, args.max_cell_regression)
              for n in (args.cell_bench or list(DEFAULT_CELL_GATED))]
    failures = []
    for name, budget in gated:
        c = cur.get("benches", {}).get(name)
        b = base.get("benches", {}).get(name)
        if not c or not c.get("wall_s"):
            print(f"check_perf: bench {name!r} missing from {args.current}",
                  file=sys.stderr)
            return 2
        if not b or not b.get("wall_s"):
            print(f"check_perf: bench {name!r} missing from baseline "
                  f"{args.baseline}", file=sys.stderr)
            return 2
        ratio = c["wall_s"] / b["wall_s"]
        verdict = "OK"
        if ratio > 1.0 + budget:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"check_perf: {name:<14} {b['wall_s']:.4f}s -> "
              f"{c['wall_s']:.4f}s  ({ratio:.3f}x baseline, "
              f"budget {100 * budget:.0f}%)  {verdict}")

    floors = _parse_floors(args.min_speedup or list(DEFAULT_MIN_SPEEDUP))
    for name, floor in sorted(floors.items()):
        c = cur.get("benches", {}).get(name)
        b = base.get("benches", {}).get(name)
        if not c or not c.get("wall_s") or not b or not b.get("wall_s"):
            print(f"check_perf: {name:<14} speedup floor {floor:.2f}x "
                  "skipped (bench absent on one side)")
            continue
        speedup = b["wall_s"] / c["wall_s"]
        verdict = "OK"
        if speedup < floor:
            verdict = "BELOW FLOOR"
            failures.append(name)
        print(f"check_perf: {name:<14} {b['wall_s']:.4f}s -> "
              f"{c['wall_s']:.4f}s  ({speedup:.2f}x speedup, "
              f"floor {floor:.2f}x)  {verdict}")

    if failures:
        print(f"check_perf: FAIL — {', '.join(failures)} outside budget "
              f"vs {args.baseline}", file=sys.stderr)
        return 1
    print("check_perf: all gated benches within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
