#!/usr/bin/env python
"""Perf gate: fail CI when the simulator's hot loops regress.

Compares a fresh ``BENCH_perf.json`` (from ``scripts/bench_perf.py``)
against the committed baseline
(``benchmarks/results/BENCH_perf_baseline.json``) and exits nonzero if
any gated bench's wall clock regressed more than the allowed fraction
(default 20%).  Only the pure-simulator churn benches are gated by
default — ``engine_churn`` and ``rate_churn`` are deterministic,
allocation-light, and dominated by the interpreter, so a >20% move on a
warm runner is a real code regression, not scheduling noise.  The cell
benches stay informational (they are noisier and already covered by the
golden-cell identity tests).

The two documents must be comparable: same ``quick`` flag (quick mode
scales the workloads down 10×) — mismatches are an error, not a pass.

Usage::

    python scripts/bench_perf.py --reps 3 --only engine_churn \
        --only rate_churn -o BENCH_gate.json
    python scripts/check_perf.py BENCH_gate.json

Exit codes: 0 within budget, 1 regression, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    "benchmarks", "results", "BENCH_perf_baseline.json")
DEFAULT_GATED = ("engine_churn", "rate_churn")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_perf.json to check")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--max-regression", type=float,
                    default=float(os.environ.get(
                        "REPRO_PERF_MAX_REGRESSION", "0.20")),
                    help="allowed fractional wall-clock regression "
                         "(default 0.20; env REPRO_PERF_MAX_REGRESSION)")
    ap.add_argument("--bench", action="append", default=None,
                    help="gate this bench (repeatable; default "
                         f"{', '.join(DEFAULT_GATED)})")
    args = ap.parse_args(argv)

    try:
        with open(args.current, encoding="utf-8") as fp:
            cur = json.load(fp)
        with open(args.baseline, encoding="utf-8") as fp:
            base = json.load(fp)
    except (OSError, ValueError) as exc:
        print(f"check_perf: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if bool(cur.get("quick")) != bool(base.get("quick")):
        print("check_perf: quick/full mismatch between current "
              f"(quick={cur.get('quick')}) and baseline "
              f"(quick={base.get('quick')}); workloads are not comparable",
              file=sys.stderr)
        return 2

    gated = args.bench or list(DEFAULT_GATED)
    failures = []
    for name in gated:
        c = cur.get("benches", {}).get(name)
        b = base.get("benches", {}).get(name)
        if not c or not c.get("wall_s"):
            print(f"check_perf: bench {name!r} missing from {args.current}",
                  file=sys.stderr)
            return 2
        if not b or not b.get("wall_s"):
            print(f"check_perf: bench {name!r} missing from baseline "
                  f"{args.baseline}", file=sys.stderr)
            return 2
        ratio = c["wall_s"] / b["wall_s"]
        verdict = "OK"
        if ratio > 1.0 + args.max_regression:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"check_perf: {name:<14} {b['wall_s']:.4f}s -> "
              f"{c['wall_s']:.4f}s  ({ratio:.3f}x baseline)  {verdict}")
    if failures:
        print(f"check_perf: FAIL — {', '.join(failures)} regressed more "
              f"than {100 * args.max_regression:.0f}% vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"check_perf: all gated benches within "
          f"{100 * args.max_regression:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
