#!/usr/bin/env python
"""CI smoke check: the observability artifacts parse and are non-trivial.

Usage: check_artifacts.py MANIFEST.json TRACE.json [RECORDS.jsonl]

The first file may be either a sweep manifest or a ``repro-smm explain``
attribution report (detected by its ``components`` block).
"""

import json
import sys


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    manifest_path, trace_path = argv[1], argv[2]

    man = json.load(open(manifest_path))
    if "components" in man:
        # An attribution report from `repro-smm explain --report`.
        c = man["components"]
        total = sum(c[k] for k in ("direct_smi_s", "induced_wait_s",
                                   "contention_s", "residual_s"))
        assert abs(total - man["slowdown_s"]) < 1e-4, \
            "attribution components do not sum to the slowdown"
        assert man["conservation"]["ok"], "conservation check failed"
        assert man["wait_states"], "report has no wait-state census"
        assert man["per_rank"], "report has no per-rank series"
    else:
        assert man["matrix"], "manifest has no planned matrix"
        assert man["cells"], "manifest has no measured cells"
        assert man["calibration"], "manifest is missing calibration constants"
        assert all("base_seed" in c for c in man["matrix"]), \
            "matrix cells must carry re-run seeds"

    doc = json.load(open(trace_path))
    events = doc["traceEvents"]
    assert events, "empty trace"
    smm = [e for e in events if e.get("ph") == "X" and e.get("name") == "SMM"]
    assert smm, "no SMM duration events in the long-SMI scenario"
    assert all(e["args"]["duration_ns"] > 0 for e in smm)

    n_jsonl = 0
    if len(argv) > 3:
        with open(argv[3]) as fp:
            n_jsonl = sum(1 for line in fp if json.loads(line)["kind"])
        assert n_jsonl > 0, "empty jsonl dump"

    head = (f"report {man['bench']}.{man['class']} n={man['nodes']}"
            if "components" in man else f"manifest {len(man['cells'])} cells")
    print(f"ok: {head}, trace {len(events)} "
          f"events ({len(smm)} SMM windows), jsonl {n_jsonl} lines")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
