#!/usr/bin/env python
"""CI smoke check: the observability artifacts parse and are non-trivial.

Usage: check_artifacts.py MANIFEST.json TRACE.json [RECORDS.jsonl]
"""

import json
import sys


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    manifest_path, trace_path = argv[1], argv[2]

    man = json.load(open(manifest_path))
    assert man["matrix"], "manifest has no planned matrix"
    assert man["cells"], "manifest has no measured cells"
    assert man["calibration"], "manifest is missing calibration constants"
    assert all("base_seed" in c for c in man["matrix"]), \
        "matrix cells must carry re-run seeds"

    doc = json.load(open(trace_path))
    events = doc["traceEvents"]
    assert events, "empty trace"
    smm = [e for e in events if e.get("ph") == "X" and e.get("name") == "SMM"]
    assert smm, "no SMM duration events in the long-SMI scenario"
    assert all(e["args"]["duration_ns"] > 0 for e in smm)

    n_jsonl = 0
    if len(argv) > 3:
        with open(argv[3]) as fp:
            n_jsonl = sum(1 for line in fp if json.loads(line)["kind"])
        assert n_jsonl > 0, "empty jsonl dump"

    print(f"ok: manifest {len(man['cells'])} cells, trace {len(events)} "
          f"events ({len(smm)} SMM windows), jsonl {n_jsonl} lines")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
