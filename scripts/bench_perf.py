#!/usr/bin/env python
"""Simulator performance microbenchmarks → ``BENCH_perf.json``.

The perf trajectory of this repo: every run emits one JSON document

    {"benches": {name: {"wall_s": float, "events": int|null,
                        "events_per_s": float|null}},
     "reps": int, "quick": bool, "python": "3.x.y",
     "numpy": "x.y.z"|null, "engine": "py"|"vec"}

and, when a baseline file is available (``--baseline``, default
``benchmarks/results/BENCH_perf_baseline.json``), a ``"speedup"``
section with per-bench wall-clock ratios (baseline / current; > 1 is
faster than the recorded baseline).

Benches
-------
``engine_churn``
    Raw event-loop throughput: many interleaved generator processes
    sleeping, waking each other through events, and racing timeouts
    (cancellation pressure).  ``events`` is the number of heap pushes.
``rate_churn``
    Rate-executor reassignment throughput at table-sweep occupancy (16
    items — the scalar regime under both engines; see ``rate_vec`` for
    the vector regime).  ``events`` counts item-rate updates applied.
``rate_vec``
    The same churn shape at 256 resident items — past
    ``VecRateExecutor.VEC_MIN``, so under ``REPRO_ENGINE=vec`` the
    numpy sync/reschedule kernels carry every pass (scalar loops under
    ``REPRO_ENGINE=py``).  ``events`` counts item-rate updates applied.
``bt_cell``
    One Table-1 cell: NPB BT class A on 16 single-rank nodes under the
    long-SMI profile (the tentpole's ≥1.5× target cell).
``ft_cell``
    One Table-3/5-style cell: NPB FT class A on 4 nodes × 4 ranks.
``figure1_line``
    One Figure-1 left-panel line: Convolve cache-unfriendly on 8 CPUs,
    baseline + two SMI intervals.
``fork_sweep``
    One interval sweep through the warmup-prefix fork path
    (:mod:`repro.runx.forkshare`): NPB FT class A on 4 nodes × 4 ranks
    under the long-SMI profile, swept across four trigger intervals.
    With ``REPRO_SNAPSHOT=off`` every interval replays cold — that is
    how the committed baseline entry was recorded — so the speedup
    ratio *is* the fork path's payoff (the PR-9 gate: ≥ 1.5×).  The
    warm-prefix store is reset per rep, so each timed rep pays its own
    prefix warm plus one fork per remaining interval.

The emitted document also carries a ``"snapshot"`` header —
``{"mode", "forks", "hits", "misses"}`` from the warm-prefix store —
so a results file records whether (and how much) the fork path was in
play for the numbers it holds.

The cell benches report ``events`` too (engine heap pushes), measured by
one extra *untimed* run with a metrics registry attached — the timed
reps stay uninstrumented, so ``wall_s`` is comparable with historical
baselines while ``events_per_s`` becomes comparable across machines.

Methodology: one untimed warmup rep, then median of ``--reps`` (default
5) timed reps.  ``--quick`` switches to 1 rep of scaled-down workloads —
the CI smoke mode.  CI gates on ``engine_churn``/``rate_churn``
regressions via ``scripts/check_perf.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Callable, Dict, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

DEFAULT_BASELINE = os.path.join(
    "benchmarks", "results", "BENCH_perf_baseline.json")


# -- microbenches -------------------------------------------------------------

def engine_churn(scale: int) -> int:
    """Event-loop churn; returns the number of scheduled events."""
    from repro.simx.engine import AnyOf, Delay, Engine

    eng = Engine()
    n_procs = 32
    rounds = scale

    def sleeper(i: int):
        # Pure delay traffic at co-prime periods (heap reordering).
        for _ in range(rounds):
            yield Delay(7 + (i % 13))

    def pinger(ev_box, peer_box):
        # Event hand-off pairs: single-waiter succeed() fast path.
        for _ in range(rounds):
            yield ev_box[0]
            ev_box[0] = eng.event()
            peer_box[0].succeed()
            peer_box[0] = eng.event()

    def racer():
        # AnyOf(event, timeout): every round cancels a pending wait.
        for r in range(rounds):
            ev = eng.event()
            eng.schedule(3 if r % 2 else 9, ev.succeed, None)
            yield AnyOf([ev, eng.timeout(6)])

    for i in range(n_procs):
        eng.process(sleeper(i), name=f"sleep{i}")
    for i in range(0, 8, 2):
        a_ev, b_ev = [eng.event()], [eng.event()]
        eng.process(pinger(a_ev, b_ev), name=f"ping{i}")
        eng.process(pinger(b_ev, a_ev), name=f"pong{i}")
        eng.schedule(1, a_ev[0].succeed)
    for i in range(4):
        eng.process(racer(), name=f"race{i}")
    eng.run()
    return eng._seq


def rate_churn(scale: int) -> int:
    """Rate-executor reassignment churn; returns item-rate updates applied."""
    from repro.simx.engine import Engine
    from repro.simx.rate import WorkItem, make_rate_executor

    eng = Engine()
    done = []
    ex = make_rate_executor(eng, done.append)
    n_items = 16
    items = [WorkItem(eng, demand=1e15, name=f"w{j}") for j in range(n_items)]
    for it in items:
        ex.add(it)
    updates = 0

    def churner():
        nonlocal updates
        for r in range(scale):
            if r % 7 == 3:
                # Same-instant freeze/unfreeze pair (zero-dt coalescing).
                ex.set_rates({it: 0.0 for it in items})
                updates += n_items
            rates = {it: 0.5 + ((r + j) % 5) for j, it in enumerate(items)}
            ex.set_rates(rates)
            updates += n_items
            yield 50  # ns between reassignment bursts

    eng.process(churner(), name="churn")
    eng.run()
    return updates


def rate_vec(scale: int) -> int:
    """Vector-regime churn: one executor holding 256 items (past
    ``VecRateExecutor.VEC_MIN``), full positional reassignment each
    burst; returns item-rate updates applied."""
    from repro.simx.engine import Engine
    from repro.simx.rate import WorkItem, make_rate_executor

    eng = Engine()
    done = []
    ex = make_rate_executor(eng, done.append)
    n_items = 256
    for j in range(n_items):
        ex.add(WorkItem(eng, demand=1e15, name=f"v{j}"))
    updates = 0

    def churner():
        nonlocal updates
        for r in range(scale):
            ex.set_rates_seq(
                [0.5 + ((r + j) % 5) for j in range(n_items)])
            updates += n_items
            yield 50  # ns between reassignment bursts

    eng.process(churner(), name="vchurn")
    eng.run()
    return updates


def bt_cell(metrics=None) -> int:
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    cfg = NasConfig("BT", NasClass("A"), nodes=16, ranks_per_node=1)
    run_nas_config(cfg, smm=2, seed=1, metrics=metrics)
    return 0


def ft_cell(metrics=None) -> int:
    from repro.apps.nas.params import NasClass
    from repro.apps.nas.study import NasConfig, run_nas_config

    cfg = NasConfig("FT", NasClass("A"), nodes=4, ranks_per_node=4)
    run_nas_config(cfg, smm=2, seed=1, metrics=metrics)
    return 0


def figure1_line(quick: bool, metrics=None) -> int:
    from repro.runx.cells import convolve_line_cell

    intervals = [50] if quick else [16, 50]
    convolve_line_cell(
        {"config": "CacheUnfriendly", "cpus": 8, "intervals_ms": intervals},
        seed=1, metrics=metrics,
    )
    return 0


#: Warm-prefix store accounting accumulated across ``fork_sweep`` reps,
#: surfaced in the output document's ``"snapshot"`` header.
FORK_STATS = {"forks": 0, "hits": 0, "misses": 0}

FORK_SWEEP_INTERVALS = [2000, 2200, 2400, 2600]  # jiffies (10ms ticks)


def fork_sweep(quick: bool) -> int:
    """One interval sweep of FT.A 4×4 smm=2 through the cell executor.

    Under ``REPRO_SNAPSHOT=auto`` the first interval warms a prefix per
    repetition seed and every later interval forks it; under ``off``
    each interval replays cold.  The store is reset up front so every
    timed rep measures warm-cost-plus-forks, not a free ride on the
    previous rep's prefixes.  Returns the fork count (0 when cold)."""
    from repro.runx.cells import run_cell
    from repro.runx.forkshare import global_store, reset_global_store

    reset_global_store()
    intervals = FORK_SWEEP_INTERVALS[:2] if quick else FORK_SWEEP_INTERVALS
    params = {"bench": "FT", "cls": "A", "nodes": 4, "rpn": 4,
              "smm": 2, "reps": 2}
    for iv in intervals:
        run_cell("nas", dict(params, interval=iv), 1)
    stats = global_store().stats()
    for k in FORK_STATS:
        FORK_STATS[k] += stats.get(k, 0)
    return 0


def _scheduled_events(fn: Callable[..., int]) -> int:
    """Engine heap pushes of one deterministic cell run, via one extra
    instrumented (and untimed) execution."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    fn(metrics=reg)
    inst = reg.get("engine.events.scheduled")
    return int(inst.value) if inst is not None else 0


# -- harness ------------------------------------------------------------------

def _time_one(fn: Callable[[], int]) -> Tuple[float, int]:
    t0 = time.perf_counter()
    events = fn()
    return time.perf_counter() - t0, events


def run_bench(
    name: str, fn: Callable[[], int], reps: int,
    events_fn: Optional[Callable[[], int]] = None,
) -> Dict[str, Optional[float]]:
    _time_one(fn)  # warmup (imports, allocator, branch caches)
    walls = []
    events = 0
    for _ in range(reps):
        w, events = _time_one(fn)
        walls.append(w)
    if events_fn is not None:
        events = events_fn()  # untimed instrumented run
    wall = statistics.median(walls)
    return {
        "wall_s": round(wall, 6),
        "events": events or None,
        "events_per_s": round(events / wall, 1) if events else None,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_perf.json")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="baseline JSON to compute speedups against "
                         "(missing file → no speedup section)")
    ap.add_argument("--reps", type=int, default=5,
                    help="timed reps per bench (median reported)")
    ap.add_argument("--quick", action="store_true",
                    help="1 rep of scaled-down workloads (CI smoke)")
    ap.add_argument("--only", action="append", default=None,
                    help="run only this bench (repeatable)")
    args = ap.parse_args(argv)

    reps = 1 if args.quick else args.reps
    scale = 2_000 if args.quick else 20_000
    vec_scale = max(1, scale // 4)  # 256 items/burst: same update budget
    benches: Dict[str, Tuple[Callable[[], int], Optional[Callable[[], int]]]] = {
        "engine_churn": (lambda: engine_churn(scale), None),
        "rate_churn": (lambda: rate_churn(scale), None),
        "rate_vec": (lambda: rate_vec(vec_scale), None),
        "bt_cell": (bt_cell, lambda: _scheduled_events(bt_cell)),
        "ft_cell": (ft_cell, lambda: _scheduled_events(ft_cell)),
        "figure1_line": (
            lambda: figure1_line(args.quick),
            lambda: _scheduled_events(
                lambda metrics=None: figure1_line(args.quick, metrics))),
        "fork_sweep": (lambda: fork_sweep(args.quick), None),
    }
    if args.only:
        unknown = set(args.only) - set(benches)
        if unknown:
            ap.error(f"unknown bench(es): {sorted(unknown)}")
        benches = {k: v for k, v in benches.items() if k in args.only}

    results: Dict[str, Dict] = {}
    for name, (fn, events_fn) in benches.items():
        print(f"[bench] {name} ...", flush=True)
        results[name] = run_bench(name, fn, reps, events_fn)
        r = results[name]
        eps = f", {r['events_per_s']:,.0f} ev/s" if r["events_per_s"] else ""
        print(f"[bench] {name}: {r['wall_s']:.4f}s{eps}", flush=True)

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    from repro.runx.forkshare import snapshot_mode
    from repro.simx.rate import current_engine
    doc = {
        "benches": results,
        "reps": reps,
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "engine": current_engine(),
        "snapshot": {"mode": snapshot_mode(), **FORK_STATS},
    }
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as fp:
            base = json.load(fp).get("benches", {})
        speedup = {}
        for name, r in results.items():
            b = base.get(name)
            if b and b.get("wall_s") and r.get("wall_s"):
                speedup[name] = round(b["wall_s"] / r["wall_s"], 3)
        doc["speedup"] = speedup
        for name, s in speedup.items():
            print(f"[bench] {name}: {s:.2f}x vs baseline")

    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"[bench] wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
