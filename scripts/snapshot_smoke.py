#!/usr/bin/env python
"""Snapshot smoke: one interval sweep forked vs cold, byte-diffed.

The CI-facing end-to-end check of the warmup-prefix fork path
(:mod:`repro.runx.forkshare`): run the same small interval sweep twice
through the real sweep runner — once with ``REPRO_SNAPSHOT=auto`` (the
forked path, batched into one worker per fork group) and once with
``REPRO_SNAPSHOT=off`` (every cell replays cold, individually) — and
require the two manifests to be **byte-identical** under the canonical
projection ``{id, status, value, seed}``.  ``duration_s`` and
``attempts`` are deliberately outside the projection: they describe how
the work was scheduled, not what it computed, and the whole point of
the fork path is that only the scheduling changes.

Exits 0 on identity (printing both manifests' digests and the fork
counts that prove the forked leg actually forked), 1 on any divergence
(printing a per-cell diff), 2 when the fork path is unavailable on this
platform.

Usage::

    python scripts/snapshot_smoke.py [--nodes 2] [--rpn 2] [--reps 1]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

DEFAULT_INTERVALS = [1000, 1200, 1400]


def _run_sweep(specs, snapshot_mode: str):
    """One process-isolated sweep pass under the given REPRO_SNAPSHOT."""
    from repro.runx.runner import SweepRunner

    prior = os.environ.get("REPRO_SNAPSHOT")
    os.environ["REPRO_SNAPSHOT"] = snapshot_mode
    try:
        runner = SweepRunner(isolation="process", retries=1)
        results = runner.run(specs)
        return results, dict(runner.snapshot_stats)
    finally:
        if prior is None:
            del os.environ["REPRO_SNAPSHOT"]
        else:
            os.environ["REPRO_SNAPSHOT"] = prior


def _project(results) -> str:
    """Canonical manifest bytes: the payload-bearing fields only."""
    rows = [
        {"id": r.id, "status": r.status, "value": r.value, "seed": r.seed}
        for _, r in sorted(results.items())
    ]
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default="FT")
    ap.add_argument("--cls", default="A")
    ap.add_argument("--nodes", type=int, default=2)
    ap.add_argument("--rpn", type=int, default=2)
    ap.add_argument("--smm", type=int, default=2)
    ap.add_argument("--reps", type=int, default=1)
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--intervals", type=int, nargs="+",
                    default=DEFAULT_INTERVALS)
    args = ap.parse_args(argv)

    from repro.apps.nas.params import NasClass
    from repro.harness.mpi_tables import interval_sweep_specs
    from repro.runx.forkshare import fork_supported

    if not fork_supported():
        print("snapshot_smoke: os.fork unavailable; nothing to smoke",
              file=sys.stderr)
        return 2

    specs = interval_sweep_specs(
        args.bench, NasClass(args.cls), args.nodes, args.rpn, args.smm,
        args.intervals, reps=args.reps, seed=args.seed)
    print(f"snapshot_smoke: {len(specs)} cells "
          f"({args.bench}.{args.cls} n={args.nodes} rpn={args.rpn} "
          f"smm={args.smm}, intervals {sorted(set(args.intervals))})")

    forked, fstats = _run_sweep(specs, "auto")
    cold, cstats = _run_sweep(specs, "off")
    if fstats.get("forks", 0) + fstats.get("hits", 0) == 0:
        print("snapshot_smoke: FAIL — forked leg never forked "
              f"(stats {fstats})", file=sys.stderr)
        return 1
    if cstats.get("forks", 0) != 0:
        print("snapshot_smoke: FAIL — cold leg forked anyway "
              f"(stats {cstats})", file=sys.stderr)
        return 1

    blob_f, blob_c = _project(forked), _project(cold)
    dig_f = hashlib.sha256(blob_f.encode()).hexdigest()[:16]
    dig_c = hashlib.sha256(blob_c.encode()).hexdigest()[:16]
    print(f"snapshot_smoke: forked manifest {dig_f} "
          f"(forks={fstats.get('forks')}, hits={fstats.get('hits')}, "
          f"misses={fstats.get('misses')})")
    print(f"snapshot_smoke: cold   manifest {dig_c}")
    if blob_f == blob_c:
        print("snapshot_smoke: OK — forked and cold manifests are "
              "byte-identical")
        return 0

    print("snapshot_smoke: FAIL — manifests diverge", file=sys.stderr)
    for cid in sorted(set(forked) | set(cold)):
        f, c = forked.get(cid), cold.get(cid)
        frow = (f.status, f.value, f.seed) if f else None
        crow = (c.status, c.value, c.seed) if c else None
        if frow != crow:
            print(f"  {cid}:\n    forked: {frow}\n    cold:   {crow}",
                  file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
