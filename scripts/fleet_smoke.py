#!/usr/bin/env python
"""CI fleet smoke: the multi-host worker fleet survives hostile hosts.

Four drills against a real daemon (TCP listener, real agent processes,
real workproc children), mirroring the acceptance criteria:

1. kill -9 an agent mid-cell: the dropped connection revokes its leases
   instantly, the cells are re-granted to the surviving agent, and the
   sweep completes.
2. SIGSTOP an agent mid-cell (partition): its heartbeats stop, the lease
   expires and is re-granted under a bumped fencing token; on SIGCONT
   the zombie's late result is fenced (``accepted: false``) — the cell
   completes exactly once.
3. kill -9 the daemon mid-sweep with agents attached: the restart
   replays the journal, the agents reconnect by themselves, and the
   re-served sweep's result document is byte-identical to a plain
   single-host (local pool, no fleet) serve.
4. zero agents: a daemon with a local pool degrades gracefully to
   exactly the single-host behaviour; plus the ``serve
   clear-quarantine`` operator op, live and offline.

Usage: fleet_smoke.py [WORKDIR]
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

HERE = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(HERE, "src")
if os.path.isdir(os.path.join(SRC, "repro")):
    sys.path.insert(0, SRC)

from repro.runx import CellSpec  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402


def _env(**extra):
    env = dict(os.environ)
    if os.path.isdir(os.path.join(SRC, "repro")):
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS_PLAN", None)
    env.pop("REPRO_FAULT_PLAN", None)
    env.update(extra)
    return env


def _cli(args, **kw):
    return subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                          capture_output=True, text=True, **kw)


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def start_daemon(work, state, workers, port, **flags):
    args = [sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", state, "--workers", str(workers),
            "--tcp", f"127.0.0.1:{port}"]
    for flag, value in flags.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    sock = os.path.join(state, "serve.sock")
    try:
        os.unlink(os.path.join(work, sock))
    except OSError:
        pass
    log = open(os.path.join(work, os.path.basename(state) + ".log"), "ab")
    proc = subprocess.Popen(args, env=_env(), cwd=work,
                            stdout=log, stderr=log)
    probe = ServeClient(socket_path=os.path.join(work, sock), timeout_s=5)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        try:
            probe.status()
            return proc, sock
        except ServeError:
            pass
        assert proc.poll() is None, f"daemon died at boot (see {log.name})"
        time.sleep(0.1)
    raise AssertionError("daemon never answered on its socket")


def start_agent(work, name, port, **flags):
    args = [sys.executable, "-m", "repro.cli", "worker",
            "--connect", f"127.0.0.1:{port}", "--name", name,
            "--hb", "0.3", "--backoff", "0.2", "--max-backoff", "2.0"]
    for flag, value in flags.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    log = open(os.path.join(work, f"agent-{name}.log"), "ab")
    return subprocess.Popen(args, env=_env(), cwd=work,
                            stdout=log, stderr=log)


def stop(proc, sig=signal.SIGTERM, timeout=60):
    if proc.poll() is None:
        proc.send_signal(sig)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def wait_for(predicate, what, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def fleet(client):
    return client.status().get("fleet") or {}


def counters(client):
    return client.status()["counters"]


def _lease_held_by(client, name):
    for w in fleet(client).get("workers", []):
        if w["worker_id"].startswith(name + "#") and w["leases"]:
            return w
    return None


def main(argv):
    work = os.path.abspath(argv[1] if len(argv) > 1
                           else tempfile.mkdtemp(prefix="fleet-smoke-"))
    os.makedirs(work, exist_ok=True)
    sleepy = [CellSpec(id=f"fleet slow {i}", fn="synthetic",
                       params={"sleep_s": 2.0, "value": float(i)},
                       base_seed=20 + i).to_record() for i in range(4)]

    print("== drill 1: kill -9 an agent mid-cell; leases revoke; "
          "the survivor finishes ==")
    port = _free_port()
    daemon, sock = start_daemon(work, "state1", 0, port, lease_s=5)
    client = ServeClient(socket_path=os.path.join(work, sock))
    victim = start_agent(work, "victim", port)
    survivor = start_agent(work, "survivor", port)
    wait_for(lambda: len(fleet(client).get("workers", [])) == 2,
             "both agents to connect")
    done = {}

    def submit_wait():
        done["rep"] = client.submit(sleepy)

    waiter = threading.Thread(target=submit_wait)
    waiter.start()
    wait_for(lambda: _lease_held_by(client, "victim"),
             "the victim agent to hold a lease")
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    waiter.join(timeout=180)
    assert not waiter.is_alive(), "fleet sweep never completed"
    rep = done["rep"]
    assert all(c["status"] == "ok" for c in rep["cells"]), rep
    c = counters(client)
    assert c["serve.fleet.disconnects"] >= 1, c
    assert c["serve.jobs.requeued"] >= 1, c
    assert c["serve.jobs.completed"] == len(sleepy), c
    print(f"   agent pid {victim.pid} SIGKILLed; "
          f"{c['serve.jobs.requeued']:g} lease(s) revoked and requeued; "
          "sweep completed on the survivor")

    print("== drill 2: SIGSTOP an agent (partition); lease expires and "
          "re-grants; the thawed zombie is fenced ==")
    lone = CellSpec(id="fleet partition", fn="synthetic",
                    params={"sleep_s": 2.5, "value": 9.0}, base_seed=31)
    stop(survivor)
    stop(daemon)
    port = _free_port()
    daemon, sock = start_daemon(work, "state2", 0, port, lease_s=1.5)
    client = ServeClient(socket_path=os.path.join(work, sock))
    zombie = start_agent(work, "zombie", port)
    wait_for(lambda: len(fleet(client).get("workers", [])) == 1,
             "the zombie agent to connect")
    done = {}
    waiter = threading.Thread(
        target=lambda: done.update(rep=client.submit([lone.to_record()])))
    waiter.start()
    wait_for(lambda: _lease_held_by(client, "zombie"),
             "the zombie to hold the lease")
    os.kill(zombie.pid, signal.SIGSTOP)  # the workproc child keeps going
    wait_for(lambda: counters(client)["serve.fleet.leases.expired"] >= 1,
             "the frozen agent's lease to expire", timeout=30)
    rescuer = start_agent(work, "rescuer", port)
    waiter.join(timeout=120)
    assert not waiter.is_alive(), "re-granted cell never completed"
    assert done["rep"]["cells"][0]["status"] == "ok", done["rep"]
    os.kill(zombie.pid, signal.SIGCONT)
    # The thawed agent delivers its stale result; the daemon must fence
    # it rather than double-commit.
    wait_for(lambda: counters(client)["serve.fleet.leases.fenced"] >= 1,
             "the zombie's stale result to be fenced", timeout=30)
    c = counters(client)
    assert c["serve.jobs.completed"] == 1, \
        f"the cell must complete exactly once: {c}"
    stop(zombie)
    stop(rescuer)
    print(f"   lease expired after {1.5}s of silence, re-granted under a "
          "bumped token; the zombie's late result was fenced; "
          "exactly one commit")

    print("== drill 3: kill -9 the daemon under fleet load; agents "
          "reconnect; results byte-identical to a local serve ==")
    # Reference: a plain single-host serve (local pool, no agents).
    refport = _free_port()
    refd, refsock = start_daemon(work, "state3-local", 2, refport)
    ref = os.path.join(work, "local.json")
    sub = _cli(["submit", "table2", "--quick", "--socket", refsock,
                "--out", ref], env=_env(), cwd=work)
    assert sub.returncode == 0, (sub.stdout, sub.stderr)
    stop(refd)
    # The fleet run, interrupted by a daemon kill -9 mid-sweep.
    port = _free_port()
    daemon, sock = start_daemon(work, "state3", 0, port, lease_s=5)
    agents = [start_agent(work, f"fleet{i}", port) for i in range(2)]
    client = ServeClient(socket_path=os.path.join(work, sock))
    wait_for(lambda: len(fleet(client).get("workers", [])) == 2,
             "both fleet agents to connect")
    doomed = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "submit", "table2", "--quick",
         "--socket", sock, "--out", os.path.join(work, "doomed.json")],
        env=_env(), cwd=work,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    cache3 = os.path.join(work, "state3", "cache")
    wait_for(lambda: sum(len(fs) for _, _, fs in os.walk(cache3)) >= 3,
             "some cells to complete before the kill", timeout=120)
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()
    doomed.wait(timeout=120)
    assert doomed.returncode != 0, "client must notice its daemon died"
    daemon, sock = start_daemon(work, "state3", 0, port, lease_s=5)
    client = ServeClient(socket_path=os.path.join(work, sock))
    replayed = counters(client)["serve.jobs.replayed"]
    wait_for(lambda: len(fleet(client).get("workers", [])) == 2,
             "the agents to reconnect to the restarted daemon")
    out = os.path.join(work, "fleet.json")
    sub = _cli(["submit", "table2", "--quick", "--socket", sock,
                "--out", out], env=_env(), cwd=work)
    assert sub.returncode == 0, (sub.stdout, sub.stderr)
    assert open(out, "rb").read() == open(ref, "rb").read(), \
        "fleet-served results must be byte-identical to a local serve"
    for agent in agents:
        stop(agent)
    stop(daemon)
    print(f"   daemon SIGKILLed mid-sweep (restart replayed {replayed}); "
          "agents reconnected unaided; fleet results byte-identical to "
          "the single-host serve")

    print("== drill 4: zero agents degrades to the local pool; "
          "clear-quarantine works live and offline ==")
    port = _free_port()
    daemon, sock = start_daemon(work, "state4", 2, port, max_attempts=2)
    client = ServeClient(socket_path=os.path.join(work, sock))
    rep = client.submit([CellSpec(id="no fleet", fn="synthetic",
                                  params={"value": 5.0},
                                  base_seed=40).to_record()])
    assert rep["cells"][0]["status"] == "ok", rep
    assert fleet(client).get("workers") == [], "no agents expected"
    poison = CellSpec(id="fleet poison", fn="synthetic",
                      params={"raise": "poisoned"}, base_seed=41)
    rep = client.submit([poison.to_record()])
    assert rep["cells"][0]["status"] == "quarantined", rep
    clear = _cli(["serve", "clear-quarantine", "--state-dir", "state4"],
                 env=_env(), cwd=work)
    assert clear.returncode == 0, (clear.stdout, clear.stderr)
    assert "cleared 1" in clear.stdout, clear.stdout
    rep = client.submit([poison.to_record()])
    assert rep["cells"][0]["status"] == "quarantined", rep
    assert rep["stats"]["submitted"] == 1, \
        "a cleared cell must re-enter the pool, not answer from quarantine"
    c = counters(client)
    assert c["serve.quarantine.cleared"] == 1, c
    stop(daemon)
    clear = _cli(["serve", "clear-quarantine", "--state-dir", "state4"],
                 env=_env(), cwd=work)
    assert clear.returncode == 0, (clear.stdout, clear.stderr)
    assert "offline" in clear.stdout, clear.stdout

    print("ok: agent kill revoked+requeued, partition expired+fenced with "
          "exactly-once commit, daemon crash replayed with byte-identical "
          "fleet results, zero-agent degradation + clear-quarantine")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
