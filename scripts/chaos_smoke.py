#!/usr/bin/env python
"""CI chaos smoke: the resilient runner survives injected faults and kills.

Three drills against the quick EP table sweep, all using real worker
subprocesses:

1. transient faults: a chaos plan kills one cell's first attempt and
   flakes another; with --retries 2 the sweep must still exit 0 with
   every cell ok and the retries recorded (retried cells re-run on
   derived per-attempt seeds, so their values may legitimately differ
   from the clean run).
2. kill -9 mid-sweep, then --resume: the journal must survive, the
   resumed run must exit 0, and the final table must be byte-identical.
3. unrecoverable fault: with no retries a killed cell degrades to "-"
   and the CLI exits 1 with a failure summary, not a traceback.

With ``--faults`` it instead runs the *model-level* fault drill (the CI
``fault-smoke`` job): a node-crash fault plan against the quick BT table
must kill exactly the matched cell in simulation — exit 1, a
``failed-in-sim`` manifest row rendered as "-", a resumable journal that
reproduces the same deterministic failure on --resume.

With ``--serve`` it runs the same kill/hang/corrupt/flake chaos plans
against the *serve daemon's* long-lived workers instead (drill 5): the
plan rides into the daemon via ``$REPRO_CHAOS_PLAN``, each fault class
wrecks one cell's first attempt, and the supervised pool must recover
every one of them (watchdog for hangs, respawn for kills, protocol
validation for corruption) with attempts=2 and correct values.

Usage: chaos_smoke.py [WORKDIR] [--faults | --serve]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def _env(**extra):
    env = dict(os.environ)
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(here, "src")
    if os.path.isdir(os.path.join(src, "repro")):
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS_PLAN", None)
    env.pop("REPRO_FAULT_PLAN", None)
    env.update(extra)
    return env


def _cli(args, **kw):
    return subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                          capture_output=True, text=True, **kw)


def main_faults(work):
    """Drill 4 (the CI ``fault-smoke`` job): in-simulation fault injection
    degrades gracefully and deterministically."""
    base = ["table1", "--quick"]
    target = "BT.A n=4 rpn=1 smm=2"

    print("== drill 4: node-crash fault plan -> failed-in-sim ==")
    plan = os.path.join(work, "fault-plan.json")
    with open(plan, "w") as fp:
        json.dump([{"match": target, "fault": "node_crash",
                    "node": 1, "at_s": 5.0}], fp)
    man = os.path.join(work, "faulted.json")
    r = _cli(base + ["--jobs", "2", "--fault-plan", plan, "--manifest", man],
             env=_env(), cwd=work)
    assert r.returncode == 1, (r.returncode, r.stdout, r.stderr)
    assert "Table 1" in r.stdout, "faulted table must still render"
    assert "failed in simulation" in r.stderr, r.stderr
    doc = json.load(open(man))
    in_sim = [c for c in doc["cells"] if c["status"] == "failed-in-sim"]
    assert [c["id"] for c in in_sim] == [target], in_sim
    assert in_sim[0]["fault"]["events"][0]["fault"] == "node_crash"
    ok = [c for c in doc["cells"] if c["status"] == "ok"]
    assert len(ok) == len(doc["cells"]) - 1, "other cells must complete"
    part = man + ".part.jsonl"
    assert os.path.exists(part), "journal must stay behind for --resume"

    print("== drill 4b: --resume replays the same deterministic failure ==")
    first_events = in_sim[0]["fault"]["events"]
    resumed = _cli(base + ["--resume", man], env=_env(), cwd=work)
    assert resumed.returncode == 1, (resumed.returncode, resumed.stderr)
    doc = json.load(open(man))
    in_sim2 = [c for c in doc["cells"] if c["status"] == "failed-in-sim"]
    assert [c["id"] for c in in_sim2] == [target]
    assert in_sim2[0]["fault"]["events"] == first_events, \
        "fault replay must be deterministic"

    print("ok: fault plan killed exactly the matched cell in-sim, the rest "
          "completed, and --resume reproduced the identical failure")
    return 0


def main_serve(work):
    """Drill 5 (wired into the CI ``serve-smoke`` job): every chaos fault
    class thrown at the daemon's supervised workers is recovered."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(here, "src")
    if os.path.isdir(os.path.join(src, "repro")):
        sys.path.insert(0, src)
    from repro.runx import CellSpec
    from repro.runx.cells import run_cell
    from repro.serve import ServeClient, ServeError

    cells = {
        fault: CellSpec(id=f"chaos {fault}", fn="synthetic",
                        params={"value": float(i)}, base_seed=40 + i)
        for i, fault in enumerate(("kill", "hang", "corrupt", "flake"))
    }
    plan = os.path.join(work, "serve-plan.json")
    with open(plan, "w") as fp:
        json.dump([{"match": spec.id, "fault": fault, "attempts": [0],
                    "hang_s": 3600.0}
                   for fault, spec in cells.items()], fp)

    print("== drill 5: kill/hang/corrupt/flake against daemon workers ==")
    state = os.path.join(work, "serve-state")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--state-dir", state,
         "--workers", "2", "--timeout", "5", "--hb-timeout", "10"],
        env=_env(REPRO_CHAOS_PLAN=plan), cwd=work,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServeClient(socket_path=os.path.join(state, "serve.sock"),
                         timeout_s=120)
    deadline = time.monotonic() + 120
    while True:
        try:
            client.status()
            break
        except ServeError:
            assert daemon.poll() is None, "daemon died at boot"
            assert time.monotonic() < deadline, "daemon never answered"
            time.sleep(0.1)
    try:
        rep = client.submit([s.to_record() for s in cells.values()])
        by_id = {c["id"]: c for c in rep["cells"]}
        for fault, spec in cells.items():
            cell = by_id[spec.id]
            assert cell["status"] == "ok", (fault, cell)
            assert cell["attempts"] == 2, \
                f"{fault}: expected exactly one chaos-eaten attempt: {cell}"
            assert cell["value"] == run_cell(
                spec.fn, spec.params, spec.base_seed), \
                f"{fault}: recovered value drifted"
        c = client.status()["counters"]
        assert c["serve.jobs.requeued"] == 4, c
        assert c["serve.jobs.timeouts"] >= 1, c       # the hang
        assert c["serve.workers.restarts"] >= 3, c    # kill/corrupt/flake
        assert c["serve.protocol.garbage"] >= 1, c    # the corrupt fault
        assert c["serve.jobs.quarantined"] == 0, c
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=60)
    print("ok: all four chaos fault classes recovered by the pool "
          "(one retry each, values identical to clean runs)")
    return 0


def main(argv):
    flags = [a for a in argv[1:] if a.startswith("--")]
    positional = [a for a in argv[1:] if not a.startswith("--")]
    work = positional[0] if positional else tempfile.mkdtemp(prefix="chaos-")
    work = os.path.abspath(work)  # drills run the CLI with cwd=work
    os.makedirs(work, exist_ok=True)
    if "--faults" in flags:
        return main_faults(work)
    if "--serve" in flags:
        return main_serve(work)
    base = ["table2", "--quick"]

    print("== clean baseline ==")
    clean = _cli(base, env=_env(), cwd=work)
    assert clean.returncode == 0, clean.stderr
    assert "Table 2" in clean.stdout

    print("== drill 1: kill+flake faults recovered by retries ==")
    plan = os.path.join(work, "plan.json")
    with open(plan, "w") as fp:
        json.dump([
            {"match": "EP.A n=2 rpn=1 smm=0", "fault": "kill",
             "attempts": [0]},
            {"match": "EP.A n=8 rpn=4 smm=*", "fault": "flake",
             "attempts": [0]},
        ], fp)
    man1 = os.path.join(work, "chaos.json")
    r = _cli(base + ["--jobs", "2", "--retries", "2", "--manifest", man1],
             env=_env(REPRO_CHAOS_PLAN=plan), cwd=work)
    assert r.returncode == 0, (r.stdout, r.stderr)
    assert "Table 2" in r.stdout
    doc = json.load(open(man1))
    retried = [c for c in doc["cells"] if c.get("attempts", 1) > 1]
    assert len(retried) == 4, f"expected 4 retried cells, got {len(retried)}"
    assert all(c["status"] == "ok" for c in doc["cells"])

    print("== drill 2: SIGKILL mid-sweep, then --resume ==")
    man2 = os.path.join(work, "killed.json")
    part = man2 + ".part.jsonl"
    sweep = subprocess.Popen(
        [sys.executable, "-m", "repro.cli"] + base +
        ["--jobs", "2", "--manifest", man2],
        env=_env(), cwd=work,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if os.path.exists(part) and sum(1 for _ in open(part)) >= 5:
            break
        assert sweep.poll() is None, "sweep finished before the kill"
        time.sleep(0.05)
    sweep.send_signal(signal.SIGKILL)
    sweep.wait()
    assert os.path.exists(part), "journal did not survive the kill"
    resumed = _cli(base + ["--resume", man2], env=_env(), cwd=work)
    assert resumed.returncode == 0, resumed.stderr
    assert "cells already complete" in resumed.stderr
    assert resumed.stdout == clean.stdout, "resumed output drifted"
    assert not os.path.exists(part), "journal not finalized after resume"

    print("== drill 3: unrecoverable fault degrades to '-' and exit 1 ==")
    plan3 = os.path.join(work, "plan3.json")
    with open(plan3, "w") as fp:
        json.dump([{"match": "EP.A n=2 rpn=1*", "fault": "kill"}], fp)
    man3 = os.path.join(work, "degraded.json")
    r = _cli(base + ["--jobs", "2", "--manifest", man3],
             env=_env(REPRO_CHAOS_PLAN=plan3), cwd=work)
    assert r.returncode == 1, (r.returncode, r.stderr)
    assert "Table 2" in r.stdout, "degraded table must still render"
    assert "failed" in r.stderr and "--resume" in r.stderr
    doc = json.load(open(man3))
    failed = [c for c in doc["cells"] if c["status"] == "failed"]
    assert len(failed) == 3, f"expected 3 failed cells, got {len(failed)}"

    print("ok: retries recovered 4 faulted cells, resume was byte-identical,"
          " degradation exited 1 with the table rendered")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
