"""Rate executor: the fluid work model's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simx import Engine
from repro.simx.rate import RateExecutor, WorkItem
from repro.simx.errors import SimulationError


def make(engine=None):
    eng = engine or Engine()
    completed = []
    ex = RateExecutor(eng, completed.append)
    return eng, ex, completed


def test_single_item_completes_at_demand_over_rate():
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item, rate=0.0)
    ex.set_rates({item: 2.0})  # 2 units/ns -> 500 ns
    eng.run()
    assert done == [item]
    assert item.finished_at == 500
    assert item.remaining == 0.0


def test_zero_demand_completes_immediately():
    eng, ex, done = make()
    item = WorkItem(eng, demand=0.0)
    ex.add(item, rate=1.0)
    ex.set_rates({item: 1.0})
    eng.run()
    assert done == [item]


def test_rate_change_midway_shifts_completion():
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})  # would finish at t=1000
    # At t=500 halve the rate: 500 remaining at 0.5 -> finish at 1500.
    eng.schedule(500, lambda: ex.set_rates({item: 0.5}))
    eng.run()
    assert item.finished_at == 1500


def test_zero_rate_window_freezes_progress():
    """A freeze window delays completion by exactly its length."""
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})
    eng.schedule(200, lambda: ex.set_rates({item: 0.0}))
    eng.schedule(900, lambda: ex.set_rates({item: 1.0}))
    eng.run()
    assert item.finished_at == 1000 + 700


def test_remove_mid_flight_keeps_partial_progress():
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})
    eng.schedule(400, lambda: ex.remove(item))
    eng.run()
    assert done == []
    assert item.remaining == pytest.approx(600.0)
    assert item.executed == pytest.approx(400.0)


def test_completion_order_among_simultaneous_finishers_is_insertion_order():
    eng, ex, done = make()
    a = WorkItem(eng, demand=100.0)
    b = WorkItem(eng, demand=100.0)
    ex.add(a)
    ex.add(b)
    ex.set_rates({a: 1.0, b: 1.0})
    eng.run()
    assert done == [a, b]


def test_double_add_rejected():
    eng, ex, _ = make()
    item = WorkItem(eng, demand=10.0)
    ex.add(item)
    with pytest.raises(SimulationError):
        ex.add(item)


def test_set_rate_for_unknown_item_rejected():
    eng, ex, _ = make()
    item = WorkItem(eng, demand=10.0)
    with pytest.raises(SimulationError):
        ex.set_rates({item: 1.0})


def test_negative_inputs_rejected():
    eng, ex, _ = make()
    with pytest.raises(ValueError):
        WorkItem(eng, demand=-5.0)
    item = WorkItem(eng, demand=5.0)
    ex.add(item)
    with pytest.raises(ValueError):
        ex.set_rates({item: -1.0})


def test_done_event_fires():
    eng, ex, _ = make()
    item = WorkItem(eng, demand=100.0)
    seen = []

    def body():
        v = yield item.done
        seen.append((v, eng.now))

    eng.process(body())
    ex.add(item)
    ex.set_rates({item: 1.0})
    eng.run()
    assert seen == [(item, 100)]


def test_pre_sync_windows_cover_elapsed_time():
    """pre_sync(dt) calls tile the active timeline exactly."""
    eng, ex, _ = make()
    windows = []
    ex.pre_sync = windows.append
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})
    eng.schedule(300, lambda: ex.set_rates({item: 0.5}))
    eng.run()
    assert sum(windows) == item.finished_at


@settings(max_examples=40, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=1, max_size=8
    ),
    rate=st.floats(min_value=0.01, max_value=100.0),
)
def test_work_conservation(demands, rate):
    """Total work served equals total demand once everything completes."""
    eng, ex, done = make()
    items = [WorkItem(eng, d) for d in demands]
    for it in items:
        ex.add(it)
    ex.set_rates({it: rate for it in items})
    eng.run()
    assert len(done) == len(items)
    assert ex.total_work_served == pytest.approx(sum(demands), rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    demand=st.floats(min_value=10.0, max_value=1e6),
    changes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10_000),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        max_size=6,
    ),
)
def test_remaining_never_increases(demand, changes):
    """Monotonicity under arbitrary piecewise rate schedules."""
    eng, ex, _ = make()
    item = WorkItem(eng, demand)
    ex.add(item)
    ex.set_rates({item: 1.0})
    observations = []
    t = 0
    for dt, r in changes:
        t += dt

        def change(r=r):
            ex.sync()  # settle any completion due exactly now
            observations.append(item.remaining)
            if item in ex.items:
                ex.set_rates({item: r})

        eng.schedule_at(t, change)

    # ensure completion eventually
    def finish():
        ex.sync()
        if item in ex.items:
            ex.set_rates({item: 5.0})

    eng.schedule_at(t + 1, finish)
    eng.run()
    assert all(b <= a + 1e-9 for a, b in zip(observations, observations[1:]))
    assert item.remaining == 0.0


def test_float_residue_demand_completes_at_exact_nanosecond():
    """Demand whose rate*eta product carries float residue still lands on
    the exact nanosecond (no +-1 drift from the _EPS_WORK slack)."""
    eng, ex, done = make()
    # 0.3 * 100 = 30.000000000000004 in binary float: without the
    # epsilon, remaining would be -4e-15 at t=100 and the completion
    # timer would re-fire; with it, the item completes exactly at 100.
    item = WorkItem(eng, demand=30.0)
    ex.add(item)
    ex.set_rates({item: 0.3})
    eng.run()
    assert done == [item]
    assert item.finished_at == 100
    assert item.remaining == 0.0


class _TimerSpy(RateExecutor):
    """Records every ``_on_timer`` firing time (the bound method is
    captured at post time, so the override sees all completion timers)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fired = []

    def _on_timer(self):
        self.fired.append(self.engine.now)
        super()._on_timer()


def test_remove_last_item_cancels_completion_timer():
    """Regression: removing the only in-flight item must cancel its armed
    completion timer.  A leaked timer is a *foreground* heap entry — it
    keeps the engine alive, advances the clock to the dead item's old
    ETA, and fires ``_on_timer`` for an executor with no items."""
    eng = Engine()
    done = []
    ex = _TimerSpy(eng, done.append)
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})  # ETA armed for t=1000

    def evict():
        ex.remove(item)
        assert ex._timer is None  # cancelled eagerly, not at next flush

    eng.schedule(400, evict)
    eng.run()
    assert done == []
    assert ex.fired == []  # the dead item's timer never fired
    assert eng.now == 400  # engine halted at eviction, not the stale ETA


def test_remove_inside_defer_window_cancels_stale_timer():
    """Regression: same eviction inside a defer_reschedule window.  The
    deferred pass only runs at flush, so ``remove`` itself must tear the
    timer down — otherwise the stale ETA entry survives the window and
    fires ``_on_timer`` for the dead item."""
    eng = Engine()
    done = []
    ex = _TimerSpy(eng, done.append)
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})

    def evict_batched():
        ex.defer_reschedule()
        try:
            ex.remove(item)
            # Eager cancellation must not wait for the flush.
            assert ex._timer is None
        finally:
            ex.flush_reschedule()
        assert ex._timer is None

    eng.schedule(400, evict_batched)
    eng.run()
    assert done == []
    assert ex.fired == []
    assert eng.now == 400
    assert item.remaining == pytest.approx(600.0)


def test_remove_soonest_item_in_defer_window_retargets_timer():
    """Evicting the item that owns the armed ETA (while a survivor keeps
    running) must re-aim the timer at the survivor, and the dead item
    must never complete."""
    eng = Engine()
    done = []
    ex = RateExecutor(eng, done.append)
    fast = WorkItem(eng, demand=100.0, name="fast")
    slow = WorkItem(eng, demand=1000.0, name="slow")
    ex.add(fast)
    ex.add(slow)
    ex.set_rates({fast: 1.0, slow: 1.0})  # timer armed for fast at t=100

    def evict_fast():
        ex.defer_reschedule()
        try:
            ex.remove(fast)
        finally:
            ex.flush_reschedule()

    eng.schedule(50, evict_fast)
    eng.run()
    assert done == [slow]
    assert slow.finished_at == 1000
    assert fast.finished_at is None
    assert fast.remaining == pytest.approx(50.0)


def test_exact_completion_survives_same_instant_rate_churn():
    """A same-instant freeze/unfreeze pair (rate -> 0 -> restore at one
    timestamp, as SMM does) must not shift the completion nanosecond."""
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})

    def churn():
        ex.set_rates({item: 0.0})
        ex.set_rates({item: 1.0})

    eng.schedule(400, churn)
    eng.run()
    assert item.finished_at == 1000
    assert ex.total_work_served == pytest.approx(1000.0)


def test_deferred_reschedule_coalesces_to_one_pass():
    """Inside a defer/flush batch, mutations mark the executor dirty and
    the single owed rescheduling pass runs at flush — completion times
    are identical to the eager path."""
    eng, ex, done = make()
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})

    def batched_churn():
        ex.defer_reschedule()
        try:
            ex.set_rates({item: 0.0})
            ex.set_rates({item: 2.0})
            ex.set_rates({item: 1.0})
            assert ex._dirty  # mutations owed exactly one pass
        finally:
            ex.flush_reschedule()
        assert not ex._dirty

    eng.schedule(250, batched_churn)
    eng.run()
    assert done == [item]
    assert item.finished_at == 1000


def test_flush_without_mutation_is_a_no_op():
    eng, ex, _ = make()
    item = WorkItem(eng, demand=100.0)
    ex.add(item)
    ex.set_rates({item: 1.0})
    timer = ex._timer
    ex.defer_reschedule()
    ex.flush_reschedule()  # nothing dirtied: live timer must survive
    assert ex._timer is timer
    eng.run()
    assert item.finished_at == 100
