"""Daemon scheduling semantics: perpetual background activities must not
keep the engine alive (the balancer/SMI-source termination contract)."""

from repro.simx import Delay, Engine


def test_daemon_events_do_not_keep_engine_alive():
    eng = Engine()
    ticks = []

    def ticker():
        while True:
            yield Delay(10)
            ticks.append(eng.now)

    eng.process(ticker(), name="daemon", daemon=True)
    eng.schedule(35, lambda: None)  # the only foreground work
    eng.run()
    assert eng.now == 35
    assert ticks == [10, 20, 30]


def test_engine_with_only_daemons_returns_immediately():
    eng = Engine()

    def ticker():
        while True:
            yield Delay(10)

    eng.process(ticker(), name="daemon", daemon=True)
    assert eng.run() == 0


def test_foreground_process_keeps_daemons_ticking():
    eng = Engine()
    ticks = []

    def daemon():
        while True:
            yield Delay(7)
            ticks.append(eng.now)

    def fg():
        yield Delay(50)
        return "done"

    eng.process(daemon(), daemon=True)
    p = eng.process(fg())
    eng.run()
    assert p.result == "done"
    assert len(ticks) == 7  # 7,14,...,49


def test_cancel_releases_foreground_count():
    eng = Engine()
    h = eng.schedule(100, lambda: None)
    h.cancel()
    h.cancel()  # idempotent
    # nothing foreground left: run returns at t=0
    assert eng.run() == 0


def test_daemon_interplay_with_run_until():
    eng = Engine()
    ev = eng.event()

    def daemon():
        while True:
            yield Delay(10)
            if eng.now >= 40 and not ev.triggered:
                ev.succeed("from-daemon")

    eng.process(daemon(), daemon=True)
    eng.schedule(1_000, lambda: None)  # keeps foreground alive past 40
    eng.run_until(ev)
    assert ev.value == "from-daemon"
    assert eng.now == 40


def test_machine_run_terminates_with_balancer_and_smi_source():
    """The regression that motivated daemon scheduling: engine.run() on a
    machine with its periodic balancer and an SMI source must return when
    application tasks finish."""
    from repro.core.smi import SmiProfile, SmiSource
    from repro.machine.profile import WorkloadProfile
    from repro.machine.topology import WYEAST_SPEC
    from repro.system import make_machine

    m = make_machine(WYEAST_SPEC, seed=1)
    SmiSource(m.node, SmiProfile.SHORT, 100, seed=1)
    reg = WorkloadProfile(name="reg", mem_ref_fraction=0.0, base_miss_rate=0.0)

    def body(task):
        yield from task.compute(WYEAST_SPEC.base_hz * 0.3)

    m.scheduler.spawn(body, "w", reg)
    t_end = m.engine.run()  # must return, not spin forever
    assert 0.3e9 < t_end < 0.5e9
