"""DeadlockError diagnostics: name the blocked processes and their waits."""

import pytest

from repro.simx import AnyOf, DeadlockError, Engine


def test_deadlock_lists_processes_and_wait_targets():
    eng = Engine()
    never = eng.event(name="never.fires")

    def waiter():
        yield never

    def any_waiter():
        other = eng.event(name="also.never")
        yield AnyOf([never, other])

    eng.process(waiter(), name="stuck-on-event")
    eng.process(any_waiter(), name="stuck-on-any")
    with pytest.raises(DeadlockError) as info:
        eng.run_until_deadlock_check()
    msg = str(info.value)
    assert "2 process(es)" in msg
    assert "'stuck-on-event' waiting on event 'never.fires'" in msg
    assert "'stuck-on-any' waiting on any of [never.fires, also.never]" in msg


def test_deadlock_caps_listing_at_ten():
    eng = Engine()
    never = eng.event(name="never")

    def waiter():
        yield never

    for i in range(14):
        eng.process(waiter(), name=f"w{i}")
    with pytest.raises(DeadlockError) as info:
        eng.run_until_deadlock_check()
    msg = str(info.value)
    assert "... and 4 more" in msg
    assert msg.count("waiting on") == 10


def test_clean_completion_raises_nothing():
    eng = Engine()

    def body():
        yield 100

    eng.process(body(), name="fine")
    assert eng.run_until_deadlock_check() == 100
