"""Scalar vs vector rate engine: byte-identical trajectories.

The contract (DESIGN.md §3): ``VecRateExecutor`` is an optimization of
``RateExecutor``, not an approximation — same completion order, same
completion nanoseconds, same ``executed()`` values, same
``total_work_served``, bit for bit.  These tests drive randomized
operation scripts (add / remove / set_rates / set_rates_seq /
defer_reschedule batches) through both executors and compare the full
trajectories with ``==``, never ``approx``.

Scripts open by admitting a block of items past
``VecRateExecutor.VEC_MIN`` so the numpy sync/reschedule kernels (not
just the shared scalar path) carry the run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simx import Engine
from repro.simx.rate import RateExecutor, VecRateExecutor, WorkItem
from repro.simx.rate import _np

pytestmark = pytest.mark.skipif(
    _np is None, reason="vector engine needs numpy")

#: Enough items that the vector kernels run (VEC_MIN is 32).
BULK = VecRateExecutor.VEC_MIN + 8


def run_script(ex_cls, script):
    """Execute one operation script; return the full trajectory.

    Ops are ``(dt_ns, kind, a)`` tuples: wait ``dt_ns``, then apply op
    ``kind`` seeded by ``a``.  Everything derives deterministically from
    the script, so two executors given the same script are comparable
    element for element.
    """
    eng = Engine()
    completions = []
    names = {}
    ex = ex_cls(eng, lambda it: completions.append((names[it], eng.now)))
    created = []

    def admit(count, demand_salt):
        for k in range(count):
            it = WorkItem(eng, demand=900.0 + 137.0 * ((demand_salt + k) % 23),
                          name=f"w{len(created)}")
            names[it] = f"w{len(created)}"
            created.append(it)
            ex.add(it, rate=0.5 + (k % 3))

    def proc():
        admit(BULK, 7)  # open in the vector regime
        for dt, kind, a in script:
            if dt:
                yield dt
            live = list(ex.items)
            if kind == 0:
                admit(1 + a % 3, a)
            elif kind == 1 and live:
                ex.remove(live[a % len(live)])
            elif kind == 2:
                ex.set_rates(
                    {it: ((a + j) % 7) * 0.5 for j, it in enumerate(live)})
            elif kind == 3:
                ex.set_rates_seq(
                    [0.25 * ((a + j) % 9) for j in range(len(live))])
            elif kind == 4:
                # Coalesced batch: freeze, maybe evict, rebalance, flush.
                ex.defer_reschedule()
                try:
                    ex.set_rates({it: 0.0 for it in live})
                    if live and a % 2:
                        ex.remove(live[a % len(live)])
                    rest = list(ex.items)
                    ex.set_rates(
                        {it: 1.0 + ((a + j) % 4) for j, it in enumerate(rest)})
                finally:
                    ex.flush_reschedule()
        tail = list(ex.items)
        if tail:  # drain so the run terminates
            ex.set_rates({it: 2.0 for it in tail})

    eng.process(proc(), name="driver")
    eng.run()
    return {
        "completions": completions,
        "items": [(names[it], it.executed, it.remaining, it.finished_at)
                  for it in created],
        "total": ex.total_work_served,
        "end": eng.now,
    }


op = st.tuples(
    st.integers(min_value=0, max_value=400),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=99),
)


@settings(max_examples=60, deadline=None)
@given(script=st.lists(op, max_size=12))
def test_vector_engine_matches_scalar_exactly(script):
    assert run_script(VecRateExecutor, script) == \
        run_script(RateExecutor, script)


def test_vector_kernels_actually_engage():
    """The fuzz driver must be exercising the numpy kernels, not the
    shared scalar fallback — pin the regime arithmetic it relies on."""
    assert BULK >= VecRateExecutor.VEC_MIN
    assert VecRateExecutor._vec_min == VecRateExecutor.VEC_MIN
    assert RateExecutor._vec_min > BULK  # scalar engine never vectorizes


def test_dense_simultaneous_completions_identical():
    """All items finishing at one instant: completion order is insertion
    order under both engines, at identical nanoseconds."""
    script = [(100, 2, 3), (50, 4, 1), (200, 3, 5)]
    a = run_script(RateExecutor, script)
    b = run_script(VecRateExecutor, script)
    assert a == b
    assert a["completions"]  # the script actually completed work
