"""Synchronization primitives: fairness, blocking, matching."""

import pytest

from repro.simx import Barrier, Channel, Delay, Engine, Lock, Semaphore, Store
from repro.simx.errors import SimulationError


# ---------------------------------------------------------------------------
# Semaphore / Lock
# ---------------------------------------------------------------------------

def test_semaphore_counts():
    eng = Engine()
    sem = Semaphore(eng, value=2)
    assert sem.try_acquire()
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_fifo_wakeup():
    eng = Engine()
    sem = Semaphore(eng, value=1)
    order = []

    def worker(i):
        def body():
            yield from sem.acquire()
            order.append(i)
            yield Delay(10)
            sem.release()

        return body

    for i in range(5):
        eng.process(worker(i)(), name=f"w{i}")
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_semaphore_handoff_no_barging():
    """A releasing looper can't re-grab ahead of an already queued waiter."""
    eng = Engine()
    sem = Semaphore(eng, value=1)
    got = []

    def hog():
        yield from sem.acquire()
        yield Delay(10)
        sem.release()
        # immediately try again — waiter must win
        if sem.try_acquire():
            got.append("hog-barged")

    def waiter():
        yield Delay(1)
        yield from sem.acquire()
        got.append("waiter")

    eng.process(hog())
    eng.process(waiter())
    eng.run()
    assert got == ["waiter"]


def test_lock_release_unheld_raises():
    eng = Engine()
    lock = Lock(eng)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_held_property():
    eng = Engine()
    lock = Lock(eng)
    assert not lock.held
    assert lock.try_acquire()
    assert lock.held
    lock.release()
    assert not lock.held


def test_semaphore_negative_value_rejected():
    with pytest.raises(ValueError):
        Semaphore(Engine(), value=-1)


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------

def test_barrier_releases_all_at_once():
    eng = Engine()
    bar = Barrier(eng, parties=3)
    release_times = []

    def worker(delay):
        def body():
            yield Delay(delay)
            yield from bar.wait()
            release_times.append(eng.now)

        return body

    for d in (10, 50, 90):
        eng.process(worker(d)())
    eng.run()
    assert release_times == [90, 90, 90]


def test_barrier_is_reusable_across_generations():
    eng = Engine()
    bar = Barrier(eng, parties=2)
    phases = []

    def worker(name, d):
        def body():
            for phase in range(3):
                yield Delay(d)
                yield from bar.wait()
                phases.append((phase, name, eng.now))

        return body

    eng.process(worker("fast", 10)())
    eng.process(worker("slow", 30)())
    eng.run()
    # Each phase completes at the slow worker's pace.
    times = [t for (_p, _n, t) in phases]
    assert times == [30, 30, 60, 60, 90, 90]


def test_barrier_single_party_never_blocks():
    eng = Engine()
    bar = Barrier(eng, parties=1)

    def body():
        idx = yield from bar.wait()
        return idx

    p = eng.process(body())
    eng.run()
    assert p.result == 0
    assert eng.now == 0


def test_barrier_requires_parties():
    with pytest.raises(ValueError):
        Barrier(Engine(), parties=0)


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_channel_fifo():
    eng = Engine()
    ch = Channel(eng)
    got = []

    def producer():
        for i in range(5):
            yield from ch.put(i)
            yield Delay(1)

    def consumer():
        for _ in range(5):
            v = yield from ch.get()
            got.append(v)

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_channel_get_blocks_until_put():
    eng = Engine()
    ch = Channel(eng)

    def consumer():
        v = yield from ch.get()
        return (v, eng.now)

    def producer():
        yield Delay(123)
        yield from ch.put("x")

    p = eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert p.result == ("x", 123)


def test_channel_capacity_blocks_put():
    eng = Engine()
    ch = Channel(eng, capacity=1)
    events = []

    def producer():
        yield from ch.put(1)
        events.append(("put1", eng.now))
        yield from ch.put(2)  # blocks until consumer drains
        events.append(("put2", eng.now))

    def consumer():
        yield Delay(100)
        v = yield from ch.get()
        events.append(("got", v, eng.now))
        yield Delay(0)
        v = yield from ch.get()
        events.append(("got", v, eng.now))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert ("put1", 0) in events
    put2 = [e for e in events if e[0] == "put2"][0]
    assert put2[1] >= 100


def test_channel_try_ops():
    eng = Engine()
    ch = Channel(eng, capacity=1)
    assert ch.try_put("a")
    assert not ch.try_put("b")
    ok, v = ch.try_get()
    assert ok and v == "a"
    ok, _ = ch.try_get()
    assert not ok


def test_channel_bad_capacity():
    with pytest.raises(ValueError):
        Channel(Engine(), capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_predicate_matching():
    eng = Engine()
    store = Store(eng)
    store.put({"tag": 1, "v": "one"})
    store.put({"tag": 2, "v": "two"})

    def body():
        m = yield from store.get(lambda m: m["tag"] == 2)
        return m["v"]

    p = eng.process(body())
    eng.run()
    assert p.result == "two"
    assert len(store) == 1  # tag-1 message still queued


def test_store_non_overtaking_same_key():
    """Items with the same key are matched in arrival order."""
    eng = Engine()
    store = Store(eng)
    for i in range(5):
        store.put({"k": "a", "seq": i})
    got = []

    def body():
        for _ in range(5):
            m = yield from store.get(lambda m: m["k"] == "a")
            got.append(m["seq"])

    eng.process(body())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_waiter_woken_on_put():
    eng = Engine()
    store = Store(eng)

    def body():
        m = yield from store.get(lambda m: m > 10)
        return (m, eng.now)

    p = eng.process(body())
    eng.schedule(5, store.put, 3)    # doesn't match
    eng.schedule(9, store.put, 99)   # matches
    eng.run()
    assert p.result == (99, 9)
    assert store.peek(lambda m: m == 3) == 3


def test_store_oldest_waiter_wins():
    eng = Engine()
    store = Store(eng)
    got = []

    def waiter(name):
        def body():
            m = yield from store.get(lambda m: True)
            got.append((name, m))

        return body

    eng.process(waiter("first")())
    eng.process(waiter("second")())
    eng.schedule(10, store.put, "x")
    eng.schedule(20, store.put, "y")
    eng.run()
    assert got == [("first", "x"), ("second", "y")]


def test_store_get_async_immediate_and_deferred():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    ev = store.get_async(lambda m: m == 1)
    assert ev.triggered and ev.value == 1
    ev2 = store.get_async(lambda m: m == 2)
    assert not ev2.triggered
    store.put(2)
    assert ev2.triggered and ev2.value == 2


def test_store_keyed_index_exact_match():
    """With a key_fn, an exact-key get skips unrelated items entirely."""
    eng = Engine()
    store = Store(eng, key_fn=lambda m: (m["src"], m["tag"]))
    store.put({"src": 0, "tag": 7, "v": "a"})
    store.put({"src": 1, "tag": 7, "v": "b"})
    store.put({"src": 0, "tag": 7, "v": "c"})
    ev = store.get_async(
        lambda m: m["src"] == 0 and m["tag"] == 7, key=(0, 7))
    assert ev.triggered and ev.value["v"] == "a"
    assert len(store) == 2  # "b" untouched, "c" still queued


def test_store_keyed_non_overtaking_mixed_with_wildcard():
    """Per-key FIFO survives interleaved wildcard (predicate-path) gets:
    a wildcard removal leaves a stale id in the index that the keyed
    path must skip, still yielding arrival order for the key."""
    eng = Engine()
    store = Store(eng, key_fn=lambda m: (m["src"], m["tag"]))
    for i in range(4):
        store.put({"src": 0, "tag": 1, "seq": i})
    store.put({"src": 9, "tag": 1, "seq": 99})
    # Wildcard get (no key): removes the oldest overall -> seq 0,
    # leaving its id stale in the (0, 1) index deque.
    ev_any = store.get_async(lambda m: True)
    assert ev_any.value["seq"] == 0
    got = []
    for _ in range(3):
        ev = store.get_async(
            lambda m: m["src"] == 0 and m["tag"] == 1, key=(0, 1))
        assert ev.triggered
        got.append(ev.value["seq"])
    assert got == [1, 2, 3]  # arrival order, no overtaking, no seq-0 replay
    assert store.peek(lambda m: True)["seq"] == 99


def test_store_keyed_miss_registers_waiter():
    eng = Engine()
    store = Store(eng, key_fn=lambda m: m["tag"])
    ev = store.get_async(lambda m: m["tag"] == 5, key=5)
    assert not ev.triggered
    store.put({"tag": 4})
    assert not ev.triggered
    store.put({"tag": 5})
    assert ev.triggered and ev.value["tag"] == 5
    assert len(store) == 1  # the tag-4 item
