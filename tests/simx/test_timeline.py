"""Timeline recording and querying."""

from repro.simx import Timeline


def build():
    tl = Timeline()
    tl.record(0, "smm.enter", "node0", duration_ns=100)
    tl.record(100, "smm.exit", "node0")
    tl.record(150, "task.run", "node0", task="a")
    tl.record(200, "smm.enter", "node1")
    tl.record(260, "smm.exit", "node1")
    tl.record(300, "smm.enter", "node0")
    tl.record(450, "smm.exit", "node0")
    return tl


def test_select_by_kind_prefix():
    tl = build()
    assert len(tl.select(kind="smm.")) == 6
    assert len(tl.select(kind="smm.enter")) == 3
    assert len(tl.select(kind="task")) == 1


def test_select_by_where_and_window():
    tl = build()
    assert len(tl.select(where="node0")) == 5
    assert len(tl.select(t0=100, t1=300)) == 4  # [100, 300)
    assert len(tl.select(kind="smm.enter", where="node0", t0=100)) == 1


def test_select_with_predicate():
    tl = build()
    hits = tl.select(pred=lambda r: r.data.get("task") == "a")
    assert len(hits) == 1 and hits[0].kind == "task.run"


def test_count_ignores_muting():
    tl = Timeline()
    tl.mute("task.")
    tl.record(0, "task.run", "n")
    tl.record(0, "smm.enter", "n")
    assert tl.count("task.run") == 1
    assert len(tl) == 1  # only the smm record stored


def test_disabled_timeline_is_inert():
    # The zero-cost-when-disabled contract: a disabled timeline records
    # nothing, not even counters (hot call sites skip the call entirely
    # behind an ``if tl.enabled`` test).
    tl = Timeline(enabled=False)
    tl.record(0, "smm.enter", "n")
    assert len(tl) == 0
    assert tl.count("smm.enter") == 0
    tl.enabled = True
    tl.record(1, "smm.enter", "n")
    assert len(tl) == 1
    assert tl.count("smm.enter") == 1


def test_intervals_pairing():
    tl = build()
    assert tl.intervals("smm.enter", "smm.exit", where="node0") == [(0, 100), (300, 450)]
    assert tl.intervals("smm.enter", "smm.exit", where="node1") == [(200, 260)]


def test_intervals_drop_unclosed():
    tl = Timeline()
    tl.record(10, "smm.enter", "n")
    assert tl.intervals("smm.enter", "smm.exit") == []


def test_total_overlap_clipping():
    ivals = [(0, 100), (300, 450)]
    assert Timeline.total_overlap(ivals, 50, 350) == 50 + 50
    assert Timeline.total_overlap(ivals, 500, 600) == 0
    assert Timeline.total_overlap(ivals, 0, 1000) == 250
