"""Engine semantics: time, ordering, processes, waits, failures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simx import (
    AllOf,
    AnyOf,
    Delay,
    Engine,
    Interrupt,
    SimulationError,
    DeadlockError,
)


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_schedule_runs_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule(30, seen.append, "c")
    eng.schedule(10, seen.append, "a")
    eng.schedule(20, seen.append, "b")
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 30


def test_same_time_events_run_in_insertion_order():
    eng = Engine()
    seen = []
    for i in range(10):
        eng.schedule(5, seen.append, i)
    eng.run()
    assert seen == list(range(10))


def test_schedule_into_past_raises():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_cancel_prevents_callback():
    eng = Engine()
    seen = []
    h = eng.schedule(10, seen.append, "x")
    h.cancel()
    eng.run()
    assert seen == []


def test_run_until_ns_limit():
    eng = Engine()
    seen = []
    eng.schedule(10, seen.append, 1)
    eng.schedule(100, seen.append, 2)
    eng.run(until_ns=50)
    assert seen == [1]
    assert eng.now == 50
    eng.run()
    assert seen == [1, 2]


def test_process_delay_and_return_value():
    eng = Engine()

    def body():
        yield Delay(1_000)
        yield 500  # bare int is a delay
        return 42

    p = eng.process(body(), name="t")
    eng.run()
    assert p.result == 42
    assert eng.now == 1_500
    assert not p.alive


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.process(lambda: None, name="notagen")


def test_event_wait_and_value():
    eng = Engine()
    ev = eng.event("e")

    def waiter():
        v = yield ev
        return v

    def trigger():
        yield Delay(100)
        ev.succeed("hello")

    p = eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert p.result == "hello"


def test_event_failure_propagates_into_waiter():
    eng = Engine()
    ev = eng.event()

    def waiter():
        try:
            yield ev
        except ValueError as e:
            return f"caught {e}"

    p = eng.process(waiter())
    eng.schedule(10, ev.fail, ValueError("boom"))
    eng.run()
    assert p.result == "caught boom"


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        _ = eng.event().value


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(7)

    def body():
        v = yield ev
        return v

    p = eng.process(body())
    eng.run()
    assert p.result == 7


def test_join_process():
    eng = Engine()

    def child():
        yield Delay(100)
        return "child-done"

    def parent():
        c = eng.process(child(), name="child")
        v = yield c
        return v

    p = eng.process(parent(), name="parent")
    eng.run()
    assert p.result == "child-done"


def test_child_exception_reraised_in_joiner():
    eng = Engine()

    def child():
        yield Delay(10)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield eng.process(child(), name="c")
        except RuntimeError as e:
            return str(e)

    p = eng.process(parent())
    eng.run()
    assert p.result == "child failed"


def test_orphan_failure_surfaces_in_run():
    eng = Engine()

    def bad():
        yield Delay(10)
        raise RuntimeError("unjoined")

    eng.process(bad(), name="bad")
    with pytest.raises(SimulationError, match="bad"):
        eng.run()


def test_allof_collects_values_in_order():
    eng = Engine()
    evs = [eng.event() for _ in range(3)]

    def body():
        vals = yield AllOf(evs)
        return vals

    p = eng.process(body())
    # trigger out of order
    eng.schedule(30, evs[0].succeed, "a")
    eng.schedule(10, evs[2].succeed, "c")
    eng.schedule(20, evs[1].succeed, "b")
    eng.run()
    assert p.result == ["a", "b", "c"]
    assert eng.now == 30


def test_anyof_returns_first():
    eng = Engine()
    evs = [eng.event() for _ in range(3)]

    def body():
        i, v = yield AnyOf(evs)
        return (i, v)

    p = eng.process(body())
    eng.schedule(10, evs[1].succeed, "fast")
    eng.schedule(20, evs[0].succeed, "slow")
    eng.run()
    assert p.result == (1, "fast")


def test_empty_allof_resumes_immediately():
    eng = Engine()

    def body():
        vals = yield AllOf([])
        return vals

    p = eng.process(body())
    eng.run()
    assert p.result == []


def test_empty_anyof_rejected():
    with pytest.raises(ValueError):
        AnyOf([])


def test_interrupt_breaks_delay():
    eng = Engine()

    def body():
        try:
            yield Delay(1_000_000)
        except Interrupt as i:
            return ("interrupted", i.cause, eng.now)

    p = eng.process(body())
    eng.schedule(100, p.interrupt, "wakeup")
    eng.run()
    assert p.result == ("interrupted", "wakeup", 100)


def test_stale_event_callback_after_interrupt_is_ignored():
    eng = Engine()
    ev = eng.event()

    def body():
        try:
            yield ev
        except Interrupt:
            yield Delay(50)
            return "recovered"

    p = eng.process(body())
    eng.schedule(10, p.interrupt, None)
    eng.schedule(20, ev.succeed, "late")  # must not resume the process twice
    eng.run()
    assert p.result == "recovered"
    assert eng.now == 60


def test_kill_terminates():
    eng = Engine()
    steps = []

    def body():
        steps.append("start")
        yield Delay(1_000)
        steps.append("never")

    p = eng.process(body())
    eng.schedule(100, p.kill)
    eng.run()
    assert steps == ["start"]
    assert not p.alive


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_yield_garbage_fails_the_process():
    eng = Engine()

    def body():
        yield "nonsense"

    def parent():
        try:
            yield eng.process(body(), name="b")
        except TypeError as e:
            return "typed: " + str(e)[:20]

    p = eng.process(parent())
    eng.run()
    assert p.result.startswith("typed:")


def test_timeout_event():
    eng = Engine()

    def body():
        v = yield eng.timeout(250, "late")
        return (v, eng.now)

    p = eng.process(body())
    eng.run()
    assert p.result == ("late", 250)


def test_run_until_event():
    eng = Engine()
    ev = eng.event()
    ticks = []

    def ticker():
        while True:
            yield Delay(10)
            ticks.append(eng.now)

    eng.process(ticker(), name="ticker")
    eng.schedule(55, ev.succeed)
    eng.run_until(ev)
    assert ev.triggered
    assert all(t <= 55 for t in ticks)


def test_deadlock_detection():
    eng = Engine()

    def stuck():
        yield eng.event("never")

    eng.process(stuck(), name="stuck")
    with pytest.raises(DeadlockError):
        eng.run_until_deadlock_check()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
def test_determinism_same_schedule_same_trace(delays):
    """Two engines fed the same schedule produce identical traces."""

    def trace_for():
        eng = Engine()
        seen = []
        for i, d in enumerate(delays):
            eng.schedule(d, lambda i=i: seen.append((eng.now, i)))
        eng.run()
        return seen

    assert trace_for() == trace_for()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=20))
def test_process_delays_accumulate_exactly(delays):
    eng = Engine()

    def body():
        for d in delays:
            yield Delay(d)
        return eng.now

    p = eng.process(body())
    eng.run()
    assert p.result == sum(delays)
