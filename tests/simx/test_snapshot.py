"""Engine snapshot/restore and the layer protocol (DESIGN.md §11).

Three groups:

* Engine-level: a snapshot restores the event heap, clock, and seq
  counter exactly — replaying from a restored engine reproduces the
  original schedule — and the process census refuses a restore once any
  generator has stepped past the snapshot (generator frames cannot be
  rewound in-process; that is what the fork path is for).

* The armed rate-completion timer: restoring a
  :class:`~repro.simx.rate.RateExecutor` together with (or without) its
  engine leaves exactly one live timer, at the right time, in every
  rebinding case the stale-timer bug class produced.

* Cross-engine: the scalar and vector executors snapshot to equivalent
  state and restore to identical schedules.
"""

import pytest

from repro.simx import Engine
from repro.simx.engine import EngineSnapshot
from repro.simx.errors import SimulationError, SnapshotError
from repro.simx.rate import RateExecutor, WorkItem
from repro.simx.snapshot import engine_state, state_digest, strip_refs

np = pytest.importorskip("numpy", reason="vector engine tests need numpy")
from repro.simx.rate import VecRateExecutor  # noqa: E402

VEC_MIN = VecRateExecutor.VEC_MIN


# -- engine snapshot/restore --------------------------------------------------

def test_timer_replay_after_restore_is_identical():
    eng = Engine()
    fired = []
    for t in (50, 10, 90, 30):
        eng.schedule(t, lambda t=t: fired.append((eng.now, t)))
    snap = eng.snapshot()
    assert isinstance(snap, EngineSnapshot)
    eng.run()
    first = list(fired)
    assert [t for _, t in first] == [10, 30, 50, 90]

    fired.clear()
    eng.restore(snap)
    assert eng.now == 0
    eng.run()
    assert fired == first


def test_restore_rewinds_clock_and_seq():
    eng = Engine()
    eng.schedule(100, lambda: None)
    snap = eng.snapshot()
    s0 = engine_state(eng)
    eng.schedule(40, lambda: None)  # consumes a seq number
    eng.run()
    assert eng.now == 100
    eng.restore(snap)
    assert engine_state(eng) == s0
    # A post being scheduled *after* restore gets the same seq number it
    # would have gotten in the original timeline — the tie-break order
    # of simultaneous events is part of the restored state.
    assert state_digest(engine_state(eng)) == state_digest(s0)


def test_cancelled_entries_restore_cancelled():
    eng = Engine()
    keep = eng._post(500, lambda: None, (), False)
    doomed = eng._post(200, lambda: None, (), False)
    snap = eng.snapshot()
    eng._cancel_entry(doomed)
    eng.run()
    eng.restore(snap)
    assert not doomed[5]  # tombstone rewound
    assert not keep[5]
    times = sorted(e[0] for e in eng._heap if not e[5])
    assert times == [200, 500]


def test_census_refuses_stepped_process():
    eng = Engine()

    def body():
        from repro.simx.engine import Delay
        yield Delay(10)
        yield Delay(10)

    eng.process(body(), name="walker")
    eng.run(until_ns=0)  # initial step: parks on the first delay
    snap = eng.snapshot()
    eng.run(until_ns=10)  # the process steps past the snapshot
    with pytest.raises(SnapshotError):
        eng.restore(snap)


def test_census_refuses_new_process():
    eng = Engine()
    snap = eng.snapshot()

    def body():
        from repro.simx.engine import Delay
        yield Delay(5)

    eng.process(body(), name="late")
    with pytest.raises(SnapshotError):
        eng.restore(snap)


# -- the armed rate-completion timer ------------------------------------------

def _mid_flight(ex_cls):
    eng = Engine()
    done = []
    ex = ex_cls(eng, done.append)
    item = WorkItem(eng, demand=1000.0)
    ex.add(item)
    ex.set_rates({item: 1.0})  # completion timer armed for t=1000
    eng.run(until_ns=300)
    return eng, ex, item, done


def test_engine_and_executor_restore_leaves_one_live_timer():
    """Case: a reschedule after the snapshot cancelled the saved timer
    and armed a new one; Engine.restore resurrects the saved entry and
    drops the new one — the executor must rebind to the resurrected
    entry, not leave a duplicate or a stale pointer armed."""
    eng, ex, item, done = _mid_flight(RateExecutor)
    snap = eng.snapshot()
    state = ex.__snapshot__()
    ex.set_rates({item: 2.0})  # cancels t=1000, arms t=650

    eng.restore(snap)
    ex.__restore__(state)
    live = [e for e in eng._heap if not e[5]]
    assert len(live) == 1 and live[0][0] == 1000
    eng.run()
    assert done == [item] and item.finished_at == 1000


def test_executor_only_restore_rearms_consumed_timer():
    """Case: the saved timer was cancelled by a later reschedule and the
    engine was *not* restored — the executor must arm a fresh timer at
    the saved completion time."""
    eng, ex, item, done = _mid_flight(RateExecutor)
    state = ex.__snapshot__()
    ex.set_rates({item: 2.0})  # cancels the t=1000 timer, arms t=650
    ex.__restore__(state)      # rewind to the 1.0-rate schedule
    live = [e for e in eng._heap if not e[5]]
    assert len(live) == 1 and live[0][0] == 1000
    eng.run()
    assert done == [item] and item.finished_at == 1000


def test_restore_refuses_membership_drift():
    eng, ex, item, done = _mid_flight(RateExecutor)
    state = ex.__snapshot__()
    ex.remove(item)
    with pytest.raises(SimulationError):
        ex.__restore__(state)


def test_restore_into_past_timer_raises():
    eng, ex, item, done = _mid_flight(RateExecutor)
    state = ex.__snapshot__()
    eng.run()  # completes at t=1000; timer consumed, now > timer_time
    with pytest.raises(SimulationError):
        ex.__restore__(state)


# -- cross-engine equivalence -------------------------------------------------

def _vec_scenario(ex_cls):
    eng = Engine()
    done = []
    ex = ex_cls(eng, done.append)
    n = VEC_MIN + 8  # enough residents that vec kernels engage
    items = [WorkItem(eng, demand=1000.0 + 7 * i) for i in range(n)]
    for i, it in enumerate(items):
        ex.add(it)
    ex.set_rates_seq([1.0 + (i % 5) * 0.25 for i in range(n)])
    eng.run(until_ns=400)
    return eng, ex, items, done


def test_scalar_and_vector_snapshots_are_equivalent():
    eng_s, ex_s, _, _ = _vec_scenario(RateExecutor)
    eng_v, ex_v, _, _ = _vec_scenario(VecRateExecutor)
    s, v = ex_s.__snapshot__(), ex_v.__snapshot__()
    assert strip_refs(s).keys() == strip_refs(v).keys()
    assert [float(x) for x in s["remaining"]] == \
        [float(x) for x in v["remaining"]]
    assert [float(x) for x in s["rates"]] == [float(x) for x in v["rates"]]
    assert s["last_sync"] == v["last_sync"]
    assert s["timer_time"] == v["timer_time"]
    assert s["timer_armed"] is True and v["timer_armed"] is True


@pytest.mark.parametrize("ex_cls", [RateExecutor, VecRateExecutor])
def test_round_trip_preserves_completion_schedule(ex_cls):
    """Snapshot, perturb every rate, restore, run: completions must land
    exactly where an undisturbed run puts them — for both engines."""
    eng_ref, _, ref_items, _ = _vec_scenario(ex_cls)
    eng_ref.run()
    original = [it.finished_at for it in ref_items]

    eng, ex, items, done = _vec_scenario(ex_cls)
    snap = eng.snapshot()
    state = ex.__snapshot__()
    ex.set_rates_seq([3.0] * len(items))  # perturb inside the window

    eng.restore(snap)
    ex.__restore__(state)
    eng.run()
    assert [it.finished_at for it in items] == original
    assert len(done) == len(items)
