"""Trace export: Gantt and Chrome-trace JSON."""

import json

import pytest

from repro.analysis.export import chrome_trace, gantt
from repro.simx import Timeline


def make_timeline():
    tl = Timeline()
    tl.record(100, "smm.enter", "node0", duration_ns=200)
    tl.record(300, "smm.exit", "node0", measured_ns=200)
    tl.record(500, "smm.enter", "node1")
    tl.record(600, "smm.exit", "node1")
    tl.record(650, "irq.deliver", "node0", irq_class="DEVICE", vector=7, latency_ns=5)
    tl.record(700, "sched.misplace", "node1", task="t", cpu=5)
    return tl


def test_gantt_marks_residency():
    text = gantt(make_timeline(), ["node0", "node1"], 0, 1000, width=50)
    lines = text.splitlines()
    lane0 = [l for l in lines if "node0" in l][0]
    lane1 = [l for l in lines if "node1" in l][0]
    assert "█" in lane0 and "█" in lane1
    # node0's window [100,300) starts earlier than node1's [500,600)
    assert lane0.index("█") < lane1.index("█")


def test_gantt_validates_window():
    with pytest.raises(ValueError):
        gantt(make_timeline(), ["node0"], 10, 10)


def test_chrome_trace_structure():
    data = json.loads(chrome_trace(make_timeline()))
    events = data["traceEvents"]
    phases = [e["ph"] for e in events]
    assert phases.count("B") == 2 and phases.count("E") == 2
    assert phases.count("i") == 2
    smm_b = [e for e in events if e["ph"] == "B"][0]
    assert smm_b["pid"] == "node0"
    assert smm_b["ts"] == pytest.approx(0.1)  # 100 ns = 0.1 µs


def test_chrome_trace_node_filter():
    data = json.loads(chrome_trace(make_timeline(), nodes=["node1"]))
    assert all(e["pid"] == "node1" for e in data["traceEvents"])


def test_export_from_live_run():
    from repro.core.smi import SmiProfile
    from repro.machine.profile import COMPUTE_BOUND
    from repro.mpi import Cluster, ClusterSpec, run_mpi_job

    c = Cluster(ClusterSpec(n_nodes=2), seed=1)
    c.enable_smi(SmiProfile.LONG, 300, seed=1)

    def app(rk):
        yield from rk.compute(2.27e9 * 0.8)
        return None

    run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    text = gantt(c.timeline, [n.name for n in c.nodes], 0, c.engine.now)
    assert text.count("█") > 2
    data = json.loads(chrome_trace(c.timeline))
    assert len(data["traceEvents"]) >= 4
