"""Trace analysis: residency and union coverage."""

import pytest

from repro.analysis.traces import SmmResidency, smm_residency, union_coverage
from repro.simx import Timeline


def make_timeline():
    tl = Timeline()
    tl.record(100, "smm.enter", "node0")
    tl.record(200, "smm.exit", "node0")
    tl.record(500, "smm.enter", "node0")
    tl.record(650, "smm.exit", "node0")
    tl.record(150, "smm.enter", "node1")
    tl.record(300, "smm.exit", "node1")
    return tl


def test_residency_extraction():
    r = smm_residency(make_timeline(), "node0", 0, 1000)
    assert r.entries == 2
    assert r.total_ns == 100 + 150
    assert r.duty == pytest.approx(0.25)
    assert r.gaps_ns() == [300]


def test_residency_clipping():
    r = smm_residency(make_timeline(), "node0", 150, 600)
    assert r.intervals == ((150, 200), (500, 600))
    assert r.total_ns == 150


def test_union_coverage_overlapping_nodes():
    tl = make_timeline()
    rs = [smm_residency(tl, n, 0, 1000) for n in ("node0", "node1")]
    # union: [100,300) + [500,650) = 350 of 1000
    assert union_coverage(rs) == pytest.approx(0.35)


def test_union_coverage_empty():
    assert union_coverage([]) == 0.0
    r = SmmResidency("n", 1000, ())
    assert union_coverage([r]) == 0.0


def test_union_coverage_rejects_mismatched_windows():
    """Regression: silently dividing by the first residency's window gave
    a wrong fraction when callers mixed observation windows."""
    a = SmmResidency("node0", 1000, ((0, 100),))
    b = SmmResidency("node1", 2000, ((0, 100),))
    with pytest.raises(ValueError, match="window"):
        union_coverage([a, b])
    # equal windows still fine
    c = SmmResidency("node1", 1000, ((200, 300),))
    assert union_coverage([a, c]) == pytest.approx(0.2)


def test_live_cluster_residency_matches_smm_stats():
    """End-to-end: timeline residency equals the controller's totals."""
    from repro.core.smi import SmiProfile
    from repro.machine.profile import COMPUTE_BOUND
    from repro.mpi import Cluster, ClusterSpec, run_mpi_job

    c = Cluster(ClusterSpec(n_nodes=2), seed=3)
    c.enable_smi(SmiProfile.LONG, 300, seed=3)

    def app(rk):
        yield from rk.compute(2.27e9 * 1.0)
        return None

    run_mpi_job(c, app, nranks=2, profile=COMPUTE_BOUND)
    t1 = c.engine.now
    for node in c.nodes:
        r = smm_residency(c.timeline, node.name, 0, t1)
        # timeline-derived residency within one (possibly clipped) SMI of
        # the controller's accounting
        assert abs(r.total_ns - node.smm.stats.total_ns) <= 111_000_000
        assert r.duty > 0.2  # 105/300 ≈ 35 % duty
