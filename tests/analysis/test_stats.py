"""Statistics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    confidence_interval95,
    geomean,
    mean,
    pct_change,
    summarize,
)


def test_mean_and_empty():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_geomean():
    assert geomean([4.0, 9.0]) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_pct_change_matches_paper_columns():
    # Table 1, BT A/1, SMM2: 86.87 -> 96.24 = 10.79 %
    assert pct_change(86.87, 96.24) == pytest.approx(10.79, abs=0.01)
    with pytest.raises(ValueError):
        pct_change(0.0, 1.0)


def test_ci95_zero_for_single_value():
    assert confidence_interval95([5.0]) == 0.0


def test_ci95_known_case():
    # n=2, values 0 and 2: std=sqrt(2), t=12.706 → ci = 12.706
    assert confidence_interval95([0.0, 2.0]) == pytest.approx(12.706, rel=1e-3)


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.min == 1.0 and s.max == 4.0
    assert s.cv == pytest.approx(s.std / s.mean)
    with pytest.raises(ValueError):
        summarize([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30))
def test_mean_bounded(values):
    m = mean(values)
    assert min(values) - 1e-6 <= m <= max(values) + 1e-6
