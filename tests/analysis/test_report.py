"""Paper-vs-measured comparison records."""

from repro.analysis.report import Comparison, ShapeCheck


def test_comparison_ratio_and_line():
    c = Comparison("EP.A/1 long %", 11.8, 11.0)
    assert c.ratio > 1.0
    assert "ratio" in c.line()
    assert Comparison("x", 1.0, None).ratio is None
    assert "paper      -" in Comparison("x", 1.0, None).line()


def test_shape_check_verdicts():
    chk = ShapeCheck(
        claim="noise grows with scale",
        predicate=lambda cs: cs[-1].measured > cs[0].measured,
    )
    chk.add("1 node", 11.0, 11.0)
    chk.add("16 nodes", 15.0, 40.0)
    assert chk.holds is True
    assert "HOLDS" in chk.render()

    chk2 = ShapeCheck(claim="informational")
    chk2.add("a", 1.0, 2.0)
    assert chk2.holds is None
    assert "informational" in chk2.render()

    chk3 = ShapeCheck(claim="fails", predicate=lambda cs: False)
    assert "FAILS" in chk3.render()
